//! Criterion bench: static Brandes baselines (the speedup denominators of
//! Tables 3/4 and the MP-vs-MO contrast of Figure 5's bootstrap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_core::brandes::{brandes, brandes_with_predecessors};
use ebc_gen::standins::{standin, StandinKind};
use std::hint::black_box;

fn bench_brandes(c: &mut Criterion) {
    let mut group = c.benchmark_group("brandes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [250usize, 1000] {
        let s = standin(StandinKind::Synthetic(n), 1, 42);
        group.bench_with_input(BenchmarkId::new("MO_pred_free", n), &s.graph, |b, g| {
            b.iter(|| black_box(brandes(g)))
        });
        group.bench_with_input(BenchmarkId::new("MP_pred_lists", n), &s.graph, |b, g| {
            b.iter(|| black_box(brandes_with_predecessors(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_brandes);
criterion_main!(benches);
