//! Criterion bench: the predecessor-free Brandes traversal on the two
//! adjacency representations — the legacy pointer-chasing `Vec<Vec<Half>>`
//! [`Graph`] vs the flat epoch-published [`CsrView`] the cluster workers
//! pin. Same algorithm, same visit order, same bits; the only variable is
//! the memory layout under the neighbor scans, so the delta is the CSR
//! refactor's traversal win in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_core::brandes;
use ebc_gen::standins::{standin, StandinKind};
use ebc_graph::CsrView;

fn bench_traversal(c: &mut Criterion) {
    let s = standin(StandinKind::Synthetic(2_000), 1, 42);
    let csr = CsrView::build(&s.graph);
    let mut group = c.benchmark_group("brandes_full_2k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_with_input(BenchmarkId::new("adjacency", "graph"), &(), |b, _| {
        b.iter(|| brandes(&s.graph))
    });
    group.bench_with_input(BenchmarkId::new("adjacency", "csr"), &(), |b, _| {
        b.iter(|| brandes(&csr))
    });
    group.finish();

    // sanity inside the harness: both layouts must produce identical bits
    let a = brandes(&s.graph);
    let b = brandes(&csr);
    assert_eq!(
        a.vbc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b.vbc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "CSR traversal diverged from the adjacency-list traversal"
    );
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
