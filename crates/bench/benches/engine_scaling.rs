//! Criterion bench: parallel engine map-phase critical path against worker
//! count (the measured core of Figure 7's strong scaling), driven through
//! the persistent pool's pipelined [`ClusterEngine::apply_stream`] — the
//! steady-state update path. The committed `BENCH_engine_scaling.json`
//! baseline (produced by the `engine_baseline` bin) tracks the same
//! workload against the frozen scoped-spawn reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_core::state::Update;
use ebc_engine::ClusterEngine;
use ebc_gen::standins::{standin, StandinKind};
use ebc_gen::streams::addition_stream;

fn bench_engine(c: &mut Criterion) {
    let s = standin(StandinKind::Synthetic(2_000), 1, 42);
    let adds: Vec<Update> = addition_stream(&s.graph, 16, 7)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    let mut group = c.benchmark_group("cluster_apply_2k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for p in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", p), &p, |b, &p| {
            b.iter_batched(
                || ClusterEngine::new(&s.graph, p).expect("bootstrap"),
                |mut cluster| {
                    cluster.apply_stream(&adds).expect("valid stream");
                    cluster
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
