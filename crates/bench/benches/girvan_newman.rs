//! Criterion bench: Girvan–Newman peeling, incremental vs recompute
//! (Figure 9's measured core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_gen::standins::{standin, StandinKind};
use ebc_gn::{girvan_newman_incremental, girvan_newman_recompute};
use std::hint::black_box;

fn bench_gn(c: &mut Criterion) {
    let s = standin(StandinKind::Synthetic(500), 1, 42);
    let mut group = c.benchmark_group("girvan_newman_500");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [10usize, 50] {
        group.bench_with_input(BenchmarkId::new("incremental", k), &k, |b, &k| {
            b.iter(|| black_box(girvan_newman_incremental(&s.graph, k)))
        });
        group.bench_with_input(BenchmarkId::new("recompute", k), &k, |b, &k| {
            b.iter(|| black_box(girvan_newman_recompute(&s.graph, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gn);
criterion_main!(benches);
