//! Criterion bench: per-update latency of the incremental kernel — the
//! quantity behind every speedup in Tables 3/4 and Figures 5/6 — plus the
//! ablations called out in DESIGN.md (predecessor-list maintenance, exact
//! pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_core::incremental::UpdateConfig;
use ebc_core::state::{BetweennessState, Update};
use ebc_gen::standins::{standin, StandinKind};
use ebc_gen::streams::{addition_stream, removal_stream};
use std::hint::black_box;

fn bench_updates(c: &mut Criterion) {
    let s = standin(StandinKind::Synthetic(1000), 1, 42);
    let adds = addition_stream(&s.graph, 64, 7);
    let rems = removal_stream(&s.graph, 64, 8);

    let mut group = c.benchmark_group("incremental_1k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, cfg) in [
        ("MO", UpdateConfig::default()),
        (
            "MP_pred_lists",
            UpdateConfig {
                maintain_predecessors: true,
                ..Default::default()
            },
        ),
        (
            "MO_pruned",
            UpdateConfig {
                prune_unchanged: true,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(BenchmarkId::new("add_stream", name), |b| {
            b.iter_batched(
                || BetweennessState::new_with(s.graph.clone(), cfg.clone()),
                |mut st| {
                    for &(u, v) in &adds {
                        st.apply(Update::add(u, v)).expect("valid");
                    }
                    black_box(st)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("remove_stream", name), |b| {
            b.iter_batched(
                || BetweennessState::new_with(s.graph.clone(), cfg.clone()),
                |mut st| {
                    for &(u, v) in &rems {
                        st.apply(Update::remove(u, v)).expect("valid");
                    }
                    black_box(st)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
