//! Criterion bench: shard handoff hot paths — one journaled disk handoff
//! round-trip, a `ShardSet::open` over clean shard files, and a live
//! memory-cluster skew/rebalance cycle. The committed
//! `BENCH_shard_handoff.json` baseline (produced by the `shard_handoff`
//! bin) tracks the same workloads with exact byte accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use ebc_core::bd::BdStore;
use ebc_engine::ClusterEngine;
use ebc_gen::models::holme_kim;
use ebc_store::{CodecKind, ShardSet};

const N: usize = 1_024;
const SOURCES_PER_SHARD: usize = 24;
const SHARDS: usize = 3;

fn populated(name: &str) -> ShardSet {
    let dir = std::env::temp_dir()
        .join("ebc_bench_shard_handoff")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let mut set = ShardSet::create(&dir, N, SHARDS, CodecKind::Wide).unwrap();
    for k in 0..SHARDS {
        for i in 0..SOURCES_PER_SHARD {
            let s = (k * SOURCES_PER_SHARD + i) as u32;
            let d = (0..N).map(|x| ((x + s as usize) % 7) as u32).collect();
            let sigma = vec![1u64; N];
            let delta = vec![0.0f64; N];
            set.shard_mut(k).add_source(s, d, sigma, delta).unwrap();
        }
    }
    set
}

fn bench_shard_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_handoff_1k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // one full journaled handoff there and back (state-neutral iteration)
    let mut set = populated("roundtrip");
    group.bench_function("disk_handoff_roundtrip", |b| {
        b.iter(|| {
            set.handoff(0, 0, 1).unwrap();
            set.handoff(0, 1, 0).unwrap();
        })
    });

    // reopening the directory: per-shard validation + journal scan
    let mut open_set = populated("open");
    open_set.flush().unwrap();
    let dir = std::env::temp_dir()
        .join("ebc_bench_shard_handoff")
        .join("open");
    drop(open_set);
    group.bench_function("shardset_open_clean", |b| {
        b.iter(|| {
            let set = ShardSet::open(&dir).unwrap();
            assert_eq!(set.num_shards(), SHARDS);
        })
    });

    // live path: skew one source over and let the plan pull it back
    let g = holme_kim(200, 3, 0.4, 7);
    let mut cluster = ClusterEngine::new(&g, 4).unwrap();
    group.bench_function("live_skew_and_rebalance", |b| {
        b.iter(|| {
            let s = *cluster.shard_map().sources_of(0).last().unwrap();
            cluster.handoff(s, 1).unwrap();
            let report = cluster.rebalance(1).unwrap();
            assert!(cluster.shard_map().skew() <= 1);
            report.moves.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_shard_handoff);
criterion_main!(benches);
