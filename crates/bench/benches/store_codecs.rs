//! Criterion bench: out-of-core record I/O — paper codec (11 B/vertex) vs
//! wide codec (20 B/vertex), plus the constant-cost `dd == 0` peek that
//! §5.1's skip optimisation rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_core::bd::BdStore;
use ebc_store::{CodecKind, DiskBdStore};
use std::hint::black_box;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ebc_bench_codecs");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn bench_codecs(c: &mut Criterion) {
    const N: usize = 10_000;
    let d: Vec<u32> = (0..N).map(|i| (i % 12) as u32).collect();
    let sigma: Vec<u64> = (0..N).map(|i| (i % 900 + 1) as u64).collect();
    let delta: Vec<f64> = (0..N).map(|i| i as f64 * 0.5).collect();

    let mut group = c.benchmark_group("disk_store_10k_vertices");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for codec in [CodecKind::Paper, CodecKind::Wide] {
        let label = format!("{codec:?}");
        let path = tmp(&format!("bench_{label}.bd"));
        let mut store = DiskBdStore::create(&path, N, codec).unwrap();
        for s in 0..8u32 {
            store
                .add_source(s, d.clone(), sigma.clone(), delta.clone())
                .unwrap();
        }
        group.bench_function(BenchmarkId::new("full_record_rewrite", &label), |b| {
            b.iter(|| {
                store
                    .update_with(3, &mut |view| {
                        view.delta[0] += 1.0;
                        true
                    })
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("dd0_peek", &label), |b| {
            b.iter(|| black_box(store.peek_pair(3, 17, 4093).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
