//! Criterion bench: the DO-mode disk store's update I/O discipline — the
//! frozen per-record path (one seek+read+write per affected source, what
//! the store did before format v2) against the coalesced
//! [`BdStore::update_batch`] path (run-sorted batched reads, coalesced
//! dirty write-backs), plus the O(1) in-headroom `grow_vertex`.
//!
//! The committed `BENCH_store_io.json` baseline (produced by the
//! `store_io_baseline` bin) tracks the same workload with exact byte/seek
//! accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebc_core::bd::BdStore;
use ebc_store::{CodecKind, DiskBdStore};

const N: usize = 2_048;
const SOURCES: u32 = 48;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ebc_bench_store_io");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A store whose every source is affected by the probe edge {0, 1}
/// (`d[0] != d[1]`), so both paths touch all records.
fn populated(name: &str, codec: CodecKind) -> DiskBdStore {
    let mut store = DiskBdStore::create(tmp(name), N, codec).unwrap();
    for s in 0..SOURCES {
        let mut d: Vec<u32> = (0..N).map(|i| ((i + s as usize) % 9) as u32).collect();
        d[0] = 0;
        d[1] = 3;
        let sigma = vec![1u64; N];
        let delta = vec![0.0f64; N];
        store.add_source(s, d, sigma, delta).unwrap();
    }
    store
}

fn bench_store_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_store_update_2k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for codec in [CodecKind::Paper, CodecKind::Wide] {
        let label = format!("{codec:?}");
        // frozen pre-v2 embodiment: one peek + one full record
        // read/modify/write per source, one seek each
        let mut store = populated(&format!("per_record_{label}.bd"), codec);
        group.bench_function(BenchmarkId::new("per_record_sweep", &label), |b| {
            b.iter(|| {
                let sources = store.sources();
                for s in sources {
                    let (a, bb) = store.peek_pair(s, 0, 1).unwrap();
                    assert_ne!(a, bb);
                    store
                        .update_with(s, &mut |view| {
                            view.delta[2] += 1.0;
                            true
                        })
                        .unwrap();
                }
            })
        });
        let mut store = populated(&format!("batched_{label}.bd"), codec);
        group.bench_function(BenchmarkId::new("batched_sweep", &label), |b| {
            b.iter(|| {
                let sources = store.sources();
                store
                    .update_batch(&sources, 0, 1, &mut |_, view| {
                        view.delta[2] += 1.0;
                        true
                    })
                    .unwrap()
            })
        });
    }
    group.finish();

    // in-headroom vertex growth: a single header-field update, independent
    // of S·n (the pre-v2 store rewrote the whole file here)
    let mut group = c.benchmark_group("disk_store_grow");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));
    let mut store = DiskBdStore::create_with_capacity(
        tmp("grow.bd"),
        N,
        // enough headroom that the timed loop (≤ sample_size iterations)
        // never re-slabs
        N + 64,
        CodecKind::Paper,
    )
    .unwrap();
    store
        .add_source(0, vec![0; N], vec![1; N], vec![0.0; N])
        .unwrap();
    group.bench_function("grow_vertex_in_headroom", |b| {
        b.iter(|| store.grow_vertex().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_store_io);
criterion_main!(benches);
