//! **Ablation study** (beyond the paper) — quantifies the design choices
//! DESIGN.md calls out:
//!
//! 1. predecessor-list maintenance (the paper's MP) vs predecessor-free (MO)
//!    — the §3 "Memory optimisation" claim;
//! 2. exact ancestor-walk pruning on/off — our extension over the paper's
//!    always-walk Algorithm 3;
//! 3. paper codec (11 B/vertex) vs wide codec (20 B/vertex) on disk — the
//!    §5.1 storage trade-off;
//! 4. the `dd == 0` skip rate — how much work Proposition 3.1 saves.

use ebc_bench::{addition_updates, mean, removal_updates, time_once, update_times, Args, Variant};
use ebc_core::incremental::UpdateConfig;
use ebc_core::state::{BetweennessState, Update};
use ebc_gen::standins::{standin, StandinKind};
use ebc_store::{CodecKind, DiskBdStore};

fn main() {
    let args = Args::parse();
    let s = standin(StandinKind::Synthetic(1000), 1, args.seed);
    let adds = addition_updates(&s.graph, args.updates, args.seed);
    let rems = removal_updates(&s.graph, args.updates, args.seed + 1);
    println!(
        "Ablations on the 1k synthetic graph, {} updates per cell\n",
        args.updates
    );

    // 1. predecessor lists
    let t_mo = mean(
        &update_times(&s.graph, &adds, Variant::Mo)
            .iter()
            .map(|d| d.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    let t_mp = mean(
        &update_times(&s.graph, &adds, Variant::Mp)
            .iter()
            .map(|d| d.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    println!("1. predecessor lists (additions):");
    println!("   MO (pred-free) mean {:.3} ms/update", t_mo * 1e3);
    println!(
        "   MP (maintained) mean {:.3} ms/update  ({:+.0}% vs MO)",
        t_mp * 1e3,
        100.0 * (t_mp - t_mo) / t_mo
    );

    // 2. pruning
    let mut timings = Vec::new();
    for (label, prune) in [
        ("walk-to-source (paper)", false),
        ("exact pruning (ours)", true),
    ] {
        let cfg = UpdateConfig {
            prune_unchanged: prune,
            ..Default::default()
        };
        let mut st = BetweennessState::new_with(s.graph.clone(), cfg);
        let (_, dt) = time_once(|| {
            for &(op, u, v) in adds.iter().chain(&rems) {
                st.apply(Update { op, u, v }).expect("valid");
            }
        });
        timings.push((label, dt.as_secs_f64(), st.stats().popped));
    }
    println!("\n2. ancestor-walk pruning (adds + removals):");
    for (label, secs, popped) in &timings {
        println!(
            "   {label:<24} {:.3} s total, {popped} vertices popped",
            secs
        );
    }

    // 3. codecs
    println!("\n3. on-disk codec (bootstrap + {} additions):", adds.len());
    for codec in [CodecKind::Paper, CodecKind::Wide] {
        let dir = std::env::temp_dir().join("ebc_ablation");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{codec:?}.bd"));
        let store = DiskBdStore::create(&path, s.graph.n(), codec).unwrap();
        let mut st =
            BetweennessState::new_into_store(s.graph.clone(), store, UpdateConfig::default())
                .unwrap();
        let (_, dt) = time_once(|| {
            for &(op, u, v) in &adds {
                st.apply(Update { op, u, v }).expect("valid");
            }
        });
        println!(
            "   {codec:?}: {:>5.2} s, {:.1} MiB on disk, {:.1} MiB read, {:.1} MiB written",
            dt.as_secs_f64(),
            st.store().data_bytes() as f64 / 1048576.0,
            st.store().bytes_read as f64 / 1048576.0,
            st.store().bytes_written as f64 / 1048576.0,
        );
    }

    // 4. skip rate
    let mut st = BetweennessState::new(&s.graph);
    for &(op, u, v) in adds.iter().chain(&rems) {
        st.apply(Update { op, u, v }).expect("valid");
    }
    let st_stats = st.stats();
    let total = st_stats.sources_processed + st_stats.sources_skipped;
    println!(
        "\n4. Proposition 3.1 skip rate: {}/{} sources ({:.1}%) skipped via dd == 0",
        st_stats.sources_skipped,
        total,
        100.0 * st_stats.sources_skipped as f64 / total as f64
    );
}
