//! **Cluster baseline** — produces the committed `BENCH_cluster.json`:
//! replicated fan-out apply throughput against the serial single-state
//! engine, and leader-failover wall time, on the in-process simulated
//! transport (real serialized frames, one OS thread per node, WAL
//! replication to a follower per shard).
//!
//! Every throughput cell ends in a `reduce_exact` asserted bitwise equal
//! to the serial oracle, so the numbers can never drift away from
//! correctness. The failover cells kill shard 0's leader with a
//! deterministic [`KillSpec`] and time the one `apply` call that rides
//! through the promotion.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin cluster_baseline [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` shrinks the workload to a seconds-long CI sanity pass.

use ebc_cluster::{CoordinatorConfig, KillSpec, KillWindow, NodeConfig, SimBuilder};
use std::time::{Duration, Instant};
use streaming_bc::core::BetweennessState;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::Update;

/// The first `count` non-edge vertex pairs of `g`, as additions.
fn non_edge_adds(g: &Graph, count: usize) -> Vec<Update> {
    let n = g.n() as u32;
    let mut out = Vec::with_capacity(count);
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                out.push(Update::add(u, v));
                if out.len() == count {
                    return out;
                }
            }
        }
    }
    panic!("graph too dense for {count} non-edges");
}

fn to_bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Tight leases so the kill cells bound failover detection rather than
/// waiting out production-sized timeouts.
fn fast_cfgs() -> (NodeConfig, CoordinatorConfig) {
    let node = NodeConfig {
        rep_attempts: 3,
        rep_timeout: Duration::from_millis(40),
        ..NodeConfig::default()
    };
    let coord = CoordinatorConfig {
        rpc_timeout: Duration::from_millis(80),
        rpc_attempts: 4,
        ..CoordinatorConfig::default()
    };
    (node, coord)
}

/// One calm throughput cell: replicated `p`-shard cluster, the full
/// stream through the coordinator fan-out, exactness asserted.
fn run_cluster_rep(g: &Graph, stream: &[Update], p: usize, want: &(Vec<u64>, Vec<u64>)) -> f64 {
    let (node_cfg, coord_cfg) = fast_cfgs();
    let mut sim = SimBuilder::new(p)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg)
        .launch(g)
        .expect("launch cluster");
    let t0 = Instant::now();
    for &u in stream {
        sim.coord.apply(u).expect("calm apply");
    }
    let wall = t0.elapsed().as_secs_f64();
    let s = sim.coord.reduce_exact().expect("reduce");
    assert_eq!(
        (want.0.as_slice(), want.1.as_slice()),
        (to_bits(&s.vbc).as_slice(), to_bits(&s.ebc).as_slice()),
        "p={p} cluster drifted from the serial oracle"
    );
    sim.shutdown();
    stream.len() as f64 / wall
}

/// One failover cell: shard 0's leader dies mid-apply at a fixed WAL
/// index; the slowest single `apply` in the run is the one that rode the
/// promotion. Returns (failover_ms, clean-apply median ms).
fn run_failover_rep(g: &Graph, stream: &[Update], p: usize, want: &(Vec<u64>, Vec<u64>)) -> f64 {
    let (node_cfg, coord_cfg) = fast_cfgs();
    let mut sim = SimBuilder::new(p)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg)
        .kill(
            ebc_cluster::NodeId(1),
            KillSpec {
                window: KillWindow::MidApply,
                at_index: 2,
            },
        )
        .launch(g)
        .expect("launch cluster");
    let mut slowest = 0.0f64;
    for &u in stream {
        let t0 = Instant::now();
        sim.coord.apply(u).expect("apply across failover");
        slowest = slowest.max(t0.elapsed().as_secs_f64());
    }
    assert_eq!(sim.coord.failovers(), 1, "expected exactly one failover");
    let s = sim.coord.reduce_exact().expect("reduce");
    assert_eq!(
        (want.0.as_slice(), want.1.as_slice()),
        (to_bits(&s.vbc).as_slice(), to_bits(&s.ebc).as_slice()),
        "failover run drifted from the serial oracle"
    );
    sim.shutdown();
    slowest * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_cluster.json");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }

    let (n, updates, ps, reps): (_, _, &[usize], _) = if smoke {
        (48, 24, &[1, 2], 1)
    } else {
        (256, 96, &[1, 2, 4], 3)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let g = holme_kim(n, 2, 0.3, 11);
    let m = g.m();
    let stream = non_edge_adds(&g, updates);

    // serial oracle: one BetweennessState, and the bits every cell must hit
    let mut serial = 0.0f64;
    let mut want = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let mut st = BetweennessState::new(&g);
        let t0 = Instant::now();
        for &u in &stream {
            st.apply(u).expect("serial apply");
        }
        let wall = t0.elapsed().as_secs_f64();
        serial = serial.max(stream.len() as f64 / wall);
        let s = st.exact_scores().expect("serial scores");
        want = (to_bits(&s.vbc), to_bits(&s.ebc));
    }
    eprintln!("serial: {serial:.1} updates/s");

    let mut rows = Vec::new();
    for &p in ps {
        let mut best = 0.0f64;
        for _ in 0..reps {
            best = best.max(run_cluster_rep(&g, &stream, p, &want));
        }
        eprintln!("p={p}: {best:.1} updates/s ({:.2}x serial)", best / serial);
        rows.push(format!(
            "    {{\"p\": {p}, \"updates_per_s\": {best:.1}, \"speedup_vs_serial\": {:.4}}}",
            best / serial
        ));
    }

    let fail_reps = if smoke { 2 } else { 5 };
    let mut fails: Vec<f64> = (0..fail_reps)
        .map(|_| run_failover_rep(&g, &stream, 2, &want))
        .collect();
    fails.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let fo_median = fails[fails.len() / 2];
    let fo_max = *fails.last().unwrap();
    eprintln!("failover: median {fo_median:.2}ms, max {fo_max:.2}ms over {fail_reps} kills");

    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"n\": {n},\n  \"m\": {m},\n  \
         \"updates\": {updates},\n  \"repetitions\": {reps},\n  \"host_cores\": {cores},\n  \
         \"serial_updates_per_s\": {serial:.1},\n  \
         \"metric\": \"in-process simulated cluster (one thread per node, real serialized frames, one follower per shard): updates_per_s = stream length / wall clock through the coordinator fan-out, best of repetitions, each cell's reduce_exact asserted bitwise equal to the serial oracle; failover_ms times the single apply that rides a deterministic MidApply leader kill on a p=2 cluster\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"failover\": {{\"kills\": {fail_reps}, \"median_ms\": {fo_median:.3}, \"max_ms\": {fo_max:.3}}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
