//! **Compaction & replay baseline** — produces the committed
//! `BENCH_compaction.json`: what checkpoint-and-truncate compaction
//! (DESIGN.md §14) costs on the write path, what it saves on disk, and
//! what the `sbc replay` read path pays to time-travel.
//!
//! Per stream length, two disk sessions absorb the **same** toggle
//! stream under `Checkpoint::EveryApply`:
//!
//! * `compacting` — `max_live_wal_bytes = 1 KiB`, so the live WAL is
//!   sealed into history segments every few dozen updates;
//! * `unbounded` — `max_live_wal_bytes = u64::MAX`, the append-forever
//!   control.
//!
//! The cell then replays the full history and a mid-history seq through
//! `Session::replay_dir`. Exactness is asserted **before** any timing:
//! the replayed scores must be bitwise equal to the live session's
//! `reduce_exact` — the tentpole acceptance bar, re-proven on every
//! bench run.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin compaction_baseline [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` shrinks the sweep to a seconds-long CI sanity pass.

use std::time::Instant;
use streaming_bc::core::Update;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::{Backend, CompactionConfig, Session};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A valid toggle stream of `len` updates: add when absent, remove when
/// present, tracked against a mirror graph so every update applies.
fn toggle_stream(g: &Graph, len: usize, seed: u64) -> Vec<Update> {
    let mut mirror = g.clone();
    let mut state = seed;
    let n = g.n() as u32;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let r = splitmix64(&mut state);
        let u = (r as u32) % n;
        let v = ((r >> 32) as u32) % n;
        if u == v {
            continue;
        }
        let update = if mirror.has_edge(u, v) {
            mirror.remove_edge(u, v).unwrap();
            Update::remove(u, v)
        } else {
            mirror.add_edge(u, v).unwrap();
            Update::add(u, v)
        };
        out.push(update);
    }
    out
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Build a disk session in `dir`, stream every update, return the apply
/// wall time in seconds.
fn drive(dir: &std::path::Path, g: &Graph, stream: &[Update], max: u64) -> (Session, f64) {
    let mut session = Session::builder()
        .backend(Backend::Disk(dir.to_path_buf()))
        .compaction(CompactionConfig {
            keep_history: true,
            max_live_wal_bytes: max,
        })
        .build(g)
        .expect("build session");
    let t0 = Instant::now();
    for &u in stream {
        session.apply(u).expect("apply");
    }
    (session, t0.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_compaction.json");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }

    const MAX: u64 = 1024;
    let (n, lens): (usize, &[usize]) = if smoke {
        (48, &[150])
    } else {
        (96, &[400, 1600, 6400])
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let scratch = std::env::temp_dir().join(format!("sbc_bench_compaction_{}", std::process::id()));

    let mut rows = Vec::new();
    for &len in lens {
        let g = holme_kim(n, 3, 0.4, 0x5eed ^ len as u64);
        let stream = toggle_stream(&g, len, 0xc0de ^ len as u64);

        let dir_c = scratch.join(format!("compacting_{len}"));
        let dir_u = scratch.join(format!("unbounded_{len}"));
        let (mut session_c, wall_c) = drive(&dir_c, &g, &stream, MAX);
        let (session_u, wall_u) = drive(&dir_u, &g, &stream, u64::MAX);

        // the bitwise contract first, then the stopwatch: replay over the
        // sealed segments must reproduce the live scores exactly
        let live = session_c.reduce_exact().expect("live reduce").scores;
        let replayed = session_c
            .replay_to(len as u64)
            .expect("replay over segments");
        assert_eq!(
            bits(&live.vbc),
            bits(&replayed.scores.vbc),
            "len={len}: replayed VBC diverged from the live session"
        );
        assert_eq!(
            bits(&live.ebc),
            bits(&replayed.scores.ebc),
            "len={len}: replayed EBC diverged from the live session"
        );

        let stats_c = session_c.history_stats().expect("history stats");
        let stats_u = session_u.history_stats().expect("history stats");
        assert!(
            stats_c.live_wal_bytes <= MAX,
            "len={len}: live WAL not bounded by the compaction threshold"
        );
        drop(session_c);
        drop(session_u);

        let t0 = Instant::now();
        let full = Session::replay_dir(&dir_c, None).expect("replay all");
        let replay_all_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(full.seq, len as u64);
        let t0 = Instant::now();
        Session::replay_dir(&dir_c, Some(len as u64 / 2)).expect("replay mid");
        let replay_mid_ms = t0.elapsed().as_secs_f64() * 1e3;

        let us_c = wall_c / len as f64 * 1e6;
        let us_u = wall_u / len as f64 * 1e6;
        eprintln!(
            "updates={len:>5}: apply {us_u:.1}us -> {us_c:.1}us/update (x{:.2} with compaction), \
             live WAL {} -> {} bytes, {} segments ({} sealed bytes), \
             replay all {replay_all_ms:.1}ms / mid {replay_mid_ms:.1}ms",
            us_c / us_u,
            stats_u.live_wal_bytes,
            stats_c.live_wal_bytes,
            stats_c.segments,
            stats_c.sealed_bytes,
        );
        rows.push(format!(
            "    {{\"updates\": {len}, \"n\": {n}, \
             \"apply_compacting_us\": {us_c:.3}, \"apply_unbounded_us\": {us_u:.3}, \
             \"compaction_overhead\": {:.3}, \
             \"live_wal_bytes_compacting\": {}, \"live_wal_bytes_unbounded\": {}, \
             \"segments\": {}, \"sealed_bytes\": {}, \
             \"replay_all_ms\": {replay_all_ms:.3}, \"replay_mid_ms\": {replay_mid_ms:.3}}}",
            us_c / us_u,
            stats_c.live_wal_bytes,
            stats_u.live_wal_bytes,
            stats_c.segments,
            stats_c.sealed_bytes,
        ));
        let _ = std::fs::remove_dir_all(&dir_c);
        let _ = std::fs::remove_dir_all(&dir_u);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let json = format!(
        "{{\n  \"bench\": \"compaction\",\n  \"max_live_wal_bytes\": {MAX},\n  \
         \"host_cores\": {cores},\n  \
         \"metric\": \"per-update apply wall time under Checkpoint::EveryApply on the disk backend with checkpoint-and-truncate compaction (1 KiB live-WAL bound) vs an append-forever control, final live-WAL/sealed-segment byte accounting, and the sbc replay read path (full history and mid-history seq); every cell asserts replay-vs-live bitwise equality before timing\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
