//! **Engine-scaling baseline** — produces the committed
//! `BENCH_engine_scaling.json`: per-update map wall-clock on the 2k
//! synthetic for workers 1/2/4/8, for both
//!
//! * the **pool** engine (persistent worker threads, pipelined
//!   `apply_stream` — the steady-state path), and
//! * the **scoped** reference: a frozen copy of the pre-pool embodiment
//!   that respawns `std::thread::scope` workers on every update. It lives
//!   here, in the bench crate, precisely so the engine itself carries no
//!   scoped-spawn code while the comparison stays reproducible.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin engine_baseline [-- --out PATH]
//! ```

use ebc_core::bd::{BdStore, MemoryBdStore};
use ebc_core::brandes::{single_source_update_with, BrandesScratch};
use ebc_core::incremental::{update_source, UpdateConfig, Workspace};
use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_engine::{partition_ranges, ClusterEngine};
use ebc_gen::standins::{standin, StandinKind};
use ebc_gen::streams::addition_stream;
use ebc_graph::{EdgeOp, Graph, VertexId};
use std::time::{Duration, Instant};

/// Frozen pre-pool worker: replica + store + partial, driven by scoped
/// threads spawned per update (what `ClusterEngine` used to do).
struct ScopedWorker {
    graph: Graph,
    store: MemoryBdStore,
    partial: Scores,
    ws: Workspace,
    scratch: BrandesScratch,
    cfg: UpdateConfig,
}

impl ScopedWorker {
    fn apply(&mut self, update: Update, adopt: Option<VertexId>) -> Duration {
        let t0 = Instant::now();
        let Update { op, u, v } = update;
        match op {
            EdgeOp::Add => {
                if (u.max(v) as usize) == self.graph.n() {
                    self.graph.add_vertex();
                    self.store.grow_vertex().expect("memory store");
                    self.ws.grow(self.graph.n());
                }
                self.graph.add_edge(u, v).expect("valid addition");
            }
            EdgeOp::Remove => {
                self.graph.remove_edge(u, v).expect("valid removal");
            }
        }
        self.partial
            .ensure_shape(self.graph.n(), self.graph.edge_slots());
        let graph = &self.graph;
        let partial = &mut self.partial;
        let ws = &mut self.ws;
        let cfg = &self.cfg;
        for s in self.store.sources() {
            let (a, b) = self.store.peek_pair(s, u, v).expect("memory store");
            if a == b {
                continue;
            }
            self.store
                .update_with(s, &mut |view| {
                    update_source(graph, s, op, u, v, view, partial, ws, cfg)
                })
                .expect("memory store");
        }
        if let Some(s_new) = adopt {
            let r =
                single_source_update_with(&self.graph, s_new, &mut self.partial, &mut self.scratch);
            self.store
                .add_source(s_new, r.d, r.sigma, r.delta)
                .expect("memory store");
        }
        t0.elapsed()
    }
}

struct ScopedCluster {
    workers: Vec<ScopedWorker>,
    n: usize,
}

impl ScopedCluster {
    fn bootstrap(graph: &Graph, p: usize) -> Self {
        let n = graph.n();
        let ranges = partition_ranges(n, p);
        let mut workers: Vec<ScopedWorker> = ranges
            .iter()
            .map(|_| ScopedWorker {
                graph: graph.clone(),
                store: MemoryBdStore::new(n),
                partial: Scores::zeros_for(graph),
                ws: Workspace::new(n),
                scratch: BrandesScratch::new(n),
                cfg: UpdateConfig::default(),
            })
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker, range) in workers.iter_mut().zip(ranges.iter()) {
                let range = range.clone();
                handles.push(scope.spawn(move || {
                    for s in range {
                        let r = single_source_update_with(
                            &worker.graph,
                            s,
                            &mut worker.partial,
                            &mut worker.scratch,
                        );
                        worker.store.add_source(s, r.d, r.sigma, r.delta).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().expect("bootstrap worker");
            }
        });
        ScopedCluster { workers, n }
    }

    /// One update with per-update scoped spawns; returns the map wall-clock
    /// (slowest worker).
    fn apply(&mut self, update: Update) -> Duration {
        let mut adopter = None;
        if update.op == EdgeOp::Add && (update.u.max(update.v) as usize) == self.n {
            adopter = self
                .workers
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.store.num_sources())
                .map(|(i, _)| i);
            self.n += 1;
        }
        let times: Vec<Duration> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (id, worker) in self.workers.iter_mut().enumerate() {
                let adopt = if Some(id) == adopter {
                    Some(update.u.max(update.v))
                } else {
                    None
                };
                handles.push(scope.spawn(move || worker.apply(update, adopt)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        times.into_iter().max().unwrap_or_default()
    }
}

fn mean_secs(xs: &[Duration]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|d| d.as_secs_f64()).sum::<f64>() / xs.len() as f64
}

fn main() {
    let mut out_path = String::from("BENCH_engine_scaling.json");
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }
    let reps = 3usize;
    let s = standin(StandinKind::Synthetic(2_000), 1, 42);
    let adds: Vec<Update> = addition_stream(&s.graph, 16, 7)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    eprintln!(
        "engine_baseline: {} (n={} m={}), {} updates, {} reps, {} cores",
        s.name,
        s.graph.n(),
        s.graph.m(),
        adds.len(),
        reps,
        cores
    );

    // interleave a periodic reduce into the stream: the overlapped path
    // folds batch k's partials while batch k+1's maps are already running
    let reduce_every = 4usize;

    struct Row {
        p: usize,
        pool_map_wall: f64,
        pool_stream_wall: f64,
        overlap_stream_wall: f64,
        barrier_stream_wall: f64,
        scoped_map_wall: f64,
        scoped_stream_wall: f64,
    }

    let mut rows: Vec<Row> = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let mut row = Row {
            p,
            pool_map_wall: f64::INFINITY,
            pool_stream_wall: f64::INFINITY,
            overlap_stream_wall: f64::INFINITY,
            barrier_stream_wall: f64::INFINITY,
            scoped_map_wall: f64::INFINITY,
            scoped_stream_wall: f64::INFINITY,
        };
        for _ in 0..reps {
            // pool, sequential applies: the per-update map critical path
            let mut cluster = ClusterEngine::new(&s.graph, p).expect("bootstrap pool");
            let walls: Vec<Duration> = adds
                .iter()
                .map(|&u| cluster.apply(u).expect("valid update").map_wall)
                .collect();
            row.pool_map_wall = row.pool_map_wall.min(mean_secs(&walls));

            // pool, pipelined stream: end-to-end wall clock per update
            let mut cluster = ClusterEngine::new(&s.graph, p).expect("bootstrap pool");
            let t0 = Instant::now();
            cluster.apply_stream(&adds).expect("valid stream");
            row.pool_stream_wall = row
                .pool_stream_wall
                .min(t0.elapsed().as_secs_f64() / adds.len() as f64);

            // overlapped reduce: every reduce_every-th dispatch folds the
            // partials while later updates' maps are already in flight
            let mut cluster = ClusterEngine::new(&s.graph, p).expect("bootstrap pool");
            let t0 = Instant::now();
            let (_, reduces) = cluster
                .apply_stream_reduced(&adds, reduce_every)
                .expect("valid stream");
            row.overlap_stream_wall = row
                .overlap_stream_wall
                .min(t0.elapsed().as_secs_f64() / adds.len() as f64);
            let num_reduces = reduces.len();

            // barriered reference: same schedule, but each reduce waits for
            // its batch to drain before the next batch is dispatched
            let mut cluster = ClusterEngine::new(&s.graph, p).expect("bootstrap pool");
            let t0 = Instant::now();
            let mut barrier_reduces = 0usize;
            for chunk in adds.chunks(reduce_every) {
                cluster.apply_stream(chunk).expect("valid stream");
                cluster.reduce().expect("reduce");
                barrier_reduces += 1;
            }
            row.barrier_stream_wall = row
                .barrier_stream_wall
                .min(t0.elapsed().as_secs_f64() / adds.len() as f64);
            assert_eq!(
                num_reduces, barrier_reduces,
                "overlapped and barriered schedules must run the same reduces"
            );

            // scoped reference: per-update map wall and end-to-end wall
            let mut scoped = ScopedCluster::bootstrap(&s.graph, p);
            let t0 = Instant::now();
            let walls: Vec<Duration> = adds.iter().map(|&u| scoped.apply(u)).collect();
            row.scoped_stream_wall = row
                .scoped_stream_wall
                .min(t0.elapsed().as_secs_f64() / adds.len() as f64);
            row.scoped_map_wall = row.scoped_map_wall.min(mean_secs(&walls));
        }
        eprintln!(
            "  p={p}: map wall pool {:.6}s vs scoped {:.6}s ({:.2}x) | stream wall \
             pool {:.6}s vs scoped {:.6}s ({:.2}x) | reduce-laced stream \
             overlapped {:.6}s vs barriered {:.6}s ({:.2}x)",
            row.pool_map_wall,
            row.scoped_map_wall,
            row.scoped_map_wall / row.pool_map_wall,
            row.pool_stream_wall,
            row.scoped_stream_wall,
            row.scoped_stream_wall / row.pool_stream_wall,
            row.overlap_stream_wall,
            row.barrier_stream_wall,
            row.barrier_stream_wall / row.overlap_stream_wall,
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"engine_scaling\",\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", s.name));
    json.push_str(&format!("  \"n\": {},\n", s.graph.n()));
    json.push_str(&format!("  \"m\": {},\n", s.graph.m()));
    json.push_str(&format!("  \"updates\": {},\n", adds.len()));
    json.push_str(&format!("  \"repetitions\": {reps},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!("  \"reduce_every\": {reduce_every},\n"));
    json.push_str(
        "  \"metric\": \"seconds per update, best of repetitions; map_wall = slowest \
         worker's busy time on sequential applies, stream_wall = end-to-end wall clock \
         of the batch path divided by the update count; overlap/barrier_stream_wall = \
         the same stream laced with a reduce every reduce_every dispatches, folded \
         concurrently with later maps (overlap) vs at a full barrier (barrier)\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"pool_map_wall_s\": {:.9}, \"pool_stream_wall_s\": {:.9}, \
             \"overlap_stream_wall_s\": {:.9}, \"barrier_stream_wall_s\": {:.9}, \
             \"scoped_map_wall_s\": {:.9}, \"scoped_stream_wall_s\": {:.9}, \
             \"speedup_map_wall\": {:.3}, \"speedup_stream_wall\": {:.3}, \
             \"speedup_overlapped_reduce\": {:.3}}}{}\n",
            row.p,
            row.pool_map_wall,
            row.pool_stream_wall,
            row.overlap_stream_wall,
            row.barrier_stream_wall,
            row.scoped_map_wall,
            row.scoped_stream_wall,
            row.scoped_map_wall / row.pool_map_wall,
            row.scoped_stream_wall / row.pool_stream_wall,
            row.barrier_stream_wall / row.overlap_stream_wall,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
