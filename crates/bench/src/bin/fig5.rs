//! **Figure 5** — CDF of the speedup over Brandes for the framework's three
//! configurations (MP: memory + predecessor lists, MO: memory, DO: disk) on
//! synthetic graphs (1k, 10k) and real graphs (wikielections stands in for
//! the paper's pair), under edge additions.
//!
//! Rendered as decile rows; the headline result is MO ≥ MP everywhere
//! (removing predecessor lists *speeds up* updates) and DO within a small
//! factor of MO.

use ebc_bench::{
    addition_updates, dataset, print_cdf, speedups, synthetic_rows, time_brandes, update_times,
    Args, Variant,
};
use ebc_gen::standins::StandinKind;

fn main() {
    let args = Args::parse();
    println!(
        "Figure 5: speedup CDF over Brandes, 3 variants, {} additions (deciles)\n",
        args.updates
    );
    // The DO rows bootstrap an O(n²) disk file per variant; default to the
    // 1k-scale graphs (the paper's full set needs --full and patience).
    let mut rows = synthetic_rows(&args);
    if !args.full {
        rows.truncate(1);
    }
    rows.push(dataset(StandinKind::WikiElections, &args));
    for s in rows {
        let (_, tb) = time_brandes(&s.graph);
        let adds = addition_updates(&s.graph, args.updates, args.seed);
        for variant in [Variant::Mp, Variant::Do, Variant::Mo] {
            let times = update_times(&s.graph, &adds, variant);
            let sp = speedups(tb, &times);
            print_cdf(&format!("{}-{}", s.name, variant.label()), &sp);
        }
        println!();
    }
    println!("Expected shape (paper): MO dominates MP at every decile; DO is slower than");
    println!("MO (disk-bound) but still 10-50x over Brandes at the median.");
}
