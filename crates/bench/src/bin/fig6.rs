//! **Figure 6** — CDF of speedup over Brandes when the framework runs on the
//! parallel engine (the paper's MapReduce cluster): (a) additions/synthetic,
//! (b) removals/synthetic, (c) additions/real, (d) removals/real.
//!
//! As in the paper, Brandes' single-machine time is compared against the
//! *cumulative* execution time across all workers (map busy times + reduce),
//! and each worker is assigned ~1k sources.

use ebc_bench::{
    addition_updates, mean, print_cdf, real_rows, removal_updates, synthetic_rows, time_brandes,
    Args,
};
use ebc_core::state::Update;
use ebc_engine::ClusterEngine;
use ebc_gen::standins::Standin;
use ebc_graph::EdgeOp;

fn main() {
    let args = Args::parse();
    println!(
        "Figure 6: speedup CDF on the parallel engine (cumulative worker time), \
         {} updates\n",
        args.updates
    );
    let synth = synthetic_rows(&args);
    let real = real_rows(&args);
    for (panel, rows, op) in [
        ("(a) additions, synthetic", &synth, EdgeOp::Add),
        ("(b) removals, synthetic", &synth, EdgeOp::Remove),
        ("(c) additions, real", &real, EdgeOp::Add),
        ("(d) removals, real", &real, EdgeOp::Remove),
    ] {
        println!("{panel}");
        for s in rows {
            let sp = panel_speedups(s, op, &args);
            print_cdf(&s.name, &sp);
        }
        println!();
    }
}

fn panel_speedups(s: &Standin, op: EdgeOp, args: &Args) -> Vec<f64> {
    let (_, tb) = time_brandes(&s.graph);
    // one mapper per ~1k sources, as in the paper's setup
    let p = (s.graph.n() / 1000).max(1);
    let mut cluster = ClusterEngine::new(&s.graph, p).expect("bootstrap cluster");
    let updates = match op {
        EdgeOp::Add => addition_updates(&s.graph, args.updates, args.seed),
        EdgeOp::Remove => removal_updates(&s.graph, args.updates, args.seed + 1),
    };
    let mut sp = Vec::with_capacity(updates.len());
    for (o, u, v) in updates {
        let rep = cluster.apply(Update { op: o, u, v }).expect("valid update");
        let merge = cluster.reduce().expect("live cluster").wall;
        let cumulative = (rep.cumulative + merge).as_secs_f64().max(1e-9);
        sp.push(tb.as_secs_f64() / cumulative);
    }
    eprintln!("  [{} p={p} mean speedup {:.0}]", s.name, mean(&sp));
    sp
}
