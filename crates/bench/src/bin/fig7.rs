//! **Figure 7** — scaling of the parallel engine:
//!
//! * (a–b) **strong scaling**: wall-clock time per new edge against the
//!   number of mappers, at fixed workloads of 100/200/300 edges — the paper
//!   shows near-linear decrease;
//! * (c–d) **weak scaling**: total time against mappers with the
//!   edges-per-mapper ratio held constant — the paper shows flat lines.
//!
//! Worker counts up to the local core count are *measured* with real worker
//! threads; larger counts use the paper's `t_U = t_S·n/p + t_M` projection
//! from the measured single-worker work (marked `model`).

use ebc_bench::{addition_updates, synthetic_rows, time_once, Args};
use ebc_core::state::{BetweennessState, Update};
use ebc_engine::ClusterEngine;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    println!("Figure 7: strong and weak scaling (cores available: {cores})\n");
    let merge = Duration::from_micros(50);

    for s in synthetic_rows(&args) {
        // measure the single-worker total busy time for 300 additions
        let adds = addition_updates(&s.graph, 300.min(args.updates.max(100) * 3), args.seed);
        let mut st = BetweennessState::new(&s.graph);
        let mut cum = Vec::with_capacity(adds.len());
        let mut total = Duration::ZERO;
        for &(op, u, v) in &adds {
            let (_, dt) = time_once(|| st.apply(Update { op, u, v }).expect("valid"));
            total += dt;
            cum.push(total);
        }
        println!(
            "--- strong scaling, {} (wall-clock seconds per new edge)",
            s.name
        );
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            "mappers", "100 edges", "200 edges", "300 edges", "mode"
        );
        for p in [1usize, 2, 4, 8, 16, 32, 64] {
            let per_edge = |k: usize| {
                let k = k.min(cum.len());
                cum[k - 1].as_secs_f64() / p as f64 / k as f64 + merge.as_secs_f64()
            };
            let mode = if p <= cores { "model*" } else { "model" };
            println!(
                "{:>8} {:>12.5} {:>12.5} {:>12.5} {:>10}",
                p,
                per_edge(100),
                per_edge(200),
                per_edge(300),
                mode
            );
        }

        // measured verification on the persistent pool (small p), driving
        // the pipelined batch path
        println!("  measured with the live worker pool:");
        for p in [1usize, 2, 4] {
            if p > cores {
                break;
            }
            let mut cluster = ClusterEngine::new(&s.graph, p).expect("bootstrap");
            let probe: Vec<Update> = adds[..20.min(adds.len())]
                .iter()
                .map(|&(op, u, v)| Update { op, u, v })
                .collect();
            let reports = cluster.apply_stream(&probe).expect("valid");
            let wall: Duration = reports.iter().map(|r| r.map_wall).sum();
            println!(
                "{:>8} {:>12.5}   (per edge, {} probe edges)",
                p,
                wall.as_secs_f64() / probe.len() as f64,
                probe.len()
            );
        }

        println!(
            "--- weak scaling, {} (total seconds at fixed edges-per-mapper ratio r)",
            s.name
        );
        println!("{:>8} {:>10} {:>10} {:>10}", "mappers", "r=1", "r=2", "r=3");
        let mean_edge = cum.last().expect("nonempty").as_secs_f64() / cum.len() as f64;
        for p in [8usize, 16, 32, 64] {
            let t = |r: usize| {
                let edges = r * p;
                edges as f64 * mean_edge / p as f64 + edges as f64 * merge.as_secs_f64()
            };
            println!("{:>8} {:>10.4} {:>10.4} {:>10.4}", p, t(1), t(2), t(3));
        }
        println!();
    }
    println!("Expected shape (paper): strong-scaling rows fall ~linearly with mappers and");
    println!("are insensitive to the edge count; weak-scaling rows are flat per ratio r.");
}
