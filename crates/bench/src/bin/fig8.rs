//! **Figure 8** — online capability: inter-arrival time of the last 100
//! edges of slashdot and facebook against the time the framework needs to
//! produce updated betweenness, for several mapper counts.
//!
//! Prints the two series (arrival gap, update time per p) per arriving edge;
//! an update is *online* when its update time stays below the gap.

use ebc_bench::{dataset, Args};
use ebc_core::state::BetweennessState;
use ebc_engine::online::{simulate_modeled, OnlineReport};
use ebc_gen::standins::StandinKind;
use ebc_gen::streams::replay_growth;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    println!("Figure 8: inter-arrival vs update time on the streamed tail\n");
    run(StandinKind::Slashdot, &[1, 10], 4.0, &args);
    run(StandinKind::Facebook, &[1, 10, 50], 0.8, &args);
}

fn run(kind: StandinKind, ps: &[usize], gap_factor: f64, args: &Args) {
    let s = dataset(kind, args);
    let tail = args.updates.min(s.arrival_order.len() / 2).max(10);
    // calibrate arrivals exactly like table5
    let (boot, probe_stream) =
        replay_growth(&s.arrival_order, s.graph.n(), tail, 1.0, 1.4, args.seed);
    let mut probe = BetweennessState::new(&boot);
    let t1 = simulate_modeled(&mut probe, &probe_stream, 1, Duration::ZERO)
        .expect("probe")
        .mean_update_time()
        .max(1e-6);
    let (boot, stream) = replay_growth(
        &s.arrival_order,
        s.graph.n(),
        tail,
        t1 * gap_factor,
        1.4,
        args.seed,
    );

    let reports: Vec<(usize, OnlineReport)> = ps
        .iter()
        .map(|&p| {
            let mut st = BetweennessState::new(&boot);
            let r = simulate_modeled(&mut st, &stream, p, Duration::from_micros(50))
                .expect("modeled replay");
            (p, r)
        })
        .collect();

    println!("--- {} (tail of {} edges; times in seconds)", s.name, tail);
    print!("{:>6} {:>14}", "edge", "inter-arrival");
    for (p, _) in &reports {
        print!(" {:>12}", format!("upds,{p}map"));
    }
    println!();
    for i in 0..stream.len() {
        print!("{:>6} {:>14.4}", i, reports[0].1.events[i].gap);
        for (_, r) in &reports {
            print!(" {:>12.4}", r.events[i].update_time);
        }
        println!();
    }
    for (p, r) in &reports {
        println!(
            "  p={p}: {:.1}% missed, avg delay {:.3}s",
            r.pct_missed(),
            r.avg_delay
        );
    }
    println!();
}
