//! **Figure 9** — Girvan–Newman use case: speedup of community detection
//! with incrementally maintained edge betweenness over the classic
//! recompute-after-every-removal baseline, as a function of how many
//! top-betweenness edges are removed.

use ebc_bench::{time_once, Args};
use ebc_gen::standins::{standin, StandinKind};
use ebc_gn::{girvan_newman_incremental, girvan_newman_recompute};

fn main() {
    let args = Args::parse();
    println!("Figure 9: Girvan-Newman speedup vs top-betweenness edges removed\n");
    let mut sizes = vec![1_000];
    if args.full {
        sizes.push(10_000);
    }
    let mut budgets = vec![1usize, 10, 100];
    if args.full {
        budgets.push(1000);
    }
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "graph", "removals", "incr (s)", "recomp (s)", "speedup"
    );
    for n in sizes {
        let s = standin(StandinKind::Synthetic(n), 1, args.seed);
        for &k in &budgets {
            let (inc, t_inc) = time_once(|| girvan_newman_incremental(&s.graph, k));
            let (rec, t_rec) = time_once(|| girvan_newman_recompute(&s.graph, k));
            // sanity: both strategies must peel the same number of edges
            assert_eq!(inc.steps.len(), rec.steps.len());
            println!(
                "{:>8} {:>10} {:>12.3} {:>12.3} {:>9.1}",
                s.name,
                k,
                t_inc.as_secs_f64(),
                t_rec.as_secs_f64(),
                t_rec.as_secs_f64() / t_inc.as_secs_f64().max(1e-9)
            );
        }
    }
    println!("\nExpected shape (paper): speedup ~1 for a single removal (the bootstrap");
    println!("dominates) rising to ~an order of magnitude as more edges are peeled.");
}
