//! **Serve baseline** — produces the committed `BENCH_serve.json`: the
//! network frontend's sustained update throughput and query latency under
//! concurrent load, measured end to end over TCP loopback.
//!
//! An in-process [`Server`] owns a Memory-backend `Session`. Writer
//! clients stream `apply` batches (each batch waits for its ack — the
//! single writer task serialises them), while reader clients hammer
//! `top_k` and record per-request round-trip latency. Because reads are
//! answered from the published snapshot without touching the writer task,
//! the interesting numbers are how batch size buys throughput and whether
//! query p99 stays flat while the update path is saturated.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin serve_baseline [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` shrinks the workload to a seconds-long CI sanity pass.

use ebc_serve::json::{self, Value};
use ebc_serve::{encode_update, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::serve::ServedSession;
use streaming_bc::{Backend, Session, Update};

/// One blocking protocol connection: send a line, read the response line.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect to serve frontend");
        stream.set_nodelay(true).ok();
        Wire {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(
            resp.contains("\"ok\":true"),
            "request {line:?} failed: {resp}"
        );
        resp
    }
}

fn apply_line(batch: &[Update]) -> String {
    json::obj([
        ("cmd", Value::from("apply")),
        (
            "updates",
            Value::Arr(batch.iter().map(encode_update).collect()),
        ),
    ])
    .to_json()
}

/// The first `count` non-edge vertex pairs of `g`, as additions.
fn non_edge_adds(g: &streaming_bc::graph::Graph, count: usize) -> Vec<Update> {
    let n = g.n() as u32;
    let mut out = Vec::with_capacity(count);
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                out.push(Update::add(u, v));
                if out.len() == count {
                    return out;
                }
            }
        }
    }
    panic!("graph too dense for {count} non-edges");
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e3
}

struct RepResult {
    updates_per_s: f64,
    latencies: Vec<f64>,
}

/// One full load cell: a fresh server, `writers` clients streaming
/// disjoint batched adds to completion, `readers` clients timing `top_k`
/// round trips for the whole write window.
fn run_rep(n: usize, writers: usize, readers: usize, batch: usize, per_writer: usize) -> RepResult {
    let g = holme_kim(n, 2, 0.3, 11);
    let session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .expect("bootstrap");
    let handle =
        Server::spawn(ServedSession::new(session), ServerConfig::default()).expect("spawn server");
    let addr = handle.tcp_addr().expect("tcp address");

    let pool = non_edge_adds(&g, writers * per_writer);
    let done = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut wire = Wire::connect(addr);
                let mut lat = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    wire.roundtrip(r#"{"cmd":"top_k","k":10}"#);
                    lat.push(t0.elapsed().as_secs_f64());
                }
                lat
            })
        })
        .collect();

    let t0 = Instant::now();
    let writer_handles: Vec<_> = pool
        .chunks(per_writer)
        .map(|mine| {
            let mine = mine.to_vec();
            std::thread::spawn(move || {
                let mut wire = Wire::connect(addr);
                for chunk in mine.chunks(batch) {
                    wire.roundtrip(&apply_line(chunk));
                }
            })
        })
        .collect();
    for h in writer_handles {
        h.join().expect("writer thread");
    }
    let wall = t0.elapsed().as_secs_f64();

    done.store(true, Ordering::Relaxed);
    let mut latencies = Vec::new();
    for h in reader_handles {
        latencies.extend(h.join().expect("reader thread"));
    }
    handle.shutdown();
    handle.join();

    RepResult {
        updates_per_s: (writers * per_writer) as f64 / wall,
        latencies,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_serve.json");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }

    let (n, writers, readers, per_writer, batches, reps): (_, _, _, _, &[usize], _) = if smoke {
        (64, 2, 2, 24, &[1, 16], 1)
    } else {
        (400, 2, 3, 192, &[1, 16, 64], 3)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let g = holme_kim(n, 2, 0.3, 11);
    let m = g.m();

    let mut rows = Vec::new();
    for &batch in batches {
        // best-of-reps on throughput; latencies come from the kept rep so
        // both columns describe the same run
        let mut best: Option<RepResult> = None;
        for _ in 0..reps {
            let rep = run_rep(n, writers, readers, batch, per_writer);
            if best
                .as_ref()
                .is_none_or(|b| rep.updates_per_s > b.updates_per_s)
            {
                best = Some(rep);
            }
        }
        let mut best = best.unwrap();
        best.latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            !best.latencies.is_empty(),
            "readers recorded no queries — write window too short"
        );
        let p50 = percentile_ms(&best.latencies, 0.50);
        let p99 = percentile_ms(&best.latencies, 0.99);
        eprintln!(
            "batch={batch:>3}: {:.0} updates/s, top_k p50 {p50:.3}ms p99 {p99:.3}ms \
             ({} queries)",
            best.updates_per_s,
            best.latencies.len()
        );
        rows.push(format!(
            "    {{\"batch\": {batch}, \"updates_per_s\": {:.1}, \
             \"query_p50_ms\": {p50:.4}, \"query_p99_ms\": {p99:.4}, \
             \"queries\": {}}}",
            best.updates_per_s,
            best.latencies.len()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"backend\": \"memory\",\n  \"n\": {n},\n  \"m\": {m},\n  \
         \"writers\": {writers},\n  \"readers\": {readers},\n  \
         \"updates_per_cell\": {},\n  \"repetitions\": {reps},\n  \"host_cores\": {cores},\n  \
         \"metric\": \"end-to-end over TCP loopback against an in-process server: writers stream disjoint apply batches (each awaiting its ack) while readers time top_k k=10 round trips for the whole write window; updates_per_s = total acked updates / write wall clock, best of repetitions; latency percentiles pool every reader query of the kept repetition\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        writers * per_writer,
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
