//! **Shard-handoff baseline** — produces the committed
//! `BENCH_shard_handoff.json`: the cost of moving source ownership between
//! shards, against the naive alternatives, in two settings.
//!
//! * **at rest** (`ebc_store::ShardSet`): `k` journaled handoffs
//!   (export journal + donor swap-remove + recipient append + map commit)
//!   versus the **full repartition** a static-range layout needs for the
//!   same assignment change (read every record of every shard, rewrite
//!   every shard file). Exact byte accounting from the stores' I/O
//!   counters.
//! * **live** (`ebc_engine::ClusterEngine`): draining a skewed worker via
//!   `rebalance(1)` versus tearing the cluster down and re-running the
//!   Brandes bootstrap over the new partitions — the only way to change
//!   ownership before the shard map existed.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin shard_handoff [-- --out PATH]
//! ```

use ebc_core::bd::BdStore;
use ebc_engine::ClusterEngine;
use ebc_gen::models::holme_kim;
use ebc_store::{CodecKind, DiskBdStore, ShardSet};
use std::path::PathBuf;
use std::time::Instant;

const N: usize = 2_048;
const SHARDS: usize = 4;
const SOURCES_PER_SHARD: usize = 64;
const MOVES: usize = 16;
const REPS: usize = 5;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ebc_shard_handoff_baseline");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn record(n: usize, s: u32) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
    let d = (0..n).map(|i| (i as u32 + s) % 9).collect();
    let sigma = (0..n).map(|i| (i as u64 + s as u64) % 31 + 1).collect();
    let delta = (0..n).map(|i| i as f64 * 0.5 + s as f64).collect();
    (d, sigma, delta)
}

fn populated_set(name: &str) -> ShardSet {
    let dir = tmp(name);
    let _ = std::fs::remove_dir_all(&dir);
    let mut set = ShardSet::create(&dir, N, SHARDS, CodecKind::Wide).unwrap();
    for k in 0..SHARDS {
        for i in 0..SOURCES_PER_SHARD {
            let s = (k * SOURCES_PER_SHARD + i) as u32;
            let (d, sig, del) = record(N, s);
            set.shard_mut(k).add_source(s, d, sig, del).unwrap();
        }
    }
    set
}

fn set_bytes(set: &ShardSet) -> (u64, u64) {
    let mut r = 0;
    let mut w = 0;
    for k in 0..set.num_shards() {
        r += set.shard(k).bytes_read;
        w += set.shard(k).bytes_written;
    }
    (r, w)
}

struct AtRest {
    handoff_wall_s: f64,
    handoff_bytes_rw: (u64, u64),
    repartition_wall_s: f64,
    repartition_bytes_rw: (u64, u64),
}

/// `MOVES` handoffs out of shard 0, round-robin to the other shards.
fn bench_handoffs() -> AtRest {
    let mut best_wall = f64::INFINITY;
    let mut bytes = (0, 0);
    for rep in 0..REPS {
        let mut set = populated_set(&format!("handoff_{rep}"));
        let (r0, w0) = set_bytes(&set);
        let t0 = Instant::now();
        for i in 0..MOVES {
            let source = i as u32; // shard 0 owns 0..SOURCES_PER_SHARD
            set.handoff(source, 0, 1 + i % (SHARDS - 1)).unwrap();
        }
        let wall = t0.elapsed().as_secs_f64();
        let (r1, w1) = set_bytes(&set);
        if wall < best_wall {
            best_wall = wall;
            bytes = (r1 - r0, w1 - w0);
        }
    }
    // the static-range alternative: materialise the same assignment change
    // by rewriting every shard file against the new source ranges
    let mut best_repart = f64::INFINITY;
    let mut repart_bytes = (0, 0);
    for rep in 0..REPS {
        let mut set = populated_set(&format!("repart_src_{rep}"));
        let out_dir = tmp(&format!("repart_dst_{rep}"));
        let _ = std::fs::remove_dir_all(&out_dir);
        std::fs::create_dir_all(&out_dir).unwrap();
        let (r0, w0) = set_bytes(&set);
        let t0 = Instant::now();
        let mut written = 0u64;
        for k in 0..SHARDS {
            let mut fresh =
                DiskBdStore::create(out_dir.join(format!("shard-{k}.ebc")), N, CodecKind::Wide)
                    .unwrap();
            // the post-change assignment, rebuilt from scratch: every record
            // of every shard is read and rewritten
            for src_shard in 0..SHARDS {
                for s in set.shard(src_shard).sources() {
                    let dest = if (s as usize) < MOVES {
                        1 + (s as usize) % (SHARDS - 1) // the moved sources
                    } else {
                        src_shard
                    };
                    if dest != k {
                        continue;
                    }
                    let (mut d, mut sig, mut del) = (Vec::new(), Vec::new(), Vec::new());
                    set.shard_mut(src_shard)
                        .update_with(s, &mut |view| {
                            d = view.d.to_vec();
                            sig = view.sigma.to_vec();
                            del = view.delta.to_vec();
                            false
                        })
                        .unwrap();
                    fresh.add_source(s, d, sig, del).unwrap();
                }
            }
            written += fresh.bytes_written;
        }
        let wall = t0.elapsed().as_secs_f64();
        let (r1, w1) = set_bytes(&set);
        if wall < best_repart {
            best_repart = wall;
            repart_bytes = (r1 - r0, (w1 - w0) + written);
        }
    }
    AtRest {
        handoff_wall_s: best_wall,
        handoff_bytes_rw: bytes,
        repartition_wall_s: best_repart,
        repartition_bytes_rw: repart_bytes,
    }
}

struct Live {
    n: usize,
    p: usize,
    moves: usize,
    rebalance_wall_s: f64,
    rebootstrap_wall_s: f64,
}

/// Live engine: drain worker 0 onto worker 1, then time `rebalance(1)`
/// against the pre-shard-map alternative (a fresh Brandes bootstrap).
fn bench_live() -> Live {
    let n = 1_000;
    let p = 4;
    let g = holme_kim(n, 3, 0.4, 42);
    let mut best_rebalance = f64::INFINITY;
    let mut moves = 0;
    for _ in 0..REPS {
        let mut cluster = ClusterEngine::new(&g, p).unwrap();
        for s in cluster.shard_map().sources_of(0).to_vec() {
            cluster.handoff(s, 1).unwrap();
        }
        let t0 = Instant::now();
        let report = cluster.rebalance(1).unwrap();
        let wall = t0.elapsed().as_secs_f64();
        moves = report.moves.len();
        best_rebalance = best_rebalance.min(wall);
    }
    let mut best_bootstrap = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let cluster = ClusterEngine::new(&g, p).unwrap();
        best_bootstrap = best_bootstrap.min(t0.elapsed().as_secs_f64());
        drop(cluster);
    }
    Live {
        n,
        p,
        moves,
        rebalance_wall_s: best_rebalance,
        rebootstrap_wall_s: best_bootstrap,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_shard_handoff.json");
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }
    eprintln!(
        "shard_handoff: at-rest n={N} shards={SHARDS} sources/shard={SOURCES_PER_SHARD} moves={MOVES}, {REPS} reps"
    );
    let at_rest = bench_handoffs();
    eprintln!(
        "  handoff      {:>10.6}s  rw=({}, {})",
        at_rest.handoff_wall_s, at_rest.handoff_bytes_rw.0, at_rest.handoff_bytes_rw.1
    );
    eprintln!(
        "  repartition  {:>10.6}s  rw=({}, {})",
        at_rest.repartition_wall_s, at_rest.repartition_bytes_rw.0, at_rest.repartition_bytes_rw.1
    );
    let live = bench_live();
    eprintln!(
        "  live rebalance ({} moves) {:.6}s vs re-bootstrap {:.6}s",
        live.moves, live.rebalance_wall_s, live.rebootstrap_wall_s
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"shard_handoff\",\n",
            "  \"n\": {n},\n",
            "  \"shards\": {shards},\n",
            "  \"sources_per_shard\": {sps},\n",
            "  \"repetitions\": {reps},\n",
            "  \"metric\": \"best-of-reps wall and exact record-I/O byte counters; at_rest moves {moves} sources between disk shards via the journaled handoff protocol vs rewriting every shard file for the same assignment change; live drains a skewed 4-worker memory cluster via rebalance(1) vs re-running the Brandes bootstrap\",\n",
            "  \"at_rest\": {{\"moves\": {moves}, \"handoff_wall_s\": {hw:.9}, \"handoff_bytes_rw\": [{hr}, {hwb}], \"repartition_wall_s\": {rw:.9}, \"repartition_bytes_rw\": [{rr}, {rwb}], \"wall_speedup\": {ws:.3}, \"write_amplification_avoided\": {wa:.3}}},\n",
            "  \"live\": {{\"n\": {ln}, \"p\": {lp}, \"moves\": {lm}, \"rebalance_wall_s\": {lrw:.9}, \"rebootstrap_wall_s\": {lbw:.9}, \"speedup\": {ls:.3}}}\n",
            "}}\n"
        ),
        n = N,
        shards = SHARDS,
        sps = SOURCES_PER_SHARD,
        reps = REPS,
        moves = MOVES,
        hw = at_rest.handoff_wall_s,
        hr = at_rest.handoff_bytes_rw.0,
        hwb = at_rest.handoff_bytes_rw.1,
        rw = at_rest.repartition_wall_s,
        rr = at_rest.repartition_bytes_rw.0,
        rwb = at_rest.repartition_bytes_rw.1,
        ws = at_rest.repartition_wall_s / at_rest.handoff_wall_s,
        wa = at_rest.repartition_bytes_rw.1 as f64 / at_rest.handoff_bytes_rw.1.max(1) as f64,
        ln = live.n,
        lp = live.p,
        lm = live.moves,
        lrw = live.rebalance_wall_s,
        lbw = live.rebootstrap_wall_s,
        ls = live.rebootstrap_wall_s / live.rebalance_wall_s,
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
