//! **Store-I/O baseline** — produces the committed `BENCH_store_io.json`:
//! exact byte/seek/wall accounting for the DO-mode disk store's two update
//! disciplines on the same workload,
//!
//! * the **per-record** path: one seek+read+write per affected source — a
//!   frozen copy of what the pre-v2 store did (and what the generic
//!   [`BdStore::update_batch`] default still does for in-memory stores);
//! * the **batched** path: format v2's run-sorted coalesced I/O
//!   ([`ebc_store::BatchPlan`]) — one sequential read per contiguous slot
//!   run, dirty records written back in coalesced sub-runs;
//!
//! plus the `grow_vertex` story: record bytes for an in-headroom growth
//! (must be 0) against the re-slab a pre-v2 store paid on *every* growth.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin store_io_baseline [-- --out PATH]
//! ```

use ebc_core::bd::BdStore;
use ebc_store::{BatchPlan, CodecKind, DiskBdStore};
use std::time::Instant;

const N: usize = 4_096;
const REPS: usize = 5;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_io_baseline");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Store with `sources` records over `N` vertices; every source is
/// affected by the probe edge {0, 1}.
fn populated(name: &str, codec: CodecKind, sources: u32) -> DiskBdStore {
    let mut store = DiskBdStore::create(tmp(name), N, codec).unwrap();
    for s in 0..sources {
        let mut d: Vec<u32> = (0..N).map(|i| ((i + s as usize) % 9) as u32).collect();
        d[0] = 0;
        d[1] = 3;
        store.add_source(s, d, vec![1; N], vec![0.0; N]).unwrap();
    }
    store
}

struct Sweep {
    wall_s: f64,
    bytes_read: u64,
    bytes_written: u64,
}

/// Frozen per-record discipline: peek, then read/modify/write each record
/// individually.
fn per_record_sweep(store: &mut DiskBdStore) -> Sweep {
    let (r0, w0) = (store.bytes_read, store.bytes_written);
    let t0 = Instant::now();
    for s in store.sources() {
        let (a, b) = store.peek_pair(s, 0, 1).unwrap();
        if a == b {
            continue;
        }
        store
            .update_with(s, &mut |view| {
                view.delta[2] += 1.0;
                true
            })
            .unwrap();
    }
    Sweep {
        wall_s: t0.elapsed().as_secs_f64(),
        bytes_read: store.bytes_read - r0,
        bytes_written: store.bytes_written - w0,
    }
}

/// Format v2 batched discipline.
fn batched_sweep(store: &mut DiskBdStore) -> Sweep {
    let (r0, w0) = (store.bytes_read, store.bytes_written);
    let t0 = Instant::now();
    let sources = store.sources();
    store
        .update_batch(&sources, 0, 1, &mut |_, view| {
            view.delta[2] += 1.0;
            true
        })
        .unwrap();
    Sweep {
        wall_s: t0.elapsed().as_secs_f64(),
        bytes_read: store.bytes_read - r0,
        bytes_written: store.bytes_written - w0,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_store_io.json");
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }

    let mut rows = Vec::new();
    for &sources in &[16u32, 64, 256] {
        for codec in [CodecKind::Paper, CodecKind::Wide] {
            let label = format!("{codec:?}");
            let mut per = f64::INFINITY;
            let mut bat = f64::INFINITY;
            let mut per_bytes = (0u64, 0u64);
            let mut bat_bytes = (0u64, 0u64);
            let mut store = populated(&format!("per_{label}_{sources}.bd"), codec, sources);
            for _ in 0..REPS {
                let s = per_record_sweep(&mut store);
                per = per.min(s.wall_s);
                per_bytes = (s.bytes_read, s.bytes_written);
            }
            let mut store = populated(&format!("bat_{label}_{sources}.bd"), codec, sources);
            for _ in 0..REPS {
                let s = batched_sweep(&mut store);
                bat = bat.min(s.wall_s);
                bat_bytes = (s.bytes_read, s.bytes_written);
            }
            // the whole source set is one contiguous run in this workload
            let plan = BatchPlan::build((0..sources).map(|s| (s as usize, s)).collect());
            eprintln!(
                "S={sources:>3} {label:<5}: per-record {per:.6}s, batched {bat:.6}s \
                 ({:.2}x), seeks {} -> {}",
                per / bat,
                sources,
                plan.seeks()
            );
            rows.push(format!(
                "    {{\"sources\": {sources}, \"codec\": \"{label}\", \
                 \"per_record_wall_s\": {per:.9}, \"batched_wall_s\": {bat:.9}, \
                 \"speedup\": {:.3}, \
                 \"per_record_read_seeks\": {sources}, \"batched_read_seeks\": {}, \
                 \"per_record_bytes_rw\": [{}, {}], \"batched_bytes_rw\": [{}, {}]}}",
                per / bat,
                plan.seeks(),
                per_bytes.0,
                per_bytes.1,
                bat_bytes.0,
                bat_bytes.1,
            ));
        }
    }

    // growth: in-headroom O(1) vs the rewrite a pre-v2 store always paid
    let mut store = populated("grow.bd", CodecKind::Wide, 64);
    let w0 = store.bytes_written;
    let t0 = Instant::now();
    store.grow_vertex().unwrap();
    let grow_wall = t0.elapsed().as_secs_f64();
    let grow_bytes = store.bytes_written - w0;
    let headroom = store.headroom();
    // exhaust the headroom to force one re-slab (the amortized cost)
    for _ in 0..headroom {
        store.grow_vertex().unwrap();
    }
    let w1 = store.bytes_written;
    let t1 = Instant::now();
    store.grow_vertex().unwrap(); // re-slab
    let reslab_wall = t1.elapsed().as_secs_f64();
    let reslab_bytes = store.bytes_written - w1;
    eprintln!(
        "grow: in-headroom {grow_bytes} record bytes ({grow_wall:.6}s), \
         re-slab {reslab_bytes} bytes ({reslab_wall:.6}s), headroom {headroom}"
    );

    let json = format!(
        "{{\n  \"bench\": \"store_io\",\n  \"n\": {N},\n  \"repetitions\": {REPS},\n  \
         \"metric\": \"one full update sweep over S affected sources (probe edge {{0,1}}, all records dirty), best of repetitions; bytes are the store's exact record I/O counters; seeks count random record-read repositionings (this workload is one contiguous slot run; chunked reads inside a run continue sequentially)\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"grow\": {{\"in_headroom_record_bytes\": {grow_bytes}, \"in_headroom_wall_s\": {grow_wall:.9}, \"reslab_record_bytes\": {reslab_bytes}, \"reslab_wall_s\": {reslab_wall:.9}}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
