//! **Table 2** — description of the graphs used: |V|, |E| (LCC), average
//! degree (AD), clustering coefficient (CC), effective diameter (ED).
//!
//! Prints our generated stand-ins side by side with the paper's reported
//! values, so the structural-fidelity claim of `DESIGN.md` §4 is checkable.

use ebc_bench::{real_rows, synthetic_rows, Args};
use ebc_graph::stats::GraphStats;

fn main() {
    let args = Args::parse();
    println!("Table 2: datasets (stand-ins at default experiment scale; --full adds 100k)");
    println!(
        "{:>14} {:>9} {:>10} {:>7} {:>7} {:>6}   {:>22}",
        "dataset", "|V|(LCC)", "|E|(LCC)", "AD", "CC", "ED", "paper (V, E, CC)"
    );
    for s in synthetic_rows(&args).into_iter().chain(real_rows(&args)) {
        let st = GraphStats::compute(&s.graph, 64);
        println!(
            "{:>14} {:>9} {:>10} {:>7.1} {:>7.3} {:>6.2}   {:>9} {:>9} {:>5.3}",
            s.name,
            st.n,
            st.m,
            st.avg_degree,
            st.clustering_coefficient,
            st.effective_diameter,
            s.kind.paper_n(),
            s.kind.paper_m(),
            paper_cc(&s.name),
        );
    }
    println!("\nAD/CC/ED computed on the generated graph; the last columns are the");
    println!("paper-scale targets each stand-in is scaled down from (DESIGN.md §4).");
}

fn paper_cc(name: &str) -> f64 {
    match name {
        "1k" => 0.263,
        "10k" => 0.219,
        "100k" => 0.207,
        "1000k" => 0.204,
        "wikielections" => 0.126,
        "slashdot" => 0.006,
        "facebook" => 0.148,
        "epinions" => 0.081,
        "dblp" => 0.6483,
        "amazon" => 0.0004,
        _ => f64::NAN,
    }
}
