//! **Table 3** — speedup comparison with related work: the MO variant's
//! average (max) speedup over Brandes per dataset, next to the numbers the
//! related papers report for themselves (quoted from the paper's Table 3).

use ebc_bench::{
    addition_updates, dataset, mean, min_med_max, speedups, synthetic_rows, time_brandes,
    update_times, Args, Variant,
};
use ebc_gen::standins::StandinKind;

fn main() {
    let args = Args::parse();
    println!(
        "Table 3: MO avg (max) speedup over Brandes, {} additions each\n",
        args.updates
    );
    println!("{:>14} {:>7} {:>12}", "dataset", "|V|", "MO avg (max)");

    let mut rows = synthetic_rows(&args);
    rows.push(dataset(StandinKind::WikiElections, &args));
    rows.push(dataset(StandinKind::Slashdot, &args));
    for s in rows {
        let (_, tb) = time_brandes(&s.graph);
        let adds = addition_updates(&s.graph, args.updates, args.seed);
        let times = update_times(&s.graph, &adds, Variant::Mo);
        let sp = speedups(tb, &times);
        let (_, _, max) = min_med_max(&sp);
        println!(
            "{:>14} {:>7} {:>6.0} ({:>4.0})",
            s.name,
            s.graph.n(),
            mean(&sp),
            max
        );
    }

    println!("\nRelated-work speedups as quoted in the paper's Table 3 (their own graphs):");
    println!("  Kas et al. [21]:   wikivote 3, contact 4, fb-like 18, ca-GrQc 68, ca-HepTh 358");
    println!("  QUBE [24]:         ca-GrQc 2, adjnoun 20");
    println!("  Green et al. [17]: ca-GrQc 40, ca-HepTh 40, ca-CondMat 109, as-22july06 61,");
    println!("                     slashdot: fails under limited memory (vs our out-of-core DO)");
}
