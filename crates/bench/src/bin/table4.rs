//! **Table 4** — summary of key speedup results: min / median / max speedup
//! of the framework over Brandes for edge addition and edge removal, on
//! every dataset.
//!
//! The paper's Table 4 measures the DO (disk) configuration against a Java
//! Brandes baseline. Our Rust Brandes baseline is one to two orders of
//! magnitude faster while disk latency is physical, so the *ratio* for DO
//! compresses even though absolute DO update times match the paper's —
//! see EXPERIMENTS.md. We therefore report the in-memory MO ratios (the
//! algorithmic speedup) here and leave the MO-vs-DO storage gap to
//! Figure 5, which shows it explicitly.

use ebc_bench::{
    addition_updates, min_med_max, real_rows, removal_updates, speedups, synthetic_rows,
    time_brandes, update_times, Args, Variant,
};

fn main() {
    let args = Args::parse();
    println!(
        "Table 4: MO speedup over Brandes, {} updates each direction\n",
        args.updates
    );
    println!(
        "{:>14} | {:>24} | {:>24}",
        "dataset", "addition min/med/max", "removal min/med/max"
    );
    for s in synthetic_rows(&args).into_iter().chain(real_rows(&args)) {
        let (_, tb) = time_brandes(&s.graph);
        let adds = addition_updates(&s.graph, args.updates, args.seed);
        let add_sp = speedups(tb, &update_times(&s.graph, &adds, Variant::Mo));
        let (a_min, a_med, a_max) = min_med_max(&add_sp);
        let rems = removal_updates(&s.graph, args.updates, args.seed + 1);
        let rem_sp = speedups(tb, &update_times(&s.graph, &rems, Variant::Mo));
        let (r_min, r_med, r_max) = min_med_max(&rem_sp);
        println!(
            "{:>14} | {:>7.0} {:>7.0} {:>8.0} | {:>7.0} {:>7.0} {:>8.0}",
            s.name, a_min, a_med, a_max, r_min, r_med, r_max
        );
    }
    println!("\nPaper's Table 4 (paper-scale graphs, DO on a Hadoop cluster):");
    println!("  1k add 3/12/23 rem 2/10/19; 10k add 16/34/62 rem 2/35/155");
    println!("  100k add 21/49/96 rem 4/45/134; 1000k add 5/10/20 rem 1/12/78");
    println!("  wikielections add 9/47/95 rem 1/45/92; slashdot add 15/25/121 rem 8/24/127");
    println!("  facebook add 10/66/462 rem 1/102/243; epinions add 24/56/138 rem 2/45/90");
    println!("  dblp add 3/8/15 rem 3/8/429; amazon add 2/4/15 rem 2/3/5");
}
