//! **Table 5** — edges missed and average delay vs scaling: replay the
//! timestamped tail of slashdot and facebook and report, per mapper count,
//! the fraction of updates not finished before the next arrival and their
//! mean lateness.
//!
//! Mapper counts beyond the local core count use the paper's own §5.3
//! projection `t_U = t_S · n/p + t_M` (modeled mode; see EXPERIMENTS.md).

use ebc_bench::{dataset, Args};
use ebc_core::state::BetweennessState;
use ebc_engine::online::simulate_modeled;
use ebc_gen::standins::{Standin, StandinKind};
use ebc_gen::streams::replay_growth;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    println!("Table 5: edges missed and average delay vs scaling\n");
    println!(
        "{:>10} {:>8} {:>10} {:>14}",
        "dataset", "mappers", "% missed", "avg delay (s)"
    );
    run(&dataset(StandinKind::Slashdot, &args), &[1, 10], &args);
    run(
        &dataset(StandinKind::Facebook, &args),
        &[1, 10, 50, 100],
        &args,
    );
    println!("\nPaper's Table 5: slashdot 1→44.6%/257.9s, 10→1.1%/32.4s;");
    println!("facebook 1→69.7%/1061.1s, 10→19.2%/96.6s, 50→3.0%/8.6s, 100→1.0%/5.5s");
}

fn run(s: &Standin, mappers: &[usize], args: &Args) {
    // Calibrate the arrival rate the way the paper's real traces behave:
    // faster than one worker can sustain (facebook), or borderline
    // (slashdot). We first measure the single-worker mean update time on a
    // warm-up copy, then set the mean gap relative to it.
    let tail = args.updates.min(s.arrival_order.len() / 2).max(10);
    let (boot, probe_stream) =
        replay_growth(&s.arrival_order, s.graph.n(), tail, 1.0, 1.4, args.seed);
    let mut probe = BetweennessState::new(&boot);
    let probe_report =
        simulate_modeled(&mut probe, &probe_stream, 1, Duration::ZERO).expect("probe replay");
    let t1 = probe_report.mean_update_time().max(1e-6);
    let gap_factor = match s.kind {
        StandinKind::Slashdot => 4.0, // borderline: one worker misses about half
        _ => 0.8,                     // firehose: one worker drowns
    };
    let (boot, stream) = replay_growth(
        &s.arrival_order,
        s.graph.n(),
        tail,
        t1 * gap_factor,
        1.4,
        args.seed,
    );
    for &p in mappers {
        let mut st = BetweennessState::new(&boot);
        let report = simulate_modeled(&mut st, &stream, p, Duration::from_micros(50))
            .expect("modeled replay");
        println!(
            "{:>10} {:>8} {:>9.1}% {:>14.3}",
            s.name,
            p,
            report.pct_missed(),
            report.avg_delay
        );
    }
}
