//! **Top-k read-path baseline** — produces the committed
//! `BENCH_topk.json`: ranked-read latency of the incrementally maintained
//! [`RankIndex`] against a from-scratch `ranking::top_k` re-scan of the
//! score vector, as `n` grows.
//!
//! Three reads per cell, all answering the same question a serve client
//! asks:
//!
//! * `top_k(10)` — re-scan is `O(n + k log k)` selection over the full
//!   vector, the index walks its left spine in `O(k + log n)`;
//! * `rank_of(v)` — re-scan counts better-ranked vertices in `O(n)`, the
//!   index descends in `O(log n)`;
//! * one `set` — what the write path pays per changed vertex to keep the
//!   index current (the re-scan column pays nothing on writes; that is
//!   the trade being measured).
//!
//! Scores are quantized so higher `n` rows carry real tie mass — the
//! regime where the tie-toward-smaller-id rule does the ordering work.
//! Every cell asserts the index agrees with the oracle before timing it.
//!
//! ```sh
//! cargo run --release -p ebc-bench --bin topk_baseline [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` shrinks the sweep to a seconds-long CI sanity pass.

use ebc_core::rankindex::RankIndex;
use ebc_core::ranking;
use std::time::Instant;

const K: usize = 10;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Synthetic score vector with deliberate tie mass: quantized draws so
/// collisions appear once `n` outgrows the value lattice.
fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| (splitmix64(&mut state) % 100_000) as f64 / 16.0)
        .collect()
}

/// Median-of-reps of the mean per-call wall time, in microseconds.
fn time_per_call(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64 * 1e6
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

/// The re-scan answer to `rank_of`: count strictly-better vertices under
/// the ranking tie rule.
fn rescan_rank_of(vbc: &[f64], v: u32) -> usize {
    let sv = vbc[v as usize];
    1 + vbc
        .iter()
        .enumerate()
        .filter(|&(w, &sw)| sw.total_cmp(&sv).then(v.cmp(&(w as u32))).is_gt())
        .count()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_topk.json");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args.get(i + 1).expect("--out requires a path").clone();
    }

    let (ns, reps, iters): (&[usize], _, _) = if smoke {
        (&[1_000, 8_000], 3, 50)
    } else {
        (&[1_000, 4_000, 16_000, 65_000, 260_000], 5, 200)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let mut rows = Vec::new();
    for &n in ns {
        let vbc = scores(n, 0x5eed ^ n as u64);
        let index = RankIndex::from_scores(&vbc);

        // the bitwise contract first, then the stopwatch
        let oracle: Vec<(u32, f64)> = ranking::top_k(&vbc, K)
            .into_iter()
            .map(|v| (v, vbc[v as usize]))
            .collect();
        assert_eq!(index.top_entries(K), oracle, "n={n}: index disagrees");
        let probe = oracle[K / 2].0;
        assert_eq!(
            index.rank_of(probe),
            Some(rescan_rank_of(&vbc, probe)),
            "n={n}: rank_of disagrees"
        );

        let rescan_topk = time_per_call(reps, iters, || {
            std::hint::black_box(ranking::top_k(std::hint::black_box(&vbc), K));
        });
        let indexed_topk = time_per_call(reps, iters, || {
            std::hint::black_box(std::hint::black_box(&index).top_k(K));
        });
        let rescan_rank = time_per_call(reps, iters, || {
            std::hint::black_box(rescan_rank_of(std::hint::black_box(&vbc), probe));
        });
        let indexed_rank = time_per_call(reps, iters, || {
            std::hint::black_box(std::hint::black_box(&index).rank_of(probe));
        });
        // maintenance cost: one write-path score change on a fresh clone
        let mut state = n as u64 | 1;
        let mut live = index.clone();
        let indexed_set = time_per_call(reps, iters, || {
            let r = splitmix64(&mut state);
            live.set((r % n as u64) as u32, (r >> 32) as f64 / 16.0);
        });

        eprintln!(
            "n={n:>7}: top_k {rescan_topk:.3}us -> {indexed_topk:.3}us ({:.1}x), \
             rank_of {rescan_rank:.3}us -> {indexed_rank:.3}us ({:.1}x), \
             set {indexed_set:.3}us",
            rescan_topk / indexed_topk,
            rescan_rank / indexed_rank,
        );
        rows.push(format!(
            "    {{\"n\": {n}, \"k\": {K}, \
             \"rescan_topk_us\": {rescan_topk:.4}, \"indexed_topk_us\": {indexed_topk:.4}, \
             \"topk_speedup\": {:.2}, \
             \"rescan_rank_of_us\": {rescan_rank:.4}, \"indexed_rank_of_us\": {indexed_rank:.4}, \
             \"rank_of_speedup\": {:.2}, \
             \"indexed_set_us\": {indexed_set:.4}}}",
            rescan_topk / indexed_topk,
            rescan_rank / indexed_rank,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"topk\",\n  \"k\": {K},\n  \"repetitions\": {reps},\n  \
         \"iters_per_rep\": {iters},\n  \"host_cores\": {cores},\n  \
         \"metric\": \"per-call wall time (median of repetitions, mean over iters) for ranked reads on a quantized tie-heavy score vector: top_k(10) and rank_of via a full re-scan of the scores vs the incremental rank index; indexed_set_us is the write-path cost of keeping the index current for one changed vertex\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline json");
    eprintln!("wrote {out_path}");
}
