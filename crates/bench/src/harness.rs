//! Shared measurement utilities for the experiment binaries.

use ebc_core::brandes::brandes;
use ebc_core::incremental::UpdateConfig;
use ebc_core::state::{BetweennessState, Update};
use ebc_core::Scores;
use ebc_gen::standins::{standin, Standin, StandinKind};
use ebc_graph::{EdgeOp, Graph};
use ebc_store::{CodecKind, DiskBdStore};
use std::time::{Duration, Instant};

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Extra shrink factor applied on top of each dataset's default scale.
    pub scale: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of streamed updates per experiment (the paper uses 100).
    pub updates: usize,
    /// Include the expensive configurations (100k synthetic, 1000 GN peels).
    pub full: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1,
            seed: 42,
            updates: 100,
            full: false,
        }
    }
}

impl Args {
    /// Parse from `std::env::args` (flags: `--scale k`, `--seed s`,
    /// `--updates k`, `--full`).
    pub fn parse() -> Self {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => out.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
                "--seed" => out.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
                "--updates" => out.updates = it.next().and_then(|v| v.parse().ok()).unwrap_or(100),
                "--full" => out.full = true,
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        out
    }
}

/// Default shrink factors keeping each dataset's Brandes run in seconds on a
/// laptop. `--scale 1` with these defaults gives graphs of ~1-2.2k vertices;
/// multiply via `--scale`, or edit to smaller factors for paper-scale runs.
pub fn default_scale(kind: StandinKind) -> usize {
    match kind {
        StandinKind::Synthetic(_) => 1,
        StandinKind::WikiElections => 8,
        StandinKind::Slashdot => 32,
        StandinKind::Facebook => 32,
        StandinKind::Epinions => 64,
        StandinKind::Dblp => 512,
        StandinKind::Amazon => 1024,
    }
}

/// Build one dataset at its default experiment scale.
pub fn dataset(kind: StandinKind, args: &Args) -> Standin {
    standin(kind, default_scale(kind) * args.scale, args.seed)
}

/// The synthetic rows used by most experiments (1k, 10k; +100k with
/// `--full`).
pub fn synthetic_rows(args: &Args) -> Vec<Standin> {
    let mut sizes = vec![1_000, 10_000];
    if args.full {
        sizes.push(100_000);
    }
    sizes
        .into_iter()
        .map(|n| standin(StandinKind::Synthetic(n / args.scale.max(1)), 1, args.seed))
        .collect()
}

/// The six real-graph stand-ins.
pub fn real_rows(args: &Args) -> Vec<Standin> {
    [
        StandinKind::WikiElections,
        StandinKind::Slashdot,
        StandinKind::Facebook,
        StandinKind::Epinions,
        StandinKind::Dblp,
        StandinKind::Amazon,
    ]
    .into_iter()
    .map(|k| dataset(k, args))
    .collect()
}

/// Wall-clock a closure.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// One full predecessor-free Brandes run, timed (the speedup denominator).
pub fn time_brandes(g: &Graph) -> (Scores, Duration) {
    time_once(|| brandes(g))
}

/// Framework configuration measured by the speedup experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// In memory, with predecessor-list maintenance (paper's MP).
    Mp,
    /// In memory, predecessor-free (paper's MO).
    Mo,
    /// On disk, predecessor-free (paper's DO).
    Do,
}

impl Variant {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Mp => "MP",
            Variant::Mo => "MO",
            Variant::Do => "DO",
        }
    }
}

fn unique_tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ebc_bench_stores");
    std::fs::create_dir_all(&dir).ok();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{tag}_{}_{id}.bd", std::process::id()))
}

/// Measure per-update times of `variant` on `updates` applied to `g` in
/// order. Returns one duration per update.
pub fn update_times(g: &Graph, updates: &[(EdgeOp, u32, u32)], variant: Variant) -> Vec<Duration> {
    let cfg = match variant {
        Variant::Mp => UpdateConfig {
            maintain_predecessors: true,
            ..Default::default()
        },
        _ => UpdateConfig::default(),
    };
    let mut times = Vec::with_capacity(updates.len());
    match variant {
        Variant::Do => {
            let store =
                DiskBdStore::create(unique_tmp("do"), g.n(), CodecKind::Wide).expect("tmp store");
            let mut st = BetweennessState::new_into_store(g.clone(), store, cfg)
                .expect("bootstrap into disk store");
            for &(op, u, v) in updates {
                let (_, dt) = time_once(|| st.apply(Update { op, u, v }).expect("valid update"));
                times.push(dt);
            }
        }
        _ => {
            let mut st = BetweennessState::new_with(g.clone(), cfg);
            for &(op, u, v) in updates {
                let (_, dt) = time_once(|| st.apply(Update { op, u, v }).expect("valid update"));
                times.push(dt);
            }
        }
    }
    times
}

/// Convert per-update times into speedups over a Brandes baseline.
pub fn speedups(brandes_time: Duration, times: &[Duration]) -> Vec<f64> {
    times
        .iter()
        .map(|t| brandes_time.as_secs_f64() / t.as_secs_f64().max(1e-9))
        .collect()
}

/// Min / median / max of a sample (sorted copy; NaN-free input).
pub fn min_med_max(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    (s[0], s[s.len() / 2], s[s.len() - 1])
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Print a CDF as decile rows (the textual rendition of Figures 5/6).
pub fn print_cdf(label: &str, xs: &[f64]) {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    print!("{label:>24} |");
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let idx = ((s.len() as f64 - 1.0) * q).round() as usize;
        print!(
            " p{:<3} {:>8.1}",
            (q * 100.0) as u32,
            s.get(idx).copied().unwrap_or(0.0)
        );
    }
    println!();
}

/// The addition workload of §6: `k` random unconnected pairs.
pub fn addition_updates(g: &Graph, k: usize, seed: u64) -> Vec<(EdgeOp, u32, u32)> {
    ebc_gen::streams::addition_stream(g, k, seed)
        .into_iter()
        .map(|(u, v)| (EdgeOp::Add, u, v))
        .collect()
}

/// The removal workload of §6: `k` random existing edges.
pub fn removal_updates(g: &Graph, k: usize, seed: u64) -> Vec<(EdgeOp, u32, u32)> {
    ebc_gen::streams::removal_stream(g, k, seed)
        .into_iter()
        .map(|(u, v)| (EdgeOp::Remove, u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_gen::models::holme_kim;

    #[test]
    fn min_med_max_basics() {
        assert_eq!(min_med_max(&[3.0, 1.0, 2.0]), (1.0, 2.0, 3.0));
        assert_eq!(min_med_max(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn speedup_math() {
        let s = speedups(Duration::from_secs(1), &[Duration::from_millis(100)]);
        assert!((s[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn update_times_variants_produce_results() {
        let g = holme_kim(40, 3, 0.3, 7);
        let adds = addition_updates(&g, 5, 1);
        for v in [Variant::Mp, Variant::Mo, Variant::Do] {
            let times = update_times(&g, &adds, v);
            assert_eq!(times.len(), 5, "{v:?}");
        }
    }

    #[test]
    fn workloads_respect_counts() {
        let g = holme_kim(30, 3, 0.3, 7);
        assert_eq!(addition_updates(&g, 7, 1).len(), 7);
        assert_eq!(removal_updates(&g, 7, 1).len(), 7);
    }
}
