//! # ebc-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6). Each binary prints one artefact (see `DESIGN.md` §5 for
//! the index); `cargo bench` runs the Criterion micro-benchmarks.
//!
//! ```text
//! cargo run --release -p ebc-bench --bin table2   # dataset statistics
//! cargo run --release -p ebc-bench --bin table3   # MO avg (max) speedups
//! cargo run --release -p ebc-bench --bin table4   # speedup summary, add+remove
//! cargo run --release -p ebc-bench --bin table5   # online misses vs #mappers
//! cargo run --release -p ebc-bench --bin fig5     # CDF: MP vs MO vs DO
//! cargo run --release -p ebc-bench --bin fig6     # CDF: parallel DO, add/remove
//! cargo run --release -p ebc-bench --bin fig7     # strong & weak scaling
//! cargo run --release -p ebc-bench --bin fig8     # inter-arrival vs update time
//! cargo run --release -p ebc-bench --bin fig9     # Girvan-Newman speedup
//! ```
//!
//! All binaries accept `--scale <k>` (shrink datasets by `k`; default keeps
//! runtimes laptop-friendly) and `--seed <s>`.

pub mod harness;

pub use harness::*;
