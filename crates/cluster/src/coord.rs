//! The coordinator: the cluster's control plane and sole write path.
//!
//! A [`Coordinator`] owns the versioned [`ShardMap`] (the Clarium-style
//! registry/map/lease triple: which node leads which shard, at which map
//! version, with the RPC retry budget acting as the lease), a private
//! structural [`Graph`] replica used to validate updates and derive
//! adoption/removal metadata before anything is dispatched, and the
//! per-shard `next_index` cursors that make the WAL-indexed op stream
//! exactly-once end to end.
//!
//! **Failure model.** A leader that exhausts the RPC retry budget
//! (`rpc_attempts × rpc_timeout` — the lease) is declared dead. Failover
//! promotes the shard's follower: bump the map version (the new fencing
//! token), send `Promote`, swap the group — and then *retry the same WAL
//! index* against the new leader. The index dedup makes the retry safe in
//! both crash windows: if the dead leader never shipped the entry
//! ([`KillWindow::MidApply`](crate::node::KillWindow::MidApply)) the
//! promoted node appends it; if it shipped but never answered
//! ([`KillWindow::MidShip`](crate::node::KillWindow::MidShip)) the promoted
//! node answers from its log without re-applying. Stale leaders that were
//! merely partitioned are remembered and fenced with `Demote` once
//! reachable ([`Coordinator::fence_stale`]).
//!
//! Reads fold deterministically: the fast reduce sums shard partials in
//! ascending shard order; `reduce_exact` assembles the shards' canonical
//! tree segments, which is bitwise invariant to the partitioning *and* to
//! how many failovers rewrote the groups.

use crate::journal::{CoordJournal, CoordSnapshot, JournalEntry, JournalRecord};
use crate::transport::{Mailbox, SendError, Transport};
use crate::wire::{self, ErrKind, NodeId, NodeMsg, Reply, ReplyBody, Request};
use ebc_core::exact::assemble;
use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_engine::shardmap::{ShardMap, SourceMove};
use ebc_graph::{EdgeOp, Graph};
use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant};

/// Timing and retry policy.
#[derive(Clone)]
pub struct CoordinatorConfig {
    /// Per-attempt reply wait.
    pub rpc_timeout: Duration,
    /// Attempts before a node is declared dead — `rpc_attempts ×
    /// rpc_timeout` is the lease a leader must renew by answering.
    pub rpc_attempts: u32,
    /// Reply wait for `Bootstrap` (Brandes over a partition dwarfs normal
    /// ops; a single long attempt, not a retry ladder).
    pub bootstrap_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            rpc_timeout: Duration::from_millis(300),
            rpc_attempts: 5,
            bootstrap_timeout: Duration::from_secs(60),
        }
    }
}

/// One shard's replication group as the coordinator sees it.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Current leader.
    pub leader: NodeId,
    /// Current follower, if the group still has one.
    pub follower: Option<NodeId>,
    /// Dial hint for the leader (stream transports).
    pub leader_hint: Option<String>,
    /// Dial hint for the follower, forwarded to the leader for WAL
    /// shipping.
    pub follower_hint: Option<String>,
}

impl ShardSpec {
    /// A group with no dial hints (in-process fabrics).
    pub fn new(leader: NodeId, follower: Option<NodeId>) -> Self {
        ShardSpec {
            leader,
            follower,
            leader_hint: None,
            follower_hint: None,
        }
    }
}

/// An observer of [`CoordEvent`]s, registered via
/// [`Coordinator::set_event_hook`].
pub type EventHook = Box<dyn FnMut(&CoordEvent) + Send>;

/// Control-plane transitions, surfaced for observability — and as the
/// deterministic injection point the failover tests hook (e.g. releasing a
/// zombie leader's held frames exactly while a promotion is in flight).
#[derive(Debug, Clone)]
pub enum CoordEvent {
    /// A leader exhausted its lease.
    LeaderDead {
        /// The shard.
        shard: u32,
        /// The unresponsive leader.
        leader: NodeId,
    },
    /// About to promote `follower`; the map version has already advanced.
    Promoting {
        /// The shard.
        shard: u32,
        /// The follower being promoted.
        follower: NodeId,
        /// The new fencing version.
        version: u64,
    },
    /// Promotion acknowledged; the group now serves from `leader`.
    Promoted {
        /// The shard.
        shard: u32,
        /// The new leader.
        leader: NodeId,
        /// The follower's WAL length at promotion.
        wal_len: u64,
    },
}

/// Cluster-level failure.
#[derive(Debug)]
pub enum ClusterError {
    /// The update is invalid against the coordinator's replica (self-loop,
    /// sparse vertex id, duplicate/missing edge).
    Invalid(String),
    /// A shard's leader died with no follower left to promote.
    ShardLost(u32),
    /// A node answered with a typed protocol/state error.
    Node {
        /// Error category from the node.
        kind: ErrKind,
        /// Node's message.
        msg: String,
    },
    /// The protocol broke down (unexpected reply shape).
    Protocol(String),
    /// The coordinator's durable journal (`--dir`) failed or is corrupt.
    Durability(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Invalid(m) => write!(f, "invalid update: {m}"),
            ClusterError::ShardLost(k) => {
                write!(f, "shard {k}: leader dead and no follower to promote")
            }
            ClusterError::Node { kind, msg } => write!(f, "node error ({kind:?}): {msg}"),
            ClusterError::Protocol(m) => write!(f, "protocol: {m}"),
            ClusterError::Durability(m) => write!(f, "durability: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Outcome of one replicated update.
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Shard that adopted a newly arrived vertex, if the update grew the
    /// graph.
    pub adopter: Option<usize>,
    /// Shards currently serving without a live follower.
    pub degraded: Vec<u32>,
    /// Failovers performed while applying this update.
    pub failovers: u32,
}

enum RpcFail {
    /// Lease exhausted / peer unreachable.
    Dead,
    /// Typed refusal from the node.
    Node { kind: ErrKind, msg: String },
}

/// The cluster control plane. Generic over [`Transport`] like the nodes.
pub struct Coordinator<T: Transport> {
    transport: T,
    mailbox: Mailbox,
    cfg: CoordinatorConfig,
    replica: Graph,
    map: ShardMap,
    groups: Vec<ShardSpec>,
    next_index: Vec<u64>,
    seq: u64,
    failovers: u64,
    stale: Vec<NodeId>,
    /// Every node ever registered, with its dial hint — demoted
    /// stragglers included, so fencing, status probes, and
    /// [`Coordinator::shutdown`] can reach nodes no group references
    /// (or that the transport never dialed).
    known: std::collections::BTreeMap<NodeId, Option<String>>,
    events: Option<EventHook>,
    /// Durable control state, when [`Coordinator::persist_to`] armed it
    /// (or [`Coordinator::resume`] reopened it).
    journal: Option<CoordJournal>,
}

impl<T: Transport> Coordinator<T> {
    /// A coordinator with no shards yet; call
    /// [`bootstrap`](Coordinator::bootstrap) next.
    pub fn new(transport: T, mailbox: Mailbox, cfg: CoordinatorConfig) -> Self {
        Coordinator {
            transport,
            mailbox,
            cfg,
            replica: Graph::new(),
            map: ShardMap::bootstrap(0, 1),
            groups: Vec::new(),
            next_index: Vec::new(),
            seq: 0,
            failovers: 0,
            stale: Vec::new(),
            known: std::collections::BTreeMap::new(),
            events: None,
            journal: None,
        }
    }

    /// Arm durable control state at `dir`: every map-changing event
    /// (bootstrap, failover, handoff) rewrites a checksummed snapshot
    /// there, and every applied update is write-ahead journaled, so
    /// [`Coordinator::resume`] can restart this coordinator over the
    /// running fleet. Call before [`bootstrap`](Coordinator::bootstrap);
    /// calling later snapshots the current state immediately.
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> Result<(), ClusterError> {
        self.journal = Some(CoordJournal::create(dir).map_err(ClusterError::Durability)?);
        if !self.groups.is_empty() {
            self.snapshot_now(false)?;
        }
        Ok(())
    }

    /// Rewrite the durable snapshot from the live state. `in_flight`
    /// marks the newest journal record as possibly part-dispatched so
    /// [`Coordinator::resume`] re-drives it. No-op without a journal.
    fn snapshot_now(&mut self, in_flight: bool) -> Result<(), ClusterError> {
        let Some(applied) = self.journal.as_ref().map(CoordJournal::len) else {
            return Ok(());
        };
        let owned = (0..self.map.num_shards())
            .map(|k| self.map.sources_of(k).to_vec())
            .collect();
        let snap = CoordSnapshot {
            version: self.map.version(),
            applied,
            failovers: self.failovers,
            groups: self
                .groups
                .iter()
                .map(|g| {
                    (
                        g.leader.0,
                        g.follower.map(|f| f.0),
                        g.leader_hint.clone(),
                        g.follower_hint.clone(),
                    )
                })
                .collect(),
            owned,
            known: self.known.iter().map(|(n, h)| (n.0, h.clone())).collect(),
            stale: self.stale.iter().map(|n| n.0).collect(),
            next_index: self.next_index.clone(),
            graph: self.replica.snapshot_bytes(),
        };
        self.journal
            .as_mut()
            .expect("journal checked above")
            .write_snapshot(&snap, in_flight)
            .map_err(ClusterError::Durability)
    }

    /// Restart a coordinator from the durable state a previous
    /// incarnation left in `dir`, resuming command of the running node
    /// fleet: reload the snapshot, re-fold the journaled update suffix
    /// into the replica and map, re-drive the last journaled update at
    /// its recorded WAL indices (the nodes' index dedup makes the retry
    /// exactly-once in every crash window), and continue the RPC
    /// sequence past the persisted reservation so nodes do not drop the
    /// new incarnation's requests as stale.
    ///
    /// A crash *mid-handoff* is the one window this does not cover: the
    /// donor may have retired a source the snapshot still assigns to it.
    /// Re-bootstrap the cluster in that case.
    pub fn resume(
        transport: T,
        mailbox: Mailbox,
        cfg: CoordinatorConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ClusterError> {
        let (journal, snap, base, records) =
            CoordJournal::open(dir).map_err(ClusterError::Durability)?;
        let replica = Graph::from_snapshot_bytes(&snap.graph)
            .map_err(|e| ClusterError::Durability(format!("graph replica: {e}")))?;
        let map = ShardMap::from_assignment_versioned(snap.owned.clone(), snap.version)
            .map_err(|e| ClusterError::Durability(format!("shard map: {e}")))?;
        let groups = snap
            .groups
            .iter()
            .map(|(leader, follower, lh, fh)| ShardSpec {
                leader: NodeId(*leader),
                follower: follower.map(NodeId),
                leader_hint: lh.clone(),
                follower_hint: fh.clone(),
            })
            .collect();
        let seq = journal.reserved_seq();
        let mut coord = Coordinator {
            transport,
            mailbox,
            cfg,
            replica,
            map,
            groups,
            next_index: snap.next_index.clone(),
            seq,
            failovers: snap.failovers,
            stale: snap.stale.iter().copied().map(NodeId).collect(),
            known: snap
                .known
                .iter()
                .map(|(n, h)| (NodeId(*n), h.clone()))
                .collect(),
            events: None,
            journal: Some(journal),
        };
        // re-fold the journal suffix the snapshot predates
        for (i, rec) in records.iter().enumerate() {
            if base + i as u64 >= snap.applied {
                let adopter =
                    Self::fold_update(&mut coord.replica, &mut coord.map, rec.entry.update)?;
                debug_assert_eq!(adopter.map(|k| k as u32), rec.entry.adopter);
            }
        }
        // re-drive the newest journaled update: shards that executed it
        // answer from their dedup window, shards the crash cut off
        // append it now — and every reply resyncs `next_index`
        if let Some(last) = records.last().cloned() {
            for k in 0..coord.groups.len() {
                let adopt = (last.entry.adopter == Some(k as u32))
                    .then(|| last.entry.update.u.max(last.entry.update.v));
                match coord.shard_rpc(
                    k,
                    Request::Apply {
                        index: last.indices[k],
                        update: last.entry.update,
                        adopt,
                    },
                )? {
                    ReplyBody::Done { wal_len, .. } => coord.next_index[k] = wal_len,
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "unexpected resume reply: {other:?}"
                        )))
                    }
                }
            }
        }
        coord.snapshot_now(false)?;
        Ok(coord)
    }

    /// Install an observer for control-plane transitions.
    pub fn set_event_hook(&mut self, hook: EventHook) {
        self.events = Some(hook);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// Current map version (the fencing token).
    pub fn version(&self) -> u64 {
        self.map.version()
    }

    /// Failovers performed since bootstrap.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The structural replica (matches every node's, by construction).
    pub fn graph(&self) -> &Graph {
        &self.replica
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Current replication groups.
    pub fn groups(&self) -> &[ShardSpec] {
        &self.groups
    }

    fn emit(&mut self, ev: CoordEvent) {
        if let Some(hook) = self.events.as_mut() {
            hook(&ev);
        }
    }

    /// One RPC with retries: send, await the matching seq, retry up to
    /// `attempts`. Stray frames (older seqs, duplicate acks) are drained
    /// and dropped.
    fn rpc_with(
        &mut self,
        to: NodeId,
        hint: Option<String>,
        req: Request,
        attempts: u32,
        timeout: Duration,
    ) -> Result<ReplyBody, RpcFail> {
        self.seq += 1;
        let seq = self.seq;
        if let Some(j) = self.journal.as_mut() {
            // extend the persisted seq ceiling so a resumed incarnation
            // starts past every seq this one ever used (best-effort: a
            // failed rewrite retries on the next RPC)
            let _ = j.reserve_seq(seq);
        }
        let frame = wire::encode(&NodeMsg::Request {
            seq,
            version: self.map.version(),
            req,
        });
        for _ in 0..attempts {
            match self.transport.send(to, hint.as_deref(), &frame) {
                Err(SendError::Closed) => return Err(RpcFail::Dead),
                Err(SendError::Io(_)) => {
                    std::thread::sleep(timeout.min(Duration::from_millis(50)));
                    continue;
                }
                Ok(()) => {}
            }
            let deadline = Instant::now() + timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let Some(env) = self.mailbox.recv_timeout(deadline - now) else {
                    break;
                };
                if env.from != to {
                    continue;
                }
                let Ok(NodeMsg::Reply { seq: s, reply }) = wire::decode(&env.frame) else {
                    continue;
                };
                if s != seq {
                    continue; // stale reply from an earlier attempt/request
                }
                return match reply {
                    Reply::Ok(body) => Ok(body),
                    Reply::Err { kind, msg, .. } => Err(RpcFail::Node { kind, msg }),
                };
            }
        }
        Err(RpcFail::Dead)
    }

    fn rpc(
        &mut self,
        to: NodeId,
        hint: Option<String>,
        req: Request,
    ) -> Result<ReplyBody, RpcFail> {
        let (attempts, timeout) = (self.cfg.rpc_attempts, self.cfg.rpc_timeout);
        self.rpc_with(to, hint, req, attempts, timeout)
    }

    /// Shard-directed RPC: on a dead leader, fail over and retry against
    /// the promoted follower (versions and indexes make the retry
    /// exactly-once). At most one failover per call — a second death means
    /// the whole group is gone.
    fn shard_rpc(&mut self, k: usize, req: Request) -> Result<ReplyBody, ClusterError> {
        for round in 0..2 {
            let (leader, hint) = {
                let g = &self.groups[k];
                (g.leader, g.leader_hint.clone())
            };
            match self.rpc(leader, hint, req.clone()) {
                Ok(body) => return Ok(body),
                Err(RpcFail::Node { kind, msg }) => return Err(ClusterError::Node { kind, msg }),
                Err(RpcFail::Dead) => {
                    if round == 1 {
                        return Err(ClusterError::ShardLost(k as u32));
                    }
                    self.failover(k)?;
                }
            }
        }
        unreachable!("both rounds returned")
    }

    /// Promote shard `k`'s follower after its leader's lease expired.
    fn failover(&mut self, k: usize) -> Result<(), ClusterError> {
        let dead = self.groups[k].leader;
        self.emit(CoordEvent::LeaderDead {
            shard: k as u32,
            leader: dead,
        });
        let Some(follower) = self.groups[k].follower.take() else {
            return Err(ClusterError::ShardLost(k as u32));
        };
        let version = self.map.bump_version();
        self.emit(CoordEvent::Promoting {
            shard: k as u32,
            follower,
            version,
        });
        let hint = self.groups[k].follower_hint.clone();
        match self.rpc(follower, hint.clone(), Request::Promote) {
            Ok(ReplyBody::Done { wal_len, .. }) => {
                self.groups[k].leader = follower;
                self.groups[k].leader_hint = hint;
                self.groups[k].follower_hint = None;
                self.failovers += 1;
                self.stale.push(dead);
                self.emit(CoordEvent::Promoted {
                    shard: k as u32,
                    leader: follower,
                    wal_len,
                });
                // the promotion bumped the fencing version: make it
                // durable before anything is served under it (the
                // newest journal record may still be part-dispatched)
                self.snapshot_now(true)?;
                Ok(())
            }
            _ => Err(ClusterError::ShardLost(k as u32)),
        }
    }

    /// Stand the cluster up: install the map over `g.n()` sources and
    /// `specs.len()` shards, snapshot the graph, and bootstrap every
    /// group's leader (each leader replicates entry 0 to its follower,
    /// which runs its own Brandes over the same snapshot).
    pub fn bootstrap(&mut self, g: &Graph, specs: Vec<ShardSpec>) -> Result<(), ClusterError> {
        assert!(!specs.is_empty(), "at least one shard");
        self.replica = g.clone();
        self.map = ShardMap::bootstrap(g.n(), specs.len());
        self.groups = specs;
        self.known = self
            .groups
            .iter()
            .flat_map(|s| {
                std::iter::once((s.leader, s.leader_hint.clone()))
                    .chain(s.follower.map(|f| (f, s.follower_hint.clone())))
            })
            .collect();
        self.next_index = vec![0; self.groups.len()];
        let snapshot = self.replica.snapshot_bytes();
        for k in 0..self.groups.len() {
            let sources = self.map.sources_of(k).to_vec();
            let (leader, leader_hint, follower, follower_hint) = {
                let s = &self.groups[k];
                (
                    s.leader,
                    s.leader_hint.clone(),
                    s.follower,
                    s.follower_hint.clone(),
                )
            };
            let req = Request::Bootstrap {
                shard: k as u32,
                snapshot: snapshot.clone(),
                sources,
                follower,
                follower_hint,
            };
            let timeout = self.cfg.bootstrap_timeout;
            match self.rpc_with(leader, leader_hint, req, 1, timeout) {
                Ok(ReplyBody::Bootstrapped { wal_len, .. }) => {
                    self.next_index[k] = wal_len;
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected bootstrap reply: {other:?}"
                    )))
                }
                Err(RpcFail::Node { kind, msg }) => return Err(ClusterError::Node { kind, msg }),
                Err(RpcFail::Dead) => return Err(ClusterError::ShardLost(k as u32)),
            }
        }
        self.snapshot_now(false)?;
        Ok(())
    }

    /// Validate one update against the replica and fold it in (growing
    /// the graph adopts the new vertex in the map). Deterministic, so a
    /// resumed coordinator re-derives identical state by re-folding the
    /// journaled update suffix. Returns the adopting shard, if any.
    fn fold_update(
        replica: &mut Graph,
        map: &mut ShardMap,
        update: Update,
    ) -> Result<Option<usize>, ClusterError> {
        let Update { op, u, v } = update;
        if u == v {
            return Err(ClusterError::Invalid(format!("self loop at {u}")));
        }
        let mut adopter = None;
        match op {
            EdgeOp::Add => {
                let hi = u.max(v);
                let n = replica.n();
                if (hi as usize) > n {
                    return Err(ClusterError::Invalid(format!(
                        "vertex {hi} arrives sparsely (graph has {n})"
                    )));
                }
                if (hi as usize) == n {
                    replica.add_vertex();
                    adopter = Some(
                        map.adopt(hi)
                            .map_err(|e| ClusterError::Invalid(e.to_string()))?,
                    );
                }
                if let Err(e) = replica.add_edge(u, v) {
                    return Err(ClusterError::Invalid(e.to_string()));
                }
            }
            EdgeOp::Remove => {
                replica
                    .remove_edge(u, v)
                    .map_err(|e| ClusterError::Invalid(e.to_string()))?;
            }
        }
        Ok(adopter)
    }

    /// Replicate one edge update across every shard (the paper's map
    /// phase, over the wire): validate against the replica, assign
    /// adoption if the graph grew, then fan the WAL-indexed op to each
    /// leader — failing over and retrying the same index when a lease
    /// expires.
    pub fn apply(&mut self, update: Update) -> Result<ApplyReport, ClusterError> {
        let adopter = Self::fold_update(&mut self.replica, &mut self.map, update)?;
        if let Some(journal) = self.journal.as_mut() {
            // write-ahead: journal the update and its dispatch indices
            // before any shard sees it, so a resumed coordinator can
            // re-drive exactly this entry at exactly these indices
            journal
                .append(&JournalRecord {
                    entry: JournalEntry {
                        update,
                        adopter: adopter.map(|k| k as u32),
                    },
                    indices: self.next_index.clone(),
                })
                .map_err(ClusterError::Durability)?;
        }
        let before = self.failovers;
        let mut degraded = Vec::new();
        for k in 0..self.groups.len() {
            let adopt = (adopter == Some(k)).then(|| update.u.max(update.v));
            let index = self.next_index[k];
            match self.shard_rpc(
                k,
                Request::Apply {
                    index,
                    update,
                    adopt,
                },
            )? {
                ReplyBody::Done {
                    wal_len,
                    degraded: d,
                    ..
                } => {
                    self.next_index[k] = wal_len;
                    if d {
                        degraded.push(k as u32);
                    }
                }
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected apply reply: {other:?}"
                    )))
                }
            }
        }
        Ok(ApplyReport {
            adopter,
            degraded,
            failovers: (self.failovers - before) as u32,
        })
    }

    /// The fast reduce (`t_M`): fold shard partials in ascending shard
    /// order.
    pub fn reduce(&mut self) -> Result<Scores, ClusterError> {
        let mut total = Scores::zeros(self.replica.n(), self.replica.edge_slots());
        for k in 0..self.groups.len() {
            match self.shard_rpc(k, Request::Partials)? {
                ReplyBody::Partials { scores } => total.merge_from(&scores),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected partials reply: {other:?}"
                    )))
                }
            }
        }
        Ok(total)
    }

    /// The exact reduce: gather every shard's canonical tree segments and
    /// assemble them — bitwise equal to a serial replay regardless of
    /// partitioning, handoffs, or how many failovers rewrote the groups.
    pub fn reduce_exact(&mut self) -> Result<Scores, ClusterError> {
        let mut segments = Vec::new();
        for k in 0..self.groups.len() {
            match self.shard_rpc(k, Request::Segments)? {
                ReplyBody::Segments { segments: s } => segments.extend(s),
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected segments reply: {other:?}"
                    )))
                }
            }
        }
        let (n, edge_slots) = (self.replica.n(), self.replica.edge_slots());
        assemble(segments, n, (n, edge_slots)).ok_or_else(|| {
            ClusterError::Protocol("shard segments do not cover the source range".to_string())
        })
    }

    /// Move one source between shards over the wire: export from the
    /// donor, import at the recipient, then commit the move in the map
    /// (bumping the version).
    pub fn handoff(&mut self, mv: &SourceMove) -> Result<(), ClusterError> {
        let record = match self.shard_rpc(mv.from, Request::Export { source: mv.source })? {
            ReplyBody::Exported {
                record, wal_len, ..
            } => {
                self.next_index[mv.from] = wal_len;
                record
            }
            other => {
                return Err(ClusterError::Protocol(format!(
                    "unexpected export reply: {other:?}"
                )))
            }
        };
        match self.shard_rpc(mv.to, Request::Import { record })? {
            ReplyBody::Done { wal_len, .. } => self.next_index[mv.to] = wal_len,
            other => {
                return Err(ClusterError::Protocol(format!(
                    "unexpected import reply: {other:?}"
                )))
            }
        }
        self.map
            .apply_move(mv)
            .map_err(|e| ClusterError::Protocol(e.to_string()))?;
        self.snapshot_now(false)?;
        Ok(())
    }

    /// Restore the ownership skew invariant by executing the map's
    /// deterministic rebalance plan as wire handoffs. Returns the number
    /// of sources moved.
    pub fn rebalance(&mut self, threshold: usize) -> Result<usize, ClusterError> {
        let plan = self.map.plan_rebalance(threshold);
        for mv in &plan.moves {
            self.handoff(mv)?;
        }
        Ok(plan.moves.len())
    }

    /// Fence every leader deposed by a failover that may still be alive
    /// behind a healed partition: send `Demote` at the current (higher)
    /// map version, clearing their shard state. Unreachable nodes stay
    /// queued for the next call. Returns how many were demoted.
    pub fn fence_stale(&mut self) -> usize {
        let stale = std::mem::take(&mut self.stale);
        let mut demoted = 0;
        for node in stale {
            let hint = self.hint_of(node);
            match self.rpc(node, hint, Request::Demote) {
                Ok(_) => demoted += 1,
                Err(_) => self.stale.push(node),
            }
        }
        demoted
    }

    fn hint_of(&self, node: NodeId) -> Option<String> {
        self.known.get(&node).cloned().flatten()
    }

    /// Query one node's status (diagnostics; unfenced).
    pub fn node_status(&mut self, to: NodeId) -> Result<ReplyBody, ClusterError> {
        let hint = self.hint_of(to);
        match self.rpc(to, hint, Request::Status) {
            Ok(body) => Ok(body),
            Err(RpcFail::Node { kind, msg }) => Err(ClusterError::Node { kind, msg }),
            Err(RpcFail::Dead) => Err(ClusterError::Protocol(format!("{to} unreachable"))),
        }
    }

    /// Drain the cluster: best-effort `Shutdown` to every known node
    /// (leaders, followers, and fenced stragglers).
    pub fn shutdown(mut self) {
        let _ = self.snapshot_now(false); // park a clean resume point
        let mut targets: Vec<NodeId> = self.known.keys().copied().collect();
        for g in &self.groups {
            targets.push(g.leader);
            targets.extend(g.follower);
        }
        targets.extend(self.stale.iter().copied());
        targets.sort_unstable();
        targets.dedup();
        for node in targets {
            let hint = self.hint_of(node);
            let _ = self.rpc_with(node, hint, Request::Shutdown, 1, self.cfg.rpc_timeout);
        }
    }
}
