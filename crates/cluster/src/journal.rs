//! Durable coordinator control state: the checksummed snapshot +
//! write-ahead journal that lets `sbc coord` restart and resume command
//! of a running node fleet.
//!
//! Three files live in the coordinator's `--dir`, all built from the
//! store crate's sealed-file helpers (magic + payload + FNV-1a trailer,
//! written via tmp+rename):
//!
//! * **`coord.snap`** — the control-plane snapshot: map version, the full
//!   source→shard assignment, the replication groups with their dial
//!   hints, the node registry (every node ever known, stragglers
//!   included), the per-shard `next_index` cursors, and the structural
//!   graph replica. Rewritten on the rare map-changing events (bootstrap,
//!   failover, handoff, resume) — never per update.
//! * **`coord.oplog`** — a write-ahead [`OpLog`] of applied updates. Each
//!   entry records the update, the per-shard WAL indices it was (or is
//!   about to be) dispatched at, and the adopting shard if the update
//!   grew the graph. Appended *before* the fan-out, so a resumed
//!   coordinator can re-drive the last entry at the recorded indices and
//!   let the nodes' index dedup make the retry exactly-once.
//! * **`coord.seq`** — the RPC sequence reservation. Nodes drop requests
//!   with a seq below the last one they served from a sender, so a
//!   resumed coordinator must continue the killed incarnation's sequence:
//!   the file persists a ceiling the live coordinator never crosses
//!   without first extending it (rewritten once per
//!   [`SEQ_RESERVE`] RPCs, not per RPC).

use ebc_core::state::Update;
use ebc_graph::stream::EdgeOp;
use ebc_store::history::{read_sealed, write_sealed};
use ebc_store::OpLog;
use std::path::{Path, PathBuf};

/// Snapshot file name inside the coordinator's directory.
pub const COORD_SNAP: &str = "coord.snap";
/// Write-ahead update journal file name.
pub const COORD_OPLOG: &str = "coord.oplog";
/// Sequence reservation file name.
pub const COORD_SEQ: &str = "coord.seq";

/// Magic for `coord.snap`.
pub const SNAP_MAGIC: &[u8; 8] = b"EBCCORD1";
/// Magic for `coord.seq`.
pub const SEQ_MAGIC: &[u8; 8] = b"EBCCSEQ1";

/// How many RPC seqs one `coord.seq` rewrite buys.
pub const SEQ_RESERVE: u64 = 1 << 16;

/// One shard's replication group row in a [`CoordSnapshot`]: `(leader,
/// follower, leader_hint, follower_hint)`.
pub type GroupRow = (u32, Option<u32>, Option<String>, Option<String>);

/// The control-plane state `coord.snap` captures — everything the
/// coordinator needs besides the update journal suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordSnapshot {
    /// Map version (the fencing token) at snapshot time.
    pub version: u64,
    /// Journal entries whose *fold* (replica + map mutation) this
    /// snapshot already contains. Resume re-folds entries at positions
    /// `>= applied`.
    pub applied: u64,
    /// Failovers performed so far.
    pub failovers: u64,
    /// Per-shard replication group rows.
    pub groups: Vec<GroupRow>,
    /// Per-shard owned sources (the map's assignment, bookkeeping order).
    pub owned: Vec<Vec<u32>>,
    /// Every node ever registered, with its dial hint.
    pub known: Vec<(u32, Option<String>)>,
    /// Deposed leaders still awaiting a fence.
    pub stale: Vec<u32>,
    /// Per-shard next WAL index cursors at snapshot time.
    pub next_index: Vec<u64>,
    /// Structural graph replica snapshot bytes.
    pub graph: Vec<u8>,
}

/// One write-ahead journal entry: an update plus everything needed to
/// re-drive it exactly-once after a coordinator crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// The edge update.
    pub update: Update,
    /// The adopting shard, when the update grew the graph.
    pub adopter: Option<u32>,
}

/// Per-shard dispatch indices ride alongside the entry (variable length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The fixed-size part.
    pub entry: JournalEntry,
    /// WAL index the update was dispatched at, per shard.
    pub indices: Vec<u64>,
}

/// The coordinator's durable control state: snapshot + journal + seq
/// reservation, rooted at one directory.
pub struct CoordJournal {
    dir: PathBuf,
    oplog: OpLog,
    /// The persisted seq ceiling: seqs `< reserved` are safe to use.
    reserved: u64,
}

fn io_err(e: impl std::fmt::Display) -> String {
    format!("coordinator journal: {e}")
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| io_err("truncated record"))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn opt_str(&mut self) -> Result<Option<String>, String> {
        if self.u8()? == 0 {
            return Ok(None);
        }
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map(Some)
            .map_err(|_| io_err("non-utf8 hint"))
    }
    fn done(&self) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(io_err("trailing bytes in record"))
        }
    }
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_snapshot(s: &CoordSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + s.graph.len());
    out.extend_from_slice(&s.version.to_le_bytes());
    out.extend_from_slice(&s.applied.to_le_bytes());
    out.extend_from_slice(&s.failovers.to_le_bytes());
    out.extend_from_slice(&(s.groups.len() as u32).to_le_bytes());
    for (leader, follower, lh, fh) in &s.groups {
        out.extend_from_slice(&leader.to_le_bytes());
        match follower {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
        put_opt_str(&mut out, lh.as_deref());
        put_opt_str(&mut out, fh.as_deref());
    }
    for owned in &s.owned {
        out.extend_from_slice(&(owned.len() as u32).to_le_bytes());
        for src in owned {
            out.extend_from_slice(&src.to_le_bytes());
        }
    }
    out.extend_from_slice(&(s.known.len() as u32).to_le_bytes());
    for (node, hint) in &s.known {
        out.extend_from_slice(&node.to_le_bytes());
        put_opt_str(&mut out, hint.as_deref());
    }
    out.extend_from_slice(&(s.stale.len() as u32).to_le_bytes());
    for node in &s.stale {
        out.extend_from_slice(&node.to_le_bytes());
    }
    for ix in &s.next_index {
        out.extend_from_slice(&ix.to_le_bytes());
    }
    out.extend_from_slice(&(s.graph.len() as u64).to_le_bytes());
    out.extend_from_slice(&s.graph);
    out
}

fn decode_snapshot(buf: &[u8]) -> Result<CoordSnapshot, String> {
    let mut c = Cursor::new(buf);
    let version = c.u64()?;
    let applied = c.u64()?;
    let failovers = c.u64()?;
    let p = c.u32()? as usize;
    let mut groups = Vec::with_capacity(p);
    for _ in 0..p {
        let leader = c.u32()?;
        let follower = if c.u8()? == 1 { Some(c.u32()?) } else { None };
        let lh = c.opt_str()?;
        let fh = c.opt_str()?;
        groups.push((leader, follower, lh, fh));
    }
    let mut owned = Vec::with_capacity(p);
    for _ in 0..p {
        let len = c.u32()? as usize;
        let mut sources = Vec::with_capacity(len);
        for _ in 0..len {
            sources.push(c.u32()?);
        }
        owned.push(sources);
    }
    let nk = c.u32()? as usize;
    let mut known = Vec::with_capacity(nk);
    for _ in 0..nk {
        let node = c.u32()?;
        known.push((node, c.opt_str()?));
    }
    let ns = c.u32()? as usize;
    let mut stale = Vec::with_capacity(ns);
    for _ in 0..ns {
        stale.push(c.u32()?);
    }
    let mut next_index = Vec::with_capacity(p);
    for _ in 0..p {
        next_index.push(c.u64()?);
    }
    let glen = c.u64()? as usize;
    let graph = c.take(glen)?.to_vec();
    c.done()?;
    Ok(CoordSnapshot {
        version,
        applied,
        failovers,
        groups,
        owned,
        known,
        stale,
        next_index,
        graph,
    })
}

fn encode_record(r: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(18 + 8 * r.indices.len());
    out.push(match r.entry.update.op {
        EdgeOp::Add => 0,
        EdgeOp::Remove => 1,
    });
    out.extend_from_slice(&r.entry.update.u.to_le_bytes());
    out.extend_from_slice(&r.entry.update.v.to_le_bytes());
    match r.entry.adopter {
        None => out.push(0),
        Some(k) => {
            out.push(1);
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
    out.extend_from_slice(&(r.indices.len() as u32).to_le_bytes());
    for ix in &r.indices {
        out.extend_from_slice(&ix.to_le_bytes());
    }
    out
}

fn decode_record(buf: &[u8]) -> Result<JournalRecord, String> {
    let mut c = Cursor::new(buf);
    let op = match c.u8()? {
        0 => EdgeOp::Add,
        1 => EdgeOp::Remove,
        other => return Err(io_err(format!("unknown journal op {other}"))),
    };
    let u = c.u32()?;
    let v = c.u32()?;
    let update = match op {
        EdgeOp::Add => Update::add(u, v),
        EdgeOp::Remove => Update::remove(u, v),
    };
    let adopter = if c.u8()? == 1 { Some(c.u32()?) } else { None };
    let np = c.u32()? as usize;
    let mut indices = Vec::with_capacity(np);
    for _ in 0..np {
        indices.push(c.u64()?);
    }
    c.done()?;
    Ok(JournalRecord {
        entry: JournalEntry { update, adopter },
        indices,
    })
}

impl CoordJournal {
    /// Does `dir` hold a coordinator snapshot to resume from?
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(COORD_SNAP).is_file()
    }

    /// Arm persistence at `dir` for a coordinator that has not written a
    /// snapshot yet: creates the directory and a fresh (empty) journal.
    /// Any previous journal at the same path is discarded — the caller's
    /// in-memory state is the truth a fresh snapshot will capture.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let path = dir.join(COORD_OPLOG);
        if path.exists() {
            std::fs::remove_file(&path).map_err(io_err)?;
        }
        let oplog = OpLog::open(&path).map_err(io_err)?;
        Ok(CoordJournal {
            dir,
            oplog,
            reserved: 0,
        })
    }

    /// Reopen a journal directory: the snapshot, the retained journal
    /// records with the global position of the first one, and the
    /// resumed seq floor.
    pub fn open(
        dir: impl AsRef<Path>,
    ) -> Result<(Self, CoordSnapshot, u64, Vec<JournalRecord>), String> {
        let dir = dir.as_ref().to_path_buf();
        let snap =
            decode_snapshot(&read_sealed(&dir.join(COORD_SNAP), SNAP_MAGIC).map_err(io_err)?)?;
        let oplog = OpLog::open(dir.join(COORD_OPLOG)).map_err(io_err)?;
        let base = oplog.base();
        let mut records = Vec::with_capacity((oplog.len() - base) as usize);
        for entry in oplog.entries() {
            records.push(decode_record(entry)?);
        }
        let seq_path = dir.join(COORD_SEQ);
        let reserved = if seq_path.is_file() {
            let payload = read_sealed(&seq_path, SEQ_MAGIC).map_err(io_err)?;
            let mut c = Cursor::new(&payload);
            let r = c.u64()?;
            c.done()?;
            r
        } else {
            0
        };
        Ok((
            CoordJournal {
                dir,
                oplog,
                reserved,
            },
            snap,
            base,
            records,
        ))
    }

    /// Global position the next appended record gets.
    pub fn len(&self) -> u64 {
        self.oplog.len()
    }

    /// Is the journal empty (nothing ever appended)?
    pub fn is_empty(&self) -> bool {
        self.oplog.is_empty()
    }

    /// Append one write-ahead record and sync it to disk.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), String> {
        self.oplog.append(&encode_record(record)).map_err(io_err)?;
        self.oplog.sync().map_err(io_err)
    }

    /// Rewrite the snapshot (tmp+rename) and drop journal records whose
    /// fold it contains — except the last one when `in_flight` (its
    /// dispatch may be incomplete; resume re-drives it).
    pub fn write_snapshot(&mut self, snap: &CoordSnapshot, in_flight: bool) -> Result<(), String> {
        write_sealed(
            &self.dir.join(COORD_SNAP),
            SNAP_MAGIC,
            &encode_snapshot(snap),
        )
        .map_err(io_err)?;
        let keep_from = if in_flight {
            self.oplog.len().saturating_sub(1)
        } else {
            self.oplog.len()
        };
        self.oplog
            .truncate_prefix(keep_from.min(snap.applied))
            .map_err(io_err)?;
        Ok(())
    }

    /// Make seqs up to (at least) `seq` safe to use after a crash: extend
    /// the persisted ceiling by [`SEQ_RESERVE`] whenever `seq` reaches
    /// it. Returns the active ceiling.
    pub fn reserve_seq(&mut self, seq: u64) -> Result<u64, String> {
        if seq < self.reserved {
            return Ok(self.reserved);
        }
        let next = seq + SEQ_RESERVE;
        write_sealed(&self.dir.join(COORD_SEQ), SEQ_MAGIC, &next.to_le_bytes()).map_err(io_err)?;
        self.reserved = next;
        Ok(next)
    }

    /// The persisted seq ceiling (0 when never reserved).
    pub fn reserved_seq(&self) -> u64 {
        self.reserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sbc-coordjr-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot() -> CoordSnapshot {
        CoordSnapshot {
            version: 7,
            applied: 3,
            failovers: 1,
            groups: vec![
                (1, Some(2), Some("127.0.0.1:9000".into()), None),
                (3, None, None, None),
            ],
            owned: vec![vec![0, 1, 4], vec![2, 3]],
            known: vec![(1, None), (2, Some("h".into())), (3, None)],
            stale: vec![9],
            next_index: vec![5, 4],
            graph: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn record_round_trips() {
        for r in [
            JournalRecord {
                entry: JournalEntry {
                    update: Update::add(4, 9),
                    adopter: Some(1),
                },
                indices: vec![3, 7],
            },
            JournalRecord {
                entry: JournalEntry {
                    update: Update::remove(0, 2),
                    adopter: None,
                },
                indices: vec![1],
            },
        ] {
            assert_eq!(decode_record(&encode_record(&r)).unwrap(), r);
        }
    }

    #[test]
    fn create_write_reopen() {
        let dir = tmp("reopen");
        let mut j = CoordJournal::create(&dir).unwrap();
        let rec = JournalRecord {
            entry: JournalEntry {
                update: Update::add(0, 3),
                adopter: None,
            },
            indices: vec![1, 1],
        };
        j.append(&rec).unwrap();
        let mut snap = sample_snapshot();
        snap.applied = 0; // fold not yet captured: keep the record
        j.write_snapshot(&snap, false).unwrap();
        assert_eq!(j.reserve_seq(0).unwrap(), SEQ_RESERVE);

        let (j2, snap2, base, records) = CoordJournal::open(&dir).unwrap();
        assert_eq!(snap2, snap);
        assert_eq!(base, 0);
        assert_eq!(records, vec![rec]);
        assert_eq!(j2.reserved_seq(), SEQ_RESERVE);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quiescent_snapshot_drops_folded_records() {
        let dir = tmp("drop");
        let mut j = CoordJournal::create(&dir).unwrap();
        let rec = |u: u32| JournalRecord {
            entry: JournalEntry {
                update: Update::add(u, u + 1),
                adopter: None,
            },
            indices: vec![u as u64],
        };
        for u in 0..3 {
            j.append(&rec(u)).unwrap();
        }
        let mut snap = sample_snapshot();
        snap.applied = 3;
        j.write_snapshot(&snap, false).unwrap();
        let (_, _, base, records) = CoordJournal::open(&dir).unwrap();
        assert_eq!((base, records.len()), (3, 0), "all folds captured");

        // in-flight snapshot keeps the last record for re-dispatch
        let mut j = CoordJournal::create(&dir).unwrap();
        for u in 0..3 {
            j.append(&rec(u)).unwrap();
        }
        j.write_snapshot(&snap, true).unwrap();
        let (_, _, base, records) = CoordJournal::open(&dir).unwrap();
        assert_eq!((base, records.len()), (2, 1));
        assert_eq!(records[0], rec(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_snapshot_is_refused() {
        let dir = tmp("tamper");
        let mut j = CoordJournal::create(&dir).unwrap();
        j.write_snapshot(&sample_snapshot(), false).unwrap();
        let path = dir.join(COORD_SNAP);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(CoordJournal::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
