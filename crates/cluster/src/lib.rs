//! # ebc-cluster
//!
//! Multi-host shard cluster for streaming betweenness centrality: a
//! shard-node wire protocol layered on the serve crate's line codec, a
//! coordinator owning the versioned shard map (registry, map, leases), and
//! per-shard WAL replication with leader failover — DESIGN.md §12.
//!
//! The crate is transport-agnostic: nodes speak [`wire::NodeMsg`] frames
//! through the [`transport::Transport`] trait, whose in-process test
//! embodiment ([`transport::TestNet`]) supports deterministic, seed-driven
//! drop/duplicate/delay/partition injection, and whose TCP embodiment
//! powers `sbc node` / `sbc coord`.

#![deny(missing_docs)]

pub mod coord;
pub mod journal;
pub mod node;
pub mod sim;
pub mod transport;
pub mod wire;

pub use coord::{ApplyReport, ClusterError, CoordEvent, Coordinator, CoordinatorConfig, ShardSpec};
pub use journal::{CoordJournal, CoordSnapshot};
pub use node::{KillSpec, KillWindow, NodeConfig, ShardNode};
pub use sim::{HeadlessSim, SimBuilder, SimCluster};
pub use transport::{FaultSpec, Mailbox, TcpTransport, TestNet, Transport};
pub use wire::{NodeId, Role, COORD};
