//! The shard node: one process owning (or replicating) one shard.
//!
//! A [`ShardNode`] is a single-threaded event loop over a [`Mailbox`]. As
//! **leader** it executes coordinator requests against its private
//! [`ShardState`] + [`Graph`] replica, appending every state-changing op to
//! its WAL ([`OpLog`]) *as the serialized wire frame* and synchronously
//! shipping that frame to its follower before acknowledging. As
//! **follower** it absorbs [`NodeMsg::Replicate`] frames in index order,
//! running the *same* `ShardRuntime::apply_entry` code path the leader
//! ran — which, the kernel being a pure function of `(graph, BD, op)`, makes
//! its state bitwise identical to the leader's at every WAL length.
//!
//! Safety rails (DESIGN.md §12):
//!
//! * **Fencing** — every versioned request carries the coordinator's map
//!   version; a request older than the highest seen is refused with
//!   [`ErrKind::Fenced`]. Promotion bumps the map version, so a stale
//!   leader's world view dies with its lease.
//! * **Exactly-once** — requests are deduplicated per sender by sequence
//!   number (a retried request replays the cached reply), and ops are
//!   deduplicated by WAL index on both leader and follower, so duplicate
//!   delivery never double-applies.
//! * **Role check on replication** — a promoted node ignores `Replicate`
//!   frames outright (it is no longer a follower), so a zombie leader's
//!   late shipments cannot corrupt the new timeline.
//!
//! Deterministic crash injection ([`KillSpec`]) kills the node at a chosen
//! protocol window × WAL index — the failover matrix in
//! `tests/cluster_failover.rs` sweeps these.

use crate::transport::{Mailbox, SendError, Transport};
use crate::wire::{self, ErrKind, NodeId, NodeMsg, Reply, ReplyBody, Request, Role, ShardOp};
use ebc_core::bd::{ExportedRecord, MemoryBdStore};
use ebc_core::incremental::UpdateConfig;
use ebc_engine::ShardState;
use ebc_graph::{EdgeOp, Graph};
use ebc_store::OpLog;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Tuning knobs for a node.
#[derive(Clone)]
pub struct NodeConfig {
    /// Ship attempts before declaring the follower lost and serving
    /// degraded.
    pub rep_attempts: u32,
    /// Per-attempt wait for the follower's ack.
    pub rep_timeout: Duration,
    /// Kernel configuration (must match the coordinator's).
    pub update_cfg: UpdateConfig,
    /// When set, the WAL writes through to this file (torn tails are
    /// truncated on reopen; see [`OpLog::open`]).
    pub wal_path: Option<PathBuf>,
    /// When set, compact the op log once its retained frames exceed this
    /// many bytes — but only **behind the replication watermark**: a
    /// leader never truncates an entry its follower has not acknowledged
    /// (it may still have to re-ship it), so a lost follower freezes
    /// compaction at the last acked index. `None` (the default) keeps the
    /// log append-forever.
    pub wal_compact_bytes: Option<u64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            rep_attempts: 5,
            rep_timeout: Duration::from_millis(200),
            update_cfg: UpdateConfig::default(),
            wal_path: None,
            wal_compact_bytes: None,
        }
    }
}

/// Protocol window at which a [`KillSpec`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillWindow {
    /// After the op is WAL-appended and locally applied, before it ships
    /// to the follower — the follower never hears of the entry.
    MidApply,
    /// After the follower acknowledged the shipment, before the
    /// coordinator is answered — leader and follower agree, the
    /// coordinator doesn't know it.
    MidShip,
}

/// Deterministic crash injection: die at `window` while executing WAL
/// entry `at_index` (the in-process analogue of `SBC_SERVE_CRASH_AFTER`).
#[derive(Debug, Clone, Copy)]
pub struct KillSpec {
    /// Where in the op's lifecycle to die.
    pub window: KillWindow,
    /// Which WAL index triggers it.
    pub at_index: u64,
}

/// The compute state a node holds once its shard is bootstrapped.
struct ShardRuntime {
    shard: u32,
    g: Graph,
    state: ShardState<MemoryBdStore>,
    wal: OpLog,
    follower: Option<NodeId>,
    follower_hint: Option<String>,
    follower_lost: bool,
    /// Replication watermark: the follower's last acknowledged log length
    /// (entries `< acked` are durable on the follower too). Frozen when
    /// the follower is lost.
    acked: u64,
}

impl ShardRuntime {
    /// Build a runtime from a [`ShardOp::Init`]: decode the structural
    /// snapshot and Brandes-bootstrap the owned sources. Returns the
    /// iteration count.
    fn from_init(
        shard: u32,
        snapshot: &[u8],
        sources: &[u32],
        wal: OpLog,
        cfg: &UpdateConfig,
    ) -> Result<(Self, u64), String> {
        let g = Graph::from_snapshot_bytes(snapshot).map_err(|e| e.to_string())?;
        let mut state = ShardState::new(
            MemoryBdStore::new(g.n()),
            g.n(),
            g.edge_slots(),
            cfg.clone(),
        );
        let brandes = state.bootstrap(&g, sources).map_err(|e| e.to_string())?;
        Ok((
            ShardRuntime {
                shard,
                g,
                state,
                wal,
                follower: None,
                follower_hint: None,
                follower_lost: false,
                acked: 0,
            },
            brandes,
        ))
    }

    /// Execute one replicated op against the replica — the code path
    /// shared verbatim by leader apply and follower replay. Returns the
    /// exported record for [`ShardOp::Export`].
    fn apply_entry(&mut self, index: u64, op: &ShardOp) -> Result<Option<ExportedRecord>, String> {
        match op {
            ShardOp::Init { .. } => Err("init op beyond entry 0".to_string()),
            ShardOp::Apply { update, adopt } => {
                let removed = match update.op {
                    EdgeOp::Add => {
                        self.g.ensure_vertex(update.u);
                        self.g.ensure_vertex(update.v);
                        self.g
                            .add_edge(update.u, update.v)
                            .map_err(|e| e.to_string())?;
                        None
                    }
                    EdgeOp::Remove => Some(
                        self.g
                            .remove_edge(update.u, update.v)
                            .map_err(|e| e.to_string())?,
                    ),
                };
                self.state
                    .apply(&self.g, *update, removed, *adopt)
                    .map_err(|e| e.to_string())?;
                Ok(None)
            }
            ShardOp::Export { source } => {
                let record = self
                    .state
                    .export(*source, index)
                    .map_err(|e| e.to_string())?;
                self.state.retire(*source).map_err(|e| e.to_string())?;
                Ok(Some(record))
            }
            ShardOp::Import { record } => {
                self.state
                    .import(record.clone())
                    .map_err(|e| e.to_string())?;
                Ok(None)
            }
        }
    }

    fn degraded(&self) -> bool {
        self.follower.is_none() || self.follower_lost
    }
}

/// A cluster shard node. Generic over the [`Transport`] so the same event
/// loop runs in a fault-injected thread or behind a TCP socket.
pub struct ShardNode<T: Transport> {
    id: NodeId,
    transport: T,
    mailbox: Mailbox,
    cfg: NodeConfig,
    kill: Option<KillSpec>,
    role: Role,
    version: u64,
    fenced: u64,
    dedup: HashMap<NodeId, (u64, String)>,
    rt: Option<ShardRuntime>,
}

/// Control-flow outcome of one frame.
enum Flow {
    /// Keep serving.
    Continue,
    /// Exit the loop (shutdown drained, or a kill fired).
    Die,
}

impl<T: Transport> ShardNode<T> {
    /// A fresh idle node.
    pub fn new(id: NodeId, transport: T, mailbox: Mailbox, cfg: NodeConfig) -> Self {
        ShardNode {
            id,
            transport,
            mailbox,
            cfg,
            kill: None,
            role: Role::Idle,
            version: 0,
            fenced: 0,
            dedup: HashMap::new(),
            rt: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Arm (or disarm) deterministic crash injection.
    pub fn set_kill(&mut self, kill: Option<KillSpec>) {
        self.kill = kill;
    }

    /// Serve frames until a `Shutdown` request or an armed kill fires.
    /// Dropping the mailbox on return is what peers observe as the crash.
    pub fn run(mut self) {
        loop {
            let Some(env) = self.mailbox.recv_timeout(Duration::from_millis(100)) else {
                continue;
            };
            let Ok(msg) = wire::decode(&env.frame) else {
                continue; // garbage on the wire is the codec's problem, not ours
            };
            match msg {
                NodeMsg::Request { seq, version, req } => {
                    if let Flow::Die = self.handle_request(env.from, seq, version, req) {
                        return;
                    }
                }
                NodeMsg::Replicate { index, op } => {
                    self.handle_replicate(env.from, &env.frame, index, &op)
                }
                // stray acks (duplicates, late arrivals) outside a ship
                // wait are stale by definition
                NodeMsg::RepAck { .. } | NodeMsg::Reply { .. } | NodeMsg::Hello { .. } => {}
            }
        }
    }

    fn killed_at(&self, window: KillWindow, index: u64) -> bool {
        self.kill
            .is_some_and(|k| k.window == window && k.at_index == index)
    }

    fn reply_to(&mut self, to: NodeId, seq: u64, reply: Reply) {
        let frame = wire::encode(&NodeMsg::Reply { seq, reply });
        self.dedup.insert(to, (seq, frame.clone()));
        let _ = self.transport.send(to, None, &frame);
    }

    fn handle_request(&mut self, from: NodeId, seq: u64, version: u64, req: Request) -> Flow {
        // exactly-once per sender: a retried seq replays the cached reply,
        // an older seq is a late duplicate
        if let Some((last, cached)) = self.dedup.get(&from) {
            if seq == *last {
                let frame = cached.clone();
                let _ = self.transport.send(from, None, &frame);
                return Flow::Continue;
            }
            if seq < *last {
                return Flow::Continue;
            }
        }
        // fencing: versioned requests from an older map view are refused
        if !req.is_unfenced() {
            if version < self.version {
                self.fenced += 1;
                let have = self.version;
                self.reply_to(
                    from,
                    seq,
                    Reply::Err {
                        kind: ErrKind::Fenced,
                        msg: format!("request at map version {version}, node has seen {have}"),
                        have,
                    },
                );
                return Flow::Continue;
            }
            self.version = version;
        }
        match req {
            Request::Bootstrap {
                shard,
                snapshot,
                sources,
                follower,
                follower_hint,
            } => self.do_bootstrap(
                from,
                seq,
                shard,
                &snapshot,
                &sources,
                follower,
                follower_hint,
            ),
            Request::Apply {
                index,
                update,
                adopt,
            } => self.do_op(from, seq, index, ShardOp::Apply { update, adopt }),
            Request::Export { source } => {
                self.do_op(from, seq, index_of(&self.rt), ShardOp::Export { source })
            }
            Request::Import { record } => {
                self.do_op(from, seq, index_of(&self.rt), ShardOp::Import { record })
            }
            Request::Partials => {
                let reply = match self.rt.as_ref() {
                    None => protocol_err("no shard state"),
                    Some(rt) => Reply::Ok(ReplyBody::Partials {
                        scores: rt.state.partial().clone(),
                    }),
                };
                self.reply_to(from, seq, reply);
                Flow::Continue
            }
            Request::Segments => {
                let reply = match self.rt.as_mut() {
                    None => protocol_err("no shard state"),
                    Some(rt) => match rt.state.segments(&rt.g) {
                        Ok(segments) => Reply::Ok(ReplyBody::Segments { segments }),
                        Err(e) => state_err(e.to_string()),
                    },
                };
                self.reply_to(from, seq, reply);
                Flow::Continue
            }
            Request::Promote => {
                let reply = match (&self.role, self.rt.as_mut()) {
                    (Role::Follower, Some(rt)) => {
                        self.role = Role::Leader;
                        rt.follower = None;
                        rt.follower_hint = None;
                        Reply::Ok(ReplyBody::Done {
                            wal_len: rt.wal.len(),
                            deduped: false,
                            degraded: true,
                        })
                    }
                    _ => protocol_err("promote requires a follower with shard state"),
                };
                self.reply_to(from, seq, reply);
                Flow::Continue
            }
            Request::Demote => {
                // fence and reset: the shard lives elsewhere now
                self.rt = None;
                self.role = Role::Idle;
                self.reply_to(
                    from,
                    seq,
                    Reply::Ok(ReplyBody::Done {
                        wal_len: 0,
                        deduped: false,
                        degraded: false,
                    }),
                );
                Flow::Continue
            }
            Request::Status => {
                let reply = Reply::Ok(ReplyBody::Status {
                    role: self.role,
                    version: self.version,
                    shard: self.rt.as_ref().map(|rt| rt.shard),
                    wal_len: self.rt.as_ref().map_or(0, |rt| rt.wal.len()),
                    sources: self
                        .rt
                        .as_ref()
                        .map_or(0, |rt| rt.state.num_sources() as u64),
                    fenced: self.fenced,
                });
                self.reply_to(from, seq, reply);
                Flow::Continue
            }
            Request::Shutdown => {
                self.reply_to(
                    from,
                    seq,
                    Reply::Ok(ReplyBody::Done {
                        wal_len: self.rt.as_ref().map_or(0, |rt| rt.wal.len()),
                        deduped: false,
                        degraded: false,
                    }),
                );
                Flow::Die
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // the Bootstrap frame, destructured
    fn do_bootstrap(
        &mut self,
        from: NodeId,
        seq: u64,
        shard: u32,
        snapshot: &[u8],
        sources: &[u32],
        follower: Option<NodeId>,
        follower_hint: Option<String>,
    ) -> Flow {
        let wal = match self.open_wal() {
            Ok(wal) => wal,
            Err(e) => {
                self.reply_to(from, seq, state_err(e));
                return Flow::Continue;
            }
        };
        let init = ShardOp::Init {
            shard,
            snapshot: snapshot.to_vec(),
            sources: sources.to_vec(),
        };
        let frame = wire::encode(&NodeMsg::Replicate { index: 0, op: init });
        let (mut rt, brandes) =
            match ShardRuntime::from_init(shard, snapshot, sources, wal, &self.cfg.update_cfg) {
                Ok(x) => x,
                Err(e) => {
                    self.reply_to(from, seq, state_err(e));
                    return Flow::Continue;
                }
            };
        if let Err(e) = rt.wal.append(frame.as_bytes()) {
            self.reply_to(from, seq, state_err(e.to_string()));
            return Flow::Continue;
        }
        rt.follower = follower;
        rt.follower_hint = follower_hint;
        self.ship(&mut rt, 0, &frame);
        self.role = Role::Leader;
        let wal_len = rt.wal.len();
        self.rt = Some(rt);
        self.reply_to(
            from,
            seq,
            Reply::Ok(ReplyBody::Bootstrapped { wal_len, brandes }),
        );
        Flow::Continue
    }

    /// Leader-side execution of one WAL-indexed op: dedup by index, append,
    /// apply, ship, reply — with the kill windows in between.
    fn do_op(&mut self, from: NodeId, seq: u64, index: u64, op: ShardOp) -> Flow {
        if self.role != Role::Leader {
            self.reply_to(from, seq, protocol_err("not the shard leader"));
            return Flow::Continue;
        }
        let Some(mut rt) = self.rt.take() else {
            self.reply_to(from, seq, protocol_err("no shard state"));
            return Flow::Continue;
        };
        let wal_len = rt.wal.len();
        if index < wal_len {
            // duplicate delivery of an op already executed: absorb
            let degraded = rt.degraded();
            self.rt = Some(rt);
            self.reply_to(
                from,
                seq,
                Reply::Ok(ReplyBody::Done {
                    wal_len,
                    deduped: true,
                    degraded,
                }),
            );
            return Flow::Continue;
        }
        if index > wal_len {
            self.rt = Some(rt);
            self.reply_to(
                from,
                seq,
                protocol_err(format!("wal gap: op at {index}, log at {wal_len}")),
            );
            return Flow::Continue;
        }
        let frame = wire::encode(&NodeMsg::Replicate {
            index,
            op: op.clone(),
        });
        if let Err(e) = rt.wal.append(frame.as_bytes()) {
            self.rt = Some(rt);
            self.reply_to(from, seq, state_err(e.to_string()));
            return Flow::Continue;
        }
        let exported = match rt.apply_entry(index, &op) {
            Ok(x) => x,
            Err(e) => {
                self.rt = Some(rt);
                self.reply_to(from, seq, state_err(e));
                return Flow::Continue;
            }
        };
        if self.killed_at(KillWindow::MidApply, index) {
            return Flow::Die; // entry is local-only: the follower never saw it
        }
        self.ship(&mut rt, index, &frame);
        if self.killed_at(KillWindow::MidShip, index) {
            return Flow::Die; // follower has the entry: the coordinator doesn't know
        }
        Self::maybe_compact(&self.cfg, &mut rt);
        let wal_len = rt.wal.len();
        let degraded = rt.degraded();
        self.rt = Some(rt);
        let reply = match exported {
            Some(record) => Reply::Ok(ReplyBody::Exported {
                record,
                wal_len,
                degraded,
            }),
            None => Reply::Ok(ReplyBody::Done {
                wal_len,
                deduped: false,
                degraded,
            }),
        };
        self.reply_to(from, seq, reply);
        Flow::Continue
    }

    /// Synchronously replicate WAL entry `index` (frame already encoded)
    /// to the follower: send, await an ack covering the entry, retry up to
    /// `rep_attempts` times, then declare the follower lost and serve
    /// degraded.
    fn ship(&mut self, rt: &mut ShardRuntime, index: u64, frame: &str) {
        let Some(f) = rt.follower else { return };
        if rt.follower_lost {
            return;
        }
        for _ in 0..self.cfg.rep_attempts {
            match self.transport.send(f, rt.follower_hint.as_deref(), frame) {
                Err(SendError::Closed) => break, // follower is gone for good
                Err(SendError::Io(_)) => continue,
                Ok(()) => {}
            }
            let deadline = Instant::now() + self.cfg.rep_timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break; // attempt timed out; resend
                }
                let Some(env) = self.mailbox.recv_timeout(deadline - now) else {
                    break;
                };
                // inside the ship window only the follower's ack matters;
                // anything else is a duplicate or a stale frame (the
                // coordinator is itself blocked on our reply)
                if env.from == f {
                    if let Ok(NodeMsg::RepAck { wal_len }) = wire::decode(&env.frame) {
                        if wal_len > index {
                            // everything below the acked length is durable
                            // on the follower: the compaction watermark
                            rt.acked = rt.acked.max(wal_len);
                            return;
                        }
                    }
                }
            }
        }
        rt.follower_lost = true;
    }

    /// Follower-side replication: absorb WAL entries in index order,
    /// acknowledging with the post-absorb log length. Non-followers ignore
    /// shipments outright — that role check is what fences a zombie
    /// leader's late frames after a promotion.
    fn handle_replicate(&mut self, from: NodeId, raw: &str, index: u64, op: &ShardOp) {
        match self.role {
            Role::Follower => {}
            Role::Idle if index == 0 => {} // birth: the Init entry
            _ => return,
        }
        if let ShardOp::Init {
            shard,
            snapshot,
            sources,
        } = op
        {
            if self.rt.is_some() {
                // duplicate Init: just re-ack
                let wal_len = self.rt.as_ref().map_or(0, |rt| rt.wal.len());
                let _ =
                    self.transport
                        .send(from, None, &wire::encode(&NodeMsg::RepAck { wal_len }));
                return;
            }
            let Ok(wal) = self.open_wal() else { return };
            let Ok((mut rt, _)) =
                ShardRuntime::from_init(*shard, snapshot, sources, wal, &self.cfg.update_cfg)
            else {
                return;
            };
            if rt.wal.append(raw.as_bytes()).is_err() {
                return;
            }
            self.role = Role::Follower;
            self.rt = Some(rt);
            let _ = self
                .transport
                .send(from, None, &wire::encode(&NodeMsg::RepAck { wal_len: 1 }));
            return;
        }
        let Some(rt) = self.rt.as_mut() else { return };
        let wal_len = rt.wal.len();
        if index < wal_len {
            // duplicate shipment: re-ack so the leader stops retrying
            let _ = self
                .transport
                .send(from, None, &wire::encode(&NodeMsg::RepAck { wal_len }));
            return;
        }
        if index > wal_len {
            return; // gap: an earlier entry is still in flight; leader will retry
        }
        if rt.wal.append(raw.as_bytes()).is_err() {
            return;
        }
        if rt.apply_entry(index, op).is_err() {
            return; // diverged replica is worse than a dead one: stop acking
        }
        Self::maybe_compact(&self.cfg, rt);
        let wal_len = rt.wal.len();
        let _ = self
            .transport
            .send(from, None, &wire::encode(&NodeMsg::RepAck { wal_len }));
    }

    /// Drop WAL entries that are durable everywhere they need to be. A
    /// leader compacts strictly behind the replication watermark (frozen
    /// at the last acked index once the follower is lost); a follower —
    /// or a leader running without a replica — compacts behind its own
    /// log length. A failed rewrite is never fatal: the old file stays
    /// intact and dedup-by-index absorbs the resurrected prefix on reopen.
    fn maybe_compact(cfg: &NodeConfig, rt: &mut ShardRuntime) {
        let Some(threshold) = cfg.wal_compact_bytes else {
            return;
        };
        if rt.wal.byte_len() < threshold {
            return;
        }
        let watermark = if rt.follower.is_none() && !rt.follower_lost {
            rt.wal.len()
        } else {
            rt.acked
        };
        if watermark > rt.wal.base() {
            let _ = rt.wal.truncate_prefix(watermark);
        }
    }

    fn open_wal(&self) -> Result<OpLog, String> {
        match &self.cfg.wal_path {
            None => Ok(OpLog::memory()),
            Some(path) => OpLog::open(path).map_err(|e| e.to_string()),
        }
    }
}

fn index_of(rt: &Option<ShardRuntime>) -> u64 {
    rt.as_ref().map_or(0, |rt| rt.wal.len())
}

fn protocol_err(msg: impl Into<String>) -> Reply {
    Reply::Err {
        kind: ErrKind::Protocol,
        msg: msg.into(),
        have: 0,
    }
}

fn state_err(msg: impl Into<String>) -> Reply {
    Reply::Err {
        kind: ErrKind::State,
        msg: msg.into(),
        have: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TestNet;
    use crate::wire::COORD;
    use ebc_core::state::Update;
    use std::time::Duration;

    fn rpc(net: &TestNet, mb: &Mailbox, to: NodeId, seq: u64, version: u64, req: Request) -> Reply {
        let mut t = net.transport(COORD);
        t.send(
            to,
            None,
            &wire::encode(&NodeMsg::Request { seq, version, req }),
        )
        .unwrap();
        loop {
            let env = mb.recv_timeout(Duration::from_secs(5)).expect("reply");
            if let Ok(NodeMsg::Reply { seq: s, reply }) = wire::decode(&env.frame) {
                if s == seq {
                    return reply;
                }
            }
        }
    }

    fn line_graph(n: u32) -> Graph {
        let mut g = Graph::with_vertices(n as usize);
        for v in 1..n {
            g.add_edge(v - 1, v).unwrap();
        }
        g
    }

    #[test]
    fn bootstrap_apply_status_shutdown() {
        let net = TestNet::new();
        let coord_mb = net.add_node(COORD);
        let nid = NodeId(1);
        let node_mb = net.add_node(nid);
        let node = ShardNode::new(nid, net.transport(nid), node_mb, NodeConfig::default());
        let h = std::thread::spawn(move || node.run());

        let g = line_graph(4);
        let r = rpc(
            &net,
            &coord_mb,
            nid,
            1,
            0,
            Request::Bootstrap {
                shard: 0,
                snapshot: g.snapshot_bytes(),
                sources: vec![0, 1, 2, 3],
                follower: None,
                follower_hint: None,
            },
        );
        assert!(
            matches!(
                r,
                Reply::Ok(ReplyBody::Bootstrapped {
                    wal_len: 1,
                    brandes: 4
                })
            ),
            "{r:?}"
        );

        let r = rpc(
            &net,
            &coord_mb,
            nid,
            2,
            0,
            Request::Apply {
                index: 1,
                update: Update::add(0, 3),
                adopt: None,
            },
        );
        assert!(
            matches!(
                r,
                Reply::Ok(ReplyBody::Done {
                    wal_len: 2,
                    deduped: false,
                    degraded: true, // no follower was ever assigned
                })
            ),
            "{r:?}"
        );

        // a retried seq replays the cached reply without re-applying
        let r = rpc(
            &net,
            &coord_mb,
            nid,
            2,
            0,
            Request::Apply {
                index: 1,
                update: Update::add(0, 3),
                adopt: None,
            },
        );
        assert!(
            matches!(
                r,
                Reply::Ok(ReplyBody::Done {
                    wal_len: 2,
                    deduped: false,
                    ..
                })
            ),
            "cached replay: {r:?}"
        );

        // a fresh seq re-sending an old index dedups by WAL position
        let r = rpc(
            &net,
            &coord_mb,
            nid,
            3,
            0,
            Request::Apply {
                index: 1,
                update: Update::add(0, 3),
                adopt: None,
            },
        );
        assert!(
            matches!(
                r,
                Reply::Ok(ReplyBody::Done {
                    wal_len: 2,
                    deduped: true,
                    ..
                })
            ),
            "index dedup: {r:?}"
        );

        // fencing: an older map version is refused
        let r = rpc(&net, &coord_mb, nid, 4, 3, Request::Partials);
        assert!(matches!(r, Reply::Ok(ReplyBody::Partials { .. })), "{r:?}");
        let r = rpc(
            &net,
            &coord_mb,
            nid,
            5,
            1,
            Request::Apply {
                index: 2,
                update: Update::add(1, 3),
                adopt: None,
            },
        );
        assert!(
            matches!(
                r,
                Reply::Err {
                    kind: ErrKind::Fenced,
                    have: 3,
                    ..
                }
            ),
            "{r:?}"
        );

        let r = rpc(&net, &coord_mb, nid, 6, 3, Request::Status);
        let Reply::Ok(ReplyBody::Status {
            role,
            version,
            shard,
            wal_len,
            sources,
            fenced,
        }) = r
        else {
            panic!("bad status")
        };
        assert_eq!(
            (role, version, shard, wal_len, sources, fenced),
            (Role::Leader, 3, Some(0), 2, 4, 1)
        );

        let r = rpc(&net, &coord_mb, nid, 7, 3, Request::Shutdown);
        assert!(matches!(r, Reply::Ok(ReplyBody::Done { .. })));
        h.join().unwrap();
    }

    #[test]
    fn follower_replays_and_promotes() {
        let net = TestNet::new();
        let coord_mb = net.add_node(COORD);
        let (lid, fid) = (NodeId(1), NodeId(2));
        let lmb = net.add_node(lid);
        let fmb = net.add_node(fid);
        let leader = ShardNode::new(lid, net.transport(lid), lmb, NodeConfig::default());
        let follower = ShardNode::new(fid, net.transport(fid), fmb, NodeConfig::default());
        let lh = std::thread::spawn(move || leader.run());
        let fh = std::thread::spawn(move || follower.run());

        let g = line_graph(5);
        let r = rpc(
            &net,
            &coord_mb,
            lid,
            1,
            0,
            Request::Bootstrap {
                shard: 0,
                snapshot: g.snapshot_bytes(),
                sources: vec![0, 1, 2, 3, 4],
                follower: Some(fid),
                follower_hint: None,
            },
        );
        assert!(
            matches!(r, Reply::Ok(ReplyBody::Bootstrapped { .. })),
            "{r:?}"
        );
        for (i, (u, v)) in [(0u32, 2u32), (1, 3), (0, 4)].iter().enumerate() {
            let r = rpc(
                &net,
                &coord_mb,
                lid,
                2 + i as u64,
                0,
                Request::Apply {
                    index: 1 + i as u64,
                    update: Update::add(*u, *v),
                    adopt: None,
                },
            );
            assert!(
                matches!(
                    r,
                    Reply::Ok(ReplyBody::Done {
                        degraded: false,
                        ..
                    })
                ),
                "replicated apply {i}: {r:?}"
            );
        }

        // leader's partials...
        let Reply::Ok(ReplyBody::Partials { scores: on_leader }) =
            rpc(&net, &coord_mb, lid, 10, 0, Request::Partials)
        else {
            panic!("leader partials")
        };
        // ...match the promoted follower's bitwise
        let r = rpc(&net, &coord_mb, fid, 1, 1, Request::Promote);
        assert!(
            matches!(r, Reply::Ok(ReplyBody::Done { wal_len: 4, .. })),
            "{r:?}"
        );
        let Reply::Ok(ReplyBody::Partials {
            scores: on_follower,
        }) = rpc(&net, &coord_mb, fid, 2, 1, Request::Partials)
        else {
            panic!("follower partials")
        };
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&on_leader.vbc), bits(&on_follower.vbc));
        assert_eq!(bits(&on_leader.ebc), bits(&on_follower.ebc));

        // the stale leader's ships are ignored by the promoted node: a
        // direct Replicate frame at its next index must not be absorbed
        let mut t = net.transport(lid);
        t.send(
            fid,
            None,
            &wire::encode(&NodeMsg::Replicate {
                index: 4,
                op: ShardOp::Apply {
                    update: Update::add(2, 4),
                    adopt: None,
                },
            }),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let Reply::Ok(ReplyBody::Status { wal_len, role, .. }) =
            rpc(&net, &coord_mb, fid, 3, 1, Request::Status)
        else {
            panic!("status")
        };
        assert_eq!((wal_len, role), (4, Role::Leader), "zombie ship fenced");

        for (id, seq) in [(lid, 11), (fid, 4)] {
            rpc(&net, &coord_mb, id, seq, 1, Request::Shutdown);
        }
        lh.join().unwrap();
        fh.join().unwrap();
    }

    /// With an aggressive `wal_compact_bytes` the log compacts behind the
    /// watermark on every op, yet indices stay globally stable: `wal_len`
    /// keeps counting, dedup-by-index still absorbs re-sent ops, and a
    /// promoted follower reports the full log length with bitwise-equal
    /// partials.
    #[test]
    fn wal_compaction_preserves_indices_and_replication() {
        let net = TestNet::new();
        let coord_mb = net.add_node(COORD);
        let (lid, fid) = (NodeId(1), NodeId(2));
        let lmb = net.add_node(lid);
        let fmb = net.add_node(fid);
        let dir = std::env::temp_dir().join(format!("sbc-node-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = |wal: PathBuf| NodeConfig {
            wal_path: Some(wal),
            wal_compact_bytes: Some(1),
            ..NodeConfig::default()
        };
        let leader = ShardNode::new(lid, net.transport(lid), lmb, cfg(dir.join("leader.wal")));
        let follower = ShardNode::new(fid, net.transport(fid), fmb, cfg(dir.join("follower.wal")));
        let lh = std::thread::spawn(move || leader.run());
        let fh = std::thread::spawn(move || follower.run());

        let g = line_graph(5);
        let r = rpc(
            &net,
            &coord_mb,
            lid,
            1,
            0,
            Request::Bootstrap {
                shard: 0,
                snapshot: g.snapshot_bytes(),
                sources: vec![0, 1, 2, 3, 4],
                follower: Some(fid),
                follower_hint: None,
            },
        );
        assert!(
            matches!(r, Reply::Ok(ReplyBody::Bootstrapped { wal_len: 1, .. })),
            "{r:?}"
        );
        for (i, (u, v)) in [(0u32, 2u32), (1, 3), (0, 4)].iter().enumerate() {
            let r = rpc(
                &net,
                &coord_mb,
                lid,
                2 + i as u64,
                0,
                Request::Apply {
                    index: 1 + i as u64,
                    update: Update::add(*u, *v),
                    adopt: None,
                },
            );
            let want = 2 + i as u64;
            assert!(
                matches!(
                    r,
                    Reply::Ok(ReplyBody::Done {
                        wal_len,
                        deduped: false,
                        degraded: false,
                    }) if wal_len == want
                ),
                "apply {i}: {r:?}"
            );
        }

        // an already-compacted index still dedups (index < global len)
        let r = rpc(
            &net,
            &coord_mb,
            lid,
            5,
            0,
            Request::Apply {
                index: 1,
                update: Update::add(0, 2),
                adopt: None,
            },
        );
        assert!(
            matches!(
                r,
                Reply::Ok(ReplyBody::Done {
                    wal_len: 4,
                    deduped: true,
                    ..
                })
            ),
            "compacted-index dedup: {r:?}"
        );

        let Reply::Ok(ReplyBody::Partials { scores: on_leader }) =
            rpc(&net, &coord_mb, lid, 6, 0, Request::Partials)
        else {
            panic!("leader partials")
        };
        let r = rpc(&net, &coord_mb, fid, 1, 1, Request::Promote);
        assert!(
            matches!(r, Reply::Ok(ReplyBody::Done { wal_len: 4, .. })),
            "{r:?}"
        );
        let Reply::Ok(ReplyBody::Partials {
            scores: on_follower,
        }) = rpc(&net, &coord_mb, fid, 2, 1, Request::Partials)
        else {
            panic!("follower partials")
        };
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&on_leader.vbc), bits(&on_follower.vbc));
        assert_eq!(bits(&on_leader.ebc), bits(&on_follower.ebc));

        for (id, seq) in [(lid, 7), (fid, 3)] {
            rpc(&net, &coord_mb, id, seq, 1, Request::Shutdown);
        }
        lh.join().unwrap();
        fh.join().unwrap();

        // the on-disk logs really compacted: global length survives, but
        // only the unacked suffix (leader) / nothing (follower keeps its
        // own tail) is retained
        let leader_log = OpLog::open(dir.join("leader.wal")).unwrap();
        assert_eq!(leader_log.len(), 4, "global length is stable");
        assert!(
            leader_log.base() >= 3,
            "leader compacted behind the watermark (base {})",
            leader_log.base()
        );
        let follower_log = OpLog::open(dir.join("follower.wal")).unwrap();
        assert_eq!(follower_log.len(), 4);
        assert_eq!(
            follower_log.base(),
            4,
            "follower compacts behind its own length"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
