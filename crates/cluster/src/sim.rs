//! In-process cluster simulation: real nodes, real frames, one thread per
//! node, all traffic through a fault-injectable [`TestNet`].
//!
//! This is the harness both the deterministic failover/partition test
//! suites and the `cluster_baseline` bench drive. Node ids follow a fixed
//! scheme so tests can target protocol windows precisely:
//!
//! * [`COORD`] (`n0`) — the coordinator;
//! * `n(1+k)` — the initial leader of shard `k` ([`SimCluster::leader_id`]);
//! * `n(1+p+k)` — shard `k`'s follower, when replication is on
//!   ([`SimCluster::follower_id`]).
//!
//! Crash injection is armed per node *before* launch ([`SimBuilder::kill`]),
//! link faults any time through the shared [`TestNet`] handle.

use crate::coord::{ClusterError, Coordinator, CoordinatorConfig, ShardSpec};
use crate::node::{KillSpec, NodeConfig, ShardNode};
use crate::transport::{TestNet, TestTransport};
use crate::wire::{NodeId, COORD};
use ebc_graph::Graph;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

/// Configures and launches a [`SimCluster`].
pub struct SimBuilder {
    p: usize,
    replicated: bool,
    node_cfg: NodeConfig,
    coord_cfg: CoordinatorConfig,
    kills: HashMap<NodeId, KillSpec>,
    persist: Option<PathBuf>,
}

impl SimBuilder {
    /// A cluster of `p` shards, replicated by default.
    pub fn new(p: usize) -> Self {
        SimBuilder {
            p,
            replicated: true,
            node_cfg: NodeConfig::default(),
            coord_cfg: CoordinatorConfig::default(),
            kills: HashMap::new(),
            persist: None,
        }
    }

    /// Arm coordinator durability at `dir` (see
    /// [`Coordinator::persist_to`]): the launched control plane can then
    /// be crashed with [`SimCluster::crash_coord`] and restarted with
    /// [`HeadlessSim::resume_coord`].
    pub fn persist_to(mut self, dir: impl AsRef<Path>) -> Self {
        self.persist = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Run without followers (no replication, failover impossible).
    pub fn unreplicated(mut self) -> Self {
        self.replicated = false;
        self
    }

    /// Override the node configuration.
    pub fn node_cfg(mut self, cfg: NodeConfig) -> Self {
        self.node_cfg = cfg;
        self
    }

    /// Override the coordinator configuration.
    pub fn coord_cfg(mut self, cfg: CoordinatorConfig) -> Self {
        self.coord_cfg = cfg;
        self
    }

    /// Arm deterministic crash injection on one node.
    pub fn kill(mut self, node: NodeId, spec: KillSpec) -> Self {
        self.kills.insert(node, spec);
        self
    }

    /// Spawn the node threads, bootstrap the cluster over `g`, and hand
    /// back the running harness.
    pub fn launch(self, g: &Graph) -> Result<SimCluster, ClusterError> {
        let net = TestNet::new();
        let coord_mb = net.add_node(COORD);
        let mut handles = Vec::new();
        let mut specs = Vec::new();
        let p = self.p;
        for k in 0..p {
            let leader = NodeId(1 + k as u32);
            let follower = self.replicated.then(|| NodeId(1 + (p + k) as u32));
            specs.push(ShardSpec::new(leader, follower));
            for id in std::iter::once(leader).chain(follower) {
                let mb = net.add_node(id);
                let mut node = ShardNode::new(id, net.transport(id), mb, self.node_cfg.clone());
                node.set_kill(self.kills.get(&id).copied());
                handles.push(std::thread::spawn(move || node.run()));
            }
        }
        let mut coord = Coordinator::new(net.transport(COORD), coord_mb, self.coord_cfg);
        if let Some(dir) = &self.persist {
            coord.persist_to(dir)?;
        }
        coord.bootstrap(g, specs)?;
        Ok(SimCluster {
            net,
            coord,
            handles,
            p,
        })
    }
}

/// A running in-process cluster.
pub struct SimCluster {
    /// The shared fabric — partition/hold/fault it at will.
    pub net: TestNet,
    /// The control plane.
    pub coord: Coordinator<TestTransport>,
    handles: Vec<JoinHandle<()>>,
    p: usize,
}

impl SimCluster {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.p
    }

    /// The id of shard `k`'s *initial* leader (failover may have moved
    /// leadership since; see [`Coordinator::groups`]).
    pub fn leader_id(&self, k: usize) -> NodeId {
        NodeId(1 + k as u32)
    }

    /// The id of shard `k`'s initial follower.
    pub fn follower_id(&self, k: usize) -> NodeId {
        NodeId(1 + (self.p + k) as u32)
    }

    /// Drain the cluster and join every node thread. Heals all faults
    /// first so shutdown frames cannot be dropped or parked.
    pub fn shutdown(self) {
        self.net.heal_all();
        self.coord.shutdown();
        for h in self.handles {
            let _ = h.join();
        }
    }

    /// Kill the control plane only: the coordinator is dropped (its
    /// mailbox closes, as a crash would) while every node thread keeps
    /// serving. Restart it from its durable directory with
    /// [`HeadlessSim::resume_coord`].
    pub fn crash_coord(self) -> HeadlessSim {
        drop(self.coord);
        HeadlessSim {
            net: self.net,
            handles: self.handles,
            p: self.p,
        }
    }
}

/// A simulated cluster whose coordinator has crashed — the node fleet is
/// still running and owns all the shard state.
pub struct HeadlessSim {
    /// The shared fabric.
    pub net: TestNet,
    handles: Vec<JoinHandle<()>>,
    p: usize,
}

impl HeadlessSim {
    /// Restart the control plane from the durable state at `dir` (see
    /// [`Coordinator::resume`]) and hand back the running harness.
    pub fn resume_coord(
        self,
        cfg: CoordinatorConfig,
        dir: impl AsRef<Path>,
    ) -> Result<SimCluster, ClusterError> {
        let mb = self.net.add_node(COORD);
        let coord = Coordinator::resume(self.net.transport(COORD), mb, cfg, dir)?;
        Ok(SimCluster {
            net: self.net,
            coord,
            handles: self.handles,
            p: self.p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::KillWindow;
    use ebc_core::state::Update;

    fn ring(n: u32) -> Graph {
        let mut g = Graph::with_vertices(n as usize);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n).unwrap();
        }
        g
    }

    fn bits(s: &ebc_core::scores::Scores) -> (Vec<u64>, Vec<u64>) {
        (
            s.vbc.iter().map(|x| x.to_bits()).collect(),
            s.ebc.iter().map(|x| x.to_bits()).collect(),
        )
    }

    #[test]
    fn partition_count_is_bitwise_invisible() {
        let g = ring(12);
        let stream = [
            Update::add(0, 5),
            Update::add(3, 9),
            Update::remove(0, 1),
            Update::add(12, 4), // grows the graph: some shard adopts 12
            Update::add(12, 8),
        ];
        let mut reference = None;
        for p in [1usize, 3] {
            let mut sim = SimBuilder::new(p).launch(&g).unwrap();
            for &u in &stream {
                sim.coord.apply(u).unwrap();
            }
            let exact = sim.coord.reduce_exact().unwrap();
            let fast = sim.coord.reduce().unwrap();
            // fast reduce agrees with the exact oracle to fp tolerance
            for (a, b) in exact.vbc.iter().zip(&fast.vbc) {
                assert!((a - b).abs() < 1e-9, "fast vs exact: {a} vs {b}");
            }
            match &reference {
                None => reference = Some(bits(&exact)),
                Some(r) => assert_eq!(r, &bits(&exact), "p={p} changed the bits"),
            }
            sim.shutdown();
        }
    }

    #[test]
    fn leader_kill_fails_over_and_stays_bitwise() {
        let g = ring(10);
        let stream: Vec<Update> = (2..7).map(|i| Update::add(0, i)).collect();

        // oracle: the same stream with no failures
        let mut calm = SimBuilder::new(2).launch(&g).unwrap();
        for &u in &stream {
            calm.coord.apply(u).unwrap();
        }
        let want = bits(&calm.coord.reduce_exact().unwrap());
        calm.shutdown();

        // shard 1's leader dies mid-apply on WAL entry 3
        let mut sim = SimBuilder::new(2)
            .kill(
                NodeId(2),
                KillSpec {
                    window: KillWindow::MidApply,
                    at_index: 3,
                },
            )
            .launch(&g)
            .unwrap();
        for &u in &stream {
            sim.coord.apply(u).unwrap();
        }
        assert_eq!(sim.coord.failovers(), 1);
        let got = bits(&sim.coord.reduce_exact().unwrap());
        assert_eq!(want, got, "failover changed the bits");
        sim.shutdown();
    }
}
