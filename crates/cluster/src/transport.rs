//! Frame delivery between cluster processes, behind the [`Transport`] trait.
//!
//! Two embodiments:
//!
//! * [`TestNet`] — an in-process fabric for the fault-injection harness:
//!   every "node" is a thread with a [`Mailbox`], frames are real serialized
//!   wire lines, and each directed link can be partitioned, held, or
//!   subjected to seed-driven drop/duplicate/delay injection whose fate is
//!   a pure function of `(seed, link, send index)` — rerunning a failing
//!   seed replays the exact same fault schedule.
//! * [`TcpTransport`] — real sockets for `sbc node` / `sbc coord`, using
//!   the serve crate's [`ebc_serve::proto::LineReader`] for
//!   framing and a [`NodeMsg::Hello`] handshake to name the dialing peer.
//!
//! Delivery is at-most-once per send with no ordering guarantee across
//! faults; the node protocol's seq/index dedup layers exactly-once
//! semantics on top (DESIGN.md §12).

use crate::wire::{self, NodeId, NodeMsg};
use ebc_serve::proto::{Frame, LineReader};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One delivered frame: who sent it, and the raw line.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The sending node.
    pub from: NodeId,
    /// The serialized [`NodeMsg`] line (no trailing newline).
    pub frame: String,
}

/// A node's single inbound queue; all peers' frames multiplex into it.
pub struct Mailbox {
    rx: Receiver<Envelope>,
}

impl Mailbox {
    /// Wait up to `timeout` for the next frame; `None` on timeout or when
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

/// A mailbox plus the sender that feeds it (for transports that pump frames
/// from their own reader threads).
pub fn mailbox() -> (Sender<Envelope>, Mailbox) {
    let (tx, rx) = mpsc::channel();
    (tx, Mailbox { rx })
}

/// Why a send failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The peer is gone (mailbox dropped / connection closed) and no dial
    /// hint can reach it.
    Closed,
    /// Transport-level I/O failure (stream embodiment).
    Io(String),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Closed => write!(f, "peer closed"),
            SendError::Io(m) => write!(f, "transport i/o: {m}"),
        }
    }
}

impl std::error::Error for SendError {}

/// A node's outbound half: sends one serialized frame to a peer.
///
/// `hint` is a transport address (e.g. `host:port`) used to dial peers not
/// yet connected — stream transports use it, the in-process fabric ignores
/// it. Implementations own whatever connection caching they need.
pub trait Transport: Send {
    /// Deliver `frame` to `to`. An `Err` means the peer is unreachable
    /// *now* (dead or unresolvable); a dropped/held frame on a faulty link
    /// is still `Ok` — loss is indistinguishable from delay on a real
    /// network, and detecting it is the protocol's job, not the fabric's.
    fn send(&mut self, to: NodeId, hint: Option<&str>, frame: &str) -> Result<(), SendError>;
}

// ---- in-process fabric -----------------------------------------------------

/// Per-directed-link fault mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum LinkMode {
    /// Frames flow (subject to seeded faults).
    #[default]
    Open,
    /// Frames vanish silently.
    Partitioned,
    /// Frames queue until [`TestNet::release`].
    Held,
}

/// Seed-driven fault rates, in permille of sends, applied per directed
/// link. Fate is a pure function of `(seed, from, to, send index)`:
/// the same seed replays the same schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Seed printed alongside failures so runs can be replayed.
    pub seed: u64,
    /// ‰ of sends silently dropped.
    pub drop_pm: u32,
    /// ‰ of sends delivered twice back-to-back.
    pub dup_pm: u32,
    /// ‰ of sends delayed: the frame is parked and delivered after the
    /// link's *next* delivered frame (reordering). A parked frame with no
    /// successor degrades to a drop — acceptable, since the protocol
    /// already tolerates loss.
    pub delay_pm: u32,
}

#[derive(Default)]
struct LinkState {
    mode: LinkMode,
    held: VecDeque<String>,
    sent: u64,
}

struct NetState {
    inboxes: HashMap<NodeId, Sender<Envelope>>,
    links: HashMap<(NodeId, NodeId), LinkState>,
    faults: Option<FaultSpec>,
}

/// splitmix64 finalizer over the link coordinates — deterministic fate.
fn fate(seed: u64, from: NodeId, to: NodeId, index: u64) -> u64 {
    let mut x = seed
        ^ (u64::from(from.0) << 40)
        ^ (u64::from(to.0) << 20)
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The in-process test fabric. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct TestNet {
    state: Arc<Mutex<NetState>>,
}

impl Default for TestNet {
    fn default() -> Self {
        Self::new()
    }
}

impl TestNet {
    /// A fabric with no nodes and no faults.
    pub fn new() -> Self {
        TestNet {
            state: Arc::new(Mutex::new(NetState {
                inboxes: HashMap::new(),
                links: HashMap::new(),
                faults: None,
            })),
        }
    }

    /// Register a node, returning its mailbox. Dropping the mailbox (a
    /// node thread exiting) makes subsequent sends to it fail — that is
    /// how peers observe a crash.
    pub fn add_node(&self, id: NodeId) -> Mailbox {
        let (tx, mb) = mailbox();
        self.state.lock().unwrap().inboxes.insert(id, tx);
        mb
    }

    /// A [`Transport`] handle sending *as* `from`.
    pub fn transport(&self, from: NodeId) -> TestTransport {
        TestTransport {
            net: self.clone(),
            from,
        }
    }

    /// Install (or clear) seeded fault injection on every open link.
    pub fn set_faults(&self, faults: Option<FaultSpec>) {
        self.state.lock().unwrap().faults = faults;
    }

    /// Sever both directions between `a` and `b`: frames vanish silently
    /// (the partitioned sender still sees `Ok`).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut st = self.state.lock().unwrap();
        st.links.entry((a, b)).or_default().mode = LinkMode::Partitioned;
        st.links.entry((b, a)).or_default().mode = LinkMode::Partitioned;
    }

    /// Reopen both directions between `a` and `b`. Frames dropped while
    /// partitioned stay dropped.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut st = self.state.lock().unwrap();
        st.links.entry((a, b)).or_default().mode = LinkMode::Open;
        st.links.entry((b, a)).or_default().mode = LinkMode::Open;
    }

    /// Park every subsequent `from → to` frame until [`TestNet::release`]
    /// — the deterministic building block for "the frame arrives *later*,
    /// after the world has moved on" scenarios (stale-leader fencing).
    pub fn hold(&self, from: NodeId, to: NodeId) {
        let mut st = self.state.lock().unwrap();
        st.links.entry((from, to)).or_default().mode = LinkMode::Held;
    }

    /// Reopen `from → to` and deliver everything parked on it, in order.
    pub fn release(&self, from: NodeId, to: NodeId) {
        let mut st = self.state.lock().unwrap();
        let held: Vec<String> = {
            let link = st.links.entry((from, to)).or_default();
            link.mode = LinkMode::Open;
            link.held.drain(..).collect()
        };
        for frame in held {
            let _ = st.deliver(from, to, frame);
        }
    }

    /// Drop all faults and partitions and flush every held frame — used
    /// before shutdown so drains cannot wedge.
    pub fn heal_all(&self) {
        let mut st = self.state.lock().unwrap();
        st.faults = None;
        let keys: Vec<(NodeId, NodeId)> = st.links.keys().copied().collect();
        for key in keys {
            let held: Vec<String> = {
                let link = st.links.get_mut(&key).unwrap();
                link.mode = LinkMode::Open;
                link.held.drain(..).collect()
            };
            for frame in held {
                let _ = st.deliver(key.0, key.1, frame);
            }
        }
    }
}

impl NetState {
    fn deliver(&mut self, from: NodeId, to: NodeId, frame: String) -> Result<(), SendError> {
        let tx = self.inboxes.get(&to).ok_or(SendError::Closed)?;
        tx.send(Envelope { from, frame })
            .map_err(|_| SendError::Closed)
    }
}

/// [`Transport`] over a [`TestNet`], bound to a sending node.
pub struct TestTransport {
    net: TestNet,
    from: NodeId,
}

impl Transport for TestTransport {
    fn send(&mut self, to: NodeId, _hint: Option<&str>, frame: &str) -> Result<(), SendError> {
        let mut st = self.net.state.lock().unwrap();
        if !st.inboxes.contains_key(&to) {
            return Err(SendError::Closed);
        }
        let faults = st.faults;
        let link = st.links.entry((self.from, to)).or_default();
        let index = link.sent;
        link.sent += 1;
        match link.mode {
            LinkMode::Partitioned => return Ok(()), // silent loss
            LinkMode::Held => {
                link.held.push_back(frame.to_string());
                return Ok(());
            }
            LinkMode::Open => {}
        }
        let mut copies = 1u32;
        let mut parked = Vec::new();
        if let Some(f) = faults {
            let roll = fate(f.seed, self.from, to, index) % 1000;
            if roll < u64::from(f.drop_pm) {
                copies = 0;
            } else if roll < u64::from(f.drop_pm + f.dup_pm) {
                copies = 2;
            } else if roll < u64::from(f.drop_pm + f.dup_pm + f.delay_pm) {
                link.held.push_back(frame.to_string());
                copies = 0;
            }
        }
        if copies > 0 {
            // a delivered frame flushes anything delay-parked behind it,
            // *after* itself — that is the reordering
            parked.extend(link.held.drain(..));
        }
        for _ in 0..copies {
            st.deliver(self.from, to, frame.to_string())?;
        }
        for p in parked {
            let _ = st.deliver(self.from, to, p);
        }
        Ok(())
    }
}

// ---- tcp fabric ------------------------------------------------------------

/// [`Transport`] over real sockets, shared by `sbc node` and `sbc coord`.
///
/// Cheap to clone (all clones share the peer registry). Incoming
/// connections are identified by their [`NodeMsg::Hello`] first frame;
/// outbound dials send one. Each connection gets a reader thread pumping
/// complete lines into the owner's mailbox; a closed or garbled stream
/// unregisters the peer, so the next `send` reports [`SendError::Closed`]
/// (or re-dials when a hint is supplied).
#[derive(Clone)]
pub struct TcpTransport {
    me: NodeId,
    inbox: Sender<Envelope>,
    peers: Arc<Mutex<HashMap<NodeId, TcpStream>>>,
}

impl TcpTransport {
    /// A transport identifying as `me`, delivering inbound frames to
    /// `inbox` (pair it with [`mailbox`]).
    pub fn new(me: NodeId, inbox: Sender<Envelope>) -> Self {
        TcpTransport {
            me,
            inbox,
            peers: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Accept connections on `listener` forever (spawns a daemon thread).
    pub fn listen(&self, listener: TcpListener) {
        let this = self.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let this = this.clone();
                std::thread::spawn(move || this.absorb(stream, None));
            }
        });
    }

    /// Read frames from `stream` until EOF, registering the peer from its
    /// hello (or `known` when the dialer already knows who it called).
    fn absorb(&self, stream: TcpStream, known: Option<NodeId>) {
        let mut reader = match stream.try_clone() {
            Ok(s) => LineReader::new(s),
            Err(_) => return,
        };
        let peer = match known {
            Some(id) => id,
            None => {
                // inbound: first frame must be a hello naming the dialer
                loop {
                    match reader.read_frame() {
                        Ok(Some(Frame::Line(line))) => match wire::decode(&line) {
                            Ok(NodeMsg::Hello { from, .. }) => break from,
                            _ => return,
                        },
                        Ok(None) => continue,
                        _ => return,
                    }
                }
            }
        };
        self.peers.lock().unwrap().insert(peer, stream);
        loop {
            match reader.read_frame() {
                Ok(Some(Frame::Line(line))) => {
                    if self
                        .inbox
                        .send(Envelope {
                            from: peer,
                            frame: line,
                        })
                        .is_err()
                    {
                        break; // owner gone
                    }
                }
                Ok(Some(Frame::Oversized(_))) | Ok(Some(Frame::NotUtf8)) | Ok(None) => continue,
                Ok(Some(Frame::Eof)) | Err(_) => break,
            }
        }
        let mut peers = self.peers.lock().unwrap();
        // only unregister if the registry still points at *this* stream's peer
        peers.remove(&peer);
    }

    fn dial(&self, to: NodeId, addr: &str) -> Result<(), SendError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| SendError::Io(e.to_string()))?;
        let hello = wire::encode(&NodeMsg::Hello {
            from: self.me,
            assign: None,
        });
        stream
            .write_all(format!("{hello}\n").as_bytes())
            .map_err(|e| SendError::Io(e.to_string()))?;
        let this = self.clone();
        let reader_stream = stream
            .try_clone()
            .map_err(|e| SendError::Io(e.to_string()))?;
        std::thread::spawn(move || this.absorb(reader_stream, Some(to)));
        self.peers.lock().unwrap().insert(to, stream);
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, hint: Option<&str>, frame: &str) -> Result<(), SendError> {
        let connected = self.peers.lock().unwrap().contains_key(&to);
        if !connected {
            let addr = hint.ok_or(SendError::Closed)?;
            self.dial(to, addr)?;
        }
        let stream = {
            let peers = self.peers.lock().unwrap();
            match peers.get(&to) {
                Some(s) => match s.try_clone() {
                    Ok(c) => c,
                    Err(e) => return Err(SendError::Io(e.to_string())),
                },
                None => return Err(SendError::Closed),
            }
        };
        let mut stream = stream;
        if stream.write_all(format!("{frame}\n").as_bytes()).is_err() {
            self.peers.lock().unwrap().remove(&to);
            return Err(SendError::Closed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);

    #[test]
    fn open_link_delivers_in_order() {
        let net = TestNet::new();
        let mb = net.add_node(B);
        let mut t = net.transport(A);
        t.send(B, None, "one").unwrap();
        t.send(B, None, "two").unwrap();
        let got: Vec<String> = (0..2)
            .map(|_| mb.recv_timeout(Duration::from_secs(1)).unwrap().frame)
            .collect();
        assert_eq!(got, vec!["one", "two"]);
        assert!(mb.try_recv().is_none());
    }

    #[test]
    fn dead_mailbox_fails_fast() {
        let net = TestNet::new();
        let mb = net.add_node(B);
        drop(mb);
        let mut t = net.transport(A);
        assert_eq!(t.send(B, None, "x"), Err(SendError::Closed));
        assert_eq!(
            t.send(NodeId(9), None, "x"),
            Err(SendError::Closed),
            "unknown node is closed too"
        );
    }

    #[test]
    fn partition_is_silent_and_heals() {
        let net = TestNet::new();
        let mb = net.add_node(B);
        let mut t = net.transport(A);
        net.partition(A, B);
        t.send(B, None, "lost").unwrap(); // silent loss, not an error
        assert!(mb.recv_timeout(Duration::from_millis(20)).is_none());
        net.heal(A, B);
        t.send(B, None, "through").unwrap();
        assert_eq!(
            mb.recv_timeout(Duration::from_secs(1)).unwrap().frame,
            "through"
        );
    }

    #[test]
    fn hold_parks_and_release_replays_in_order() {
        let net = TestNet::new();
        let mb = net.add_node(B);
        let mut t = net.transport(A);
        net.hold(A, B);
        t.send(B, None, "first").unwrap();
        t.send(B, None, "second").unwrap();
        assert!(mb.recv_timeout(Duration::from_millis(20)).is_none());
        net.release(A, B);
        let got: Vec<String> = (0..2)
            .map(|_| mb.recv_timeout(Duration::from_secs(1)).unwrap().frame)
            .collect();
        assert_eq!(got, vec!["first", "second"]);
    }

    #[test]
    fn seeded_faults_replay_identically() {
        let run = |seed: u64| -> Vec<String> {
            let net = TestNet::new();
            let mb = net.add_node(B);
            net.set_faults(Some(FaultSpec {
                seed,
                drop_pm: 250,
                dup_pm: 250,
                delay_pm: 250,
            }));
            let mut t = net.transport(A);
            for i in 0..64 {
                t.send(B, None, &format!("m{i}")).unwrap();
            }
            net.heal_all(); // flush trailing delayed frames
            let mut got = Vec::new();
            while let Some(env) = mb.try_recv() {
                got.push(env.frame);
            }
            got
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed, same schedule");
        assert_ne!(first, run(43), "different seed differs");
        // with 25% drop, some frames are missing and some duplicated
        assert!(first.len() < 64 + 16);
        assert!(first.len() > 16);
    }

    #[test]
    fn tcp_round_trip_with_hello() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();

        // "server" side: node B listening
        let (tx_b, mb_b) = mailbox();
        let server = TcpTransport::new(B, tx_b);
        server.listen(listener);

        // "client" side: node A dials with a hint
        let (tx_a, mb_a) = mailbox();
        let mut client = TcpTransport::new(A, tx_a);
        client
            .send(
                B,
                Some(&addr),
                &wire::encode(&NodeMsg::RepAck { wal_len: 7 }),
            )
            .unwrap();

        let env = mb_b
            .recv_timeout(Duration::from_secs(5))
            .expect("b hears a");
        assert_eq!(env.from, A);
        assert!(matches!(
            wire::decode(&env.frame),
            Ok(NodeMsg::RepAck { wal_len: 7 })
        ));

        // B replies over the registered stream — no hint needed
        let mut server_t = server.clone();
        server_t
            .send(A, None, &wire::encode(&NodeMsg::RepAck { wal_len: 8 }))
            .unwrap();
        let env = mb_a
            .recv_timeout(Duration::from_secs(5))
            .expect("a hears b");
        assert_eq!(env.from, B);
        assert!(matches!(
            wire::decode(&env.frame),
            Ok(NodeMsg::RepAck { wal_len: 8 })
        ));
    }
}
