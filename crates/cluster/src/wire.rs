//! The shard-node wire protocol: typed messages ⇄ newline-delimited JSON.
//!
//! Frames ride the exact stack PR 7 built for the serve frontend — one JSON
//! object per line, framed by [`ebc_serve::proto::LineReader`] on stream
//! transports, values rendered by [`ebc_serve::json`]'s canonical
//! shortest-round-trip serializer — so every guarantee the serve codec pins
//! (lossless finite `f64`, fragmentation tolerance, typed rejection of
//! garbage) carries over to node-to-node traffic unchanged.
//!
//! Exactness rules:
//!
//! * `f64` payloads (δ arrays, scores) use JSON numbers: the serializer is
//!   shortest-round-trip, so finite values survive bitwise. Non-finite
//!   scores never occur (betweenness terms are finite by construction).
//! * `u64` payloads (σ counts, wal indexes, seq/version counters) are JSON
//!   numbers only up to `2^53`, the last exactly-representable integer;
//!   larger values are encoded as decimal **strings** and either form is
//!   accepted on decode ([`u64_value`]/[`u64_of`]). σ on dense graphs
//!   overflows `2^53` easily, and a rounded σ would silently break the
//!   bitwise-replication contract.
//! * structural graph snapshots travel as hex-encoded
//!   [`Graph::snapshot_bytes`](ebc_graph::Graph::snapshot_bytes) — the
//!   checksummed byte-exact format restarts already rely on, so a
//!   bootstrapped replica walks neighbours in the same order as the
//!   coordinator's replica (adjacency order is part of the bitwise
//!   contract).
//!
//! Decoding never panics: every malformed frame — garbage bytes, valid JSON
//! of the wrong shape, out-of-range ids, truncated hex — maps to a typed
//! [`WireError`].

use ebc_core::bd::ExportedRecord;
use ebc_core::exact::TreeSegment;
use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_graph::{EdgeOp, VertexId};
use ebc_serve::json::{self, obj, Value};
use std::fmt;

/// Identifies one process in the cluster: the coordinator is always
/// [`COORD`], shard nodes get ids `≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The coordinator's well-known node id.
pub const COORD: NodeId = NodeId(0);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node's current role in its shard's replication group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// No shard state (fresh, or demoted/fenced).
    Idle,
    /// Serves its shard: applies ops and ships the WAL to its follower.
    Leader,
    /// Replays the leader's WAL stream; promotable.
    Follower,
}

impl Role {
    fn tag(self) -> &'static str {
        match self {
            Role::Idle => "idle",
            Role::Leader => "leader",
            Role::Follower => "follower",
        }
    }

    fn from_tag(s: &str) -> Option<Role> {
        Some(match s {
            "idle" => Role::Idle,
            "leader" => Role::Leader,
            "follower" => Role::Follower,
            _ => return None,
        })
    }
}

/// One replicated state transition of a shard — the unit of the per-shard
/// WAL. Entry `i` of a follower's log is byte-identical to entry `i` of its
/// leader's, and replaying entries in index order reproduces the leader's
/// state bitwise.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOp {
    /// Entry 0: the shard's birth — structural snapshot plus the owned
    /// source set to Brandes-bootstrap.
    Init {
        /// Shard index in the coordinator's map.
        shard: u32,
        /// `Graph::snapshot_bytes` of the bootstrap graph.
        snapshot: Vec<u8>,
        /// Sources this shard owns at bootstrap.
        sources: Vec<VertexId>,
    },
    /// One edge update (the map task), with an optional adoption of a
    /// newly arrived source by this shard.
    Apply {
        /// The edge update.
        update: Update,
        /// New source this shard adopts, if the map assigned it here.
        adopt: Option<VertexId>,
    },
    /// Donor half of a handoff: stop owning `source`.
    Export {
        /// The source leaving this shard.
        source: VertexId,
    },
    /// Recipient half of a handoff: install a record exported elsewhere.
    Import {
        /// The full `BD[·]` record being installed.
        record: ExportedRecord,
    },
}

/// Coordinator → node commands (always wrapped in [`NodeMsg::Request`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Become leader of `shard`: build the graph replica, write WAL entry 0,
    /// replicate it to `follower` (if any), Brandes-bootstrap the sources.
    Bootstrap {
        /// Shard index.
        shard: u32,
        /// `Graph::snapshot_bytes` of the bootstrap graph.
        snapshot: Vec<u8>,
        /// Owned source set.
        sources: Vec<VertexId>,
        /// Follower to ship the WAL to, with an optional dial hint for
        /// stream transports.
        follower: Option<NodeId>,
        /// Transport address of the follower (TCP embodiment only).
        follower_hint: Option<String>,
    },
    /// Apply one update as WAL entry `index` (exactly-once by index:
    /// `index < wal_len` answers the cached outcome without re-applying).
    Apply {
        /// Expected WAL position of this op.
        index: u64,
        /// The edge update.
        update: Update,
        /// Source this shard adopts, if any.
        adopt: Option<VertexId>,
    },
    /// Read the shard's incrementally maintained partial scores (the fast
    /// reduce term).
    Partials,
    /// Derive the canonical exact-reduce segments of the owned sources.
    Segments,
    /// Donor half of a handoff.
    Export {
        /// Source to export.
        source: VertexId,
    },
    /// Recipient half of a handoff.
    Import {
        /// Record to install.
        record: ExportedRecord,
    },
    /// Follower → leader promotion (failover). The carried map version is
    /// the new fencing token.
    Promote,
    /// Fence and reset: drop shard state, become idle at the carried
    /// version. Sent to a stale leader after a partition heals.
    Demote,
    /// Introspection (never fenced, never bumps the version).
    Status,
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Requests that bypass fencing and do not raise the node's version.
    pub fn is_unfenced(&self) -> bool {
        matches!(self, Request::Status | Request::Shutdown)
    }
}

/// Why a node refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// The request's map version is older than one this node has seen —
    /// the sender is a stale coordinator view, or the node was fenced.
    Fenced,
    /// The request is invalid for the node's current role/state (wrong
    /// role, WAL index gap, no shard state).
    Protocol,
    /// The shard compute state failed (store/graph error); the node is no
    /// longer trustworthy.
    State,
}

impl ErrKind {
    fn tag(self) -> &'static str {
        match self {
            ErrKind::Fenced => "fenced",
            ErrKind::Protocol => "protocol",
            ErrKind::State => "state",
        }
    }

    fn from_tag(s: &str) -> Option<ErrKind> {
        Some(match s {
            "fenced" => ErrKind::Fenced,
            "protocol" => ErrKind::Protocol,
            "state" => ErrKind::State,
            _ => return None,
        })
    }
}

/// Successful reply payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// Generic acknowledgement.
    Done {
        /// Node's WAL length after the op.
        wal_len: u64,
        /// True when the op was already in the WAL (duplicate delivery was
        /// absorbed without re-applying).
        deduped: bool,
        /// True when the node serves without a live follower (replication
        /// gave up mid-op, or none was ever assigned).
        degraded: bool,
    },
    /// Bootstrap acknowledgement.
    Bootstrapped {
        /// WAL length (1: the `Init` entry).
        wal_len: u64,
        /// Brandes iterations run locally (the follower runs its own).
        brandes: u64,
    },
    /// The shard's partial scores.
    Partials {
        /// Accumulated partial scores.
        scores: Scores,
    },
    /// Canonical exact-reduce segments.
    Segments {
        /// The shard's tile of the fixed reduction tree.
        segments: Vec<TreeSegment>,
    },
    /// The exported record (donor handoff half).
    Exported {
        /// The record that left the store.
        record: ExportedRecord,
        /// WAL length after the export entry.
        wal_len: u64,
        /// As in [`ReplyBody::Done`].
        degraded: bool,
    },
    /// Introspection snapshot.
    Status {
        /// Current role.
        role: Role,
        /// Highest map version seen.
        version: u64,
        /// Shard index, when shard state exists.
        shard: Option<u32>,
        /// WAL length.
        wal_len: u64,
        /// Owned sources.
        sources: u64,
        /// Requests rejected by the fencing rule since birth.
        fenced: u64,
    },
}

/// A node's answer to a [`NodeMsg::Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success.
    Ok(ReplyBody),
    /// Typed refusal.
    Err {
        /// Category.
        kind: ErrKind,
        /// Human-readable detail.
        msg: String,
        /// For [`ErrKind::Fenced`]: the version the node holds.
        have: u64,
    },
}

/// Every frame of the node protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMsg {
    /// Coordinator → node command. `version` is the fencing token: nodes
    /// reject versioned requests older than the highest they have seen.
    Request {
        /// Per-link monotone sequence number (duplicate delivery is
        /// answered from the reply cache).
        seq: u64,
        /// The coordinator's current map version.
        version: u64,
        /// The command.
        req: Request,
    },
    /// Node → coordinator answer, correlated by `seq`.
    Reply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Outcome.
        reply: Reply,
    },
    /// Leader → follower WAL shipment: entry `index` of the per-shard log.
    Replicate {
        /// WAL position of this op.
        index: u64,
        /// The replicated op.
        op: ShardOp,
    },
    /// Follower → leader shipment acknowledgement: the follower's WAL
    /// length after absorbing (or deduplicating) the entry.
    RepAck {
        /// Follower's WAL length.
        wal_len: u64,
    },
    /// Stream-transport handshake: names the dialing peer, optionally
    /// assigning the accepting node its cluster id (coordinator → node).
    Hello {
        /// The dialing peer's node id.
        from: NodeId,
        /// Id the accepting node should adopt, if the dialer is the
        /// coordinator introducing itself.
        assign: Option<NodeId>,
    },
}

/// Typed decode failure — the codec never panics on foreign bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Not valid JSON at all.
    Json(String),
    /// Valid JSON of the wrong shape (missing/mistyped field, unknown tag,
    /// out-of-range integer, bad hex).
    Schema(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(m) => write!(f, "bad frame json: {m}"),
            WireError::Schema(m) => write!(f, "bad frame schema: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

fn schema(msg: impl Into<String>) -> WireError {
    WireError::Schema(msg.into())
}

/// Largest integer JSON numbers carry exactly.
const MAX_SAFE: u64 = 1 << 53;

/// Encode a `u64` exactly: a number when representable, a decimal string
/// beyond `2^53`.
pub fn u64_value(x: u64) -> Value {
    if x <= MAX_SAFE {
        Value::from(x)
    } else {
        Value::Str(x.to_string())
    }
}

/// Decode a `u64` from either encoding of [`u64_value`].
pub fn u64_of(v: &Value) -> Option<u64> {
    match v {
        Value::Str(s) => s.parse().ok(),
        other => other.as_u64(),
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>, WireError> {
    if !s.len().is_multiple_of(2) {
        return Err(schema("odd-length hex payload"));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| schema("non-hex digit"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| schema("non-hex digit"))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

// ---- field accessors -------------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| schema(format!("missing field {key:?}")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, WireError> {
    u64_of(field(v, key)?).ok_or_else(|| schema(format!("field {key:?} is not a u64")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, WireError> {
    let x = u64_field(v, key)?;
    u32::try_from(x).map_err(|_| schema(format!("field {key:?} exceeds u32")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, WireError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| schema(format!("field {key:?} is not a string")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, WireError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| schema(format!("field {key:?} is not a bool")))
}

fn opt_u32_field(v: &Value, key: &str) -> Result<Option<u32>, WireError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => u64_of(x)
            .and_then(|x| u32::try_from(x).ok())
            .map(Some)
            .ok_or_else(|| schema(format!("field {key:?} is not a u32"))),
    }
}

fn f64_arr(v: &Value, key: &str) -> Result<Vec<f64>, WireError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| schema(format!("field {key:?} is not an array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| schema(format!("{key:?} holds a non-number")))
        })
        .collect()
}

fn u64_arr(v: &Value, key: &str) -> Result<Vec<u64>, WireError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| schema(format!("field {key:?} is not an array")))?
        .iter()
        .map(|x| u64_of(x).ok_or_else(|| schema(format!("{key:?} holds a non-u64"))))
        .collect()
}

fn u32_arr(v: &Value, key: &str) -> Result<Vec<u32>, WireError> {
    u64_arr(v, key)?
        .into_iter()
        .map(|x| u32::try_from(x).map_err(|_| schema(format!("{key:?} holds a value beyond u32"))))
        .collect()
}

fn f64_values(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::from(x)).collect())
}

fn u64_values(xs: &[u64]) -> Value {
    Value::Arr(xs.iter().map(|&x| u64_value(x)).collect())
}

fn u32_values(xs: &[u32]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::from(u64::from(x))).collect())
}

// ---- payload codecs --------------------------------------------------------

fn encode_update(u: &Update) -> Value {
    obj([
        (
            "op",
            Value::from(match u.op {
                EdgeOp::Add => "add",
                EdgeOp::Remove => "remove",
            }),
        ),
        ("u", Value::from(u64::from(u.u))),
        ("v", Value::from(u64::from(u.v))),
    ])
}

fn decode_update(v: &Value) -> Result<Update, WireError> {
    let op = match str_field(v, "op")? {
        "add" => EdgeOp::Add,
        "remove" => EdgeOp::Remove,
        other => return Err(schema(format!("unknown update op {other:?}"))),
    };
    let (u, vv) = (u32_field(v, "u")?, u32_field(v, "v")?);
    Ok(match op {
        EdgeOp::Add => Update::add(u, vv),
        EdgeOp::Remove => Update::remove(u, vv),
    })
}

fn encode_record(r: &ExportedRecord) -> Value {
    obj([
        ("source", Value::from(u64::from(r.source))),
        ("d", u32_values(&r.d)),
        ("sigma", u64_values(&r.sigma)),
        ("delta", f64_values(&r.delta)),
    ])
}

fn decode_record(v: &Value) -> Result<ExportedRecord, WireError> {
    Ok(ExportedRecord {
        source: u32_field(v, "source")?,
        d: u32_arr(v, "d")?,
        sigma: u64_arr(v, "sigma")?,
        delta: f64_arr(v, "delta")?,
    })
}

fn encode_scores(s: &Scores) -> [(&'static str, Value); 2] {
    [("vbc", f64_values(&s.vbc)), ("ebc", f64_values(&s.ebc))]
}

fn decode_scores(v: &Value) -> Result<Scores, WireError> {
    Ok(Scores {
        vbc: f64_arr(v, "vbc")?,
        ebc: f64_arr(v, "ebc")?,
    })
}

fn encode_op(op: &ShardOp) -> Value {
    match op {
        ShardOp::Init {
            shard,
            snapshot,
            sources,
        } => obj([
            ("k", Value::from("init")),
            ("shard", Value::from(u64::from(*shard))),
            ("snapshot", Value::from(hex_encode(snapshot))),
            ("sources", u32_values(sources)),
        ]),
        ShardOp::Apply { update, adopt } => obj([
            ("k", Value::from("apply")),
            ("update", encode_update(update)),
            (
                "adopt",
                adopt.map_or(Value::Null, |a| Value::from(u64::from(a))),
            ),
        ]),
        ShardOp::Export { source } => obj([
            ("k", Value::from("export")),
            ("source", Value::from(u64::from(*source))),
        ]),
        ShardOp::Import { record } => obj([
            ("k", Value::from("import")),
            ("record", encode_record(record)),
        ]),
    }
}

/// Decode one [`ShardOp`] object (public so WAL dumps can be inspected).
pub fn decode_op(v: &Value) -> Result<ShardOp, WireError> {
    Ok(match str_field(v, "k")? {
        "init" => ShardOp::Init {
            shard: u32_field(v, "shard")?,
            snapshot: hex_decode(str_field(v, "snapshot")?)?,
            sources: u32_arr(v, "sources")?,
        },
        "apply" => ShardOp::Apply {
            update: decode_update(field(v, "update")?)?,
            adopt: opt_u32_field(v, "adopt")?,
        },
        "export" => ShardOp::Export {
            source: u32_field(v, "source")?,
        },
        "import" => ShardOp::Import {
            record: decode_record(field(v, "record")?)?,
        },
        other => return Err(schema(format!("unknown op kind {other:?}"))),
    })
}

fn encode_request(req: &Request) -> Value {
    match req {
        Request::Bootstrap {
            shard,
            snapshot,
            sources,
            follower,
            follower_hint,
        } => obj([
            ("cmd", Value::from("bootstrap")),
            ("shard", Value::from(u64::from(*shard))),
            ("snapshot", Value::from(hex_encode(snapshot))),
            ("sources", u32_values(sources)),
            (
                "follower",
                follower.map_or(Value::Null, |f| Value::from(u64::from(f.0))),
            ),
            (
                "follower_hint",
                follower_hint.as_deref().map_or(Value::Null, Value::from),
            ),
        ]),
        Request::Apply {
            index,
            update,
            adopt,
        } => obj([
            ("cmd", Value::from("apply")),
            ("index", u64_value(*index)),
            ("update", encode_update(update)),
            (
                "adopt",
                adopt.map_or(Value::Null, |a| Value::from(u64::from(a))),
            ),
        ]),
        Request::Partials => obj([("cmd", Value::from("partials"))]),
        Request::Segments => obj([("cmd", Value::from("segments"))]),
        Request::Export { source } => obj([
            ("cmd", Value::from("export")),
            ("source", Value::from(u64::from(*source))),
        ]),
        Request::Import { record } => obj([
            ("cmd", Value::from("import")),
            ("record", encode_record(record)),
        ]),
        Request::Promote => obj([("cmd", Value::from("promote"))]),
        Request::Demote => obj([("cmd", Value::from("demote"))]),
        Request::Status => obj([("cmd", Value::from("status"))]),
        Request::Shutdown => obj([("cmd", Value::from("shutdown"))]),
    }
}

fn decode_request(v: &Value) -> Result<Request, WireError> {
    Ok(match str_field(v, "cmd")? {
        "bootstrap" => Request::Bootstrap {
            shard: u32_field(v, "shard")?,
            snapshot: hex_decode(str_field(v, "snapshot")?)?,
            sources: u32_arr(v, "sources")?,
            follower: opt_u32_field(v, "follower")?.map(NodeId),
            follower_hint: match v.get("follower_hint") {
                None | Some(Value::Null) => None,
                Some(x) => Some(
                    x.as_str()
                        .ok_or_else(|| schema("follower_hint is not a string"))?
                        .to_string(),
                ),
            },
        },
        "apply" => Request::Apply {
            index: u64_field(v, "index")?,
            update: decode_update(field(v, "update")?)?,
            adopt: opt_u32_field(v, "adopt")?,
        },
        "partials" => Request::Partials,
        "segments" => Request::Segments,
        "export" => Request::Export {
            source: u32_field(v, "source")?,
        },
        "import" => Request::Import {
            record: decode_record(field(v, "record")?)?,
        },
        "promote" => Request::Promote,
        "demote" => Request::Demote,
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        other => return Err(schema(format!("unknown command {other:?}"))),
    })
}

fn encode_segment(seg: &TreeSegment) -> Value {
    let [vbc, ebc] = encode_scores(&seg.scores);
    obj([
        ("lo", Value::from(u64::from(seg.lo))),
        ("hi", Value::from(u64::from(seg.hi))),
        vbc,
        ebc,
    ])
}

fn decode_segment(v: &Value) -> Result<TreeSegment, WireError> {
    Ok(TreeSegment {
        lo: u32_field(v, "lo")?,
        hi: u32_field(v, "hi")?,
        scores: decode_scores(v)?,
    })
}

fn encode_reply(reply: &Reply) -> Vec<(&'static str, Value)> {
    match reply {
        Reply::Ok(body) => {
            let mut fields = vec![("ok", Value::from(true))];
            match body {
                ReplyBody::Done {
                    wal_len,
                    deduped,
                    degraded,
                } => {
                    fields.push(("body", Value::from("done")));
                    fields.push(("wal_len", u64_value(*wal_len)));
                    fields.push(("deduped", Value::from(*deduped)));
                    fields.push(("degraded", Value::from(*degraded)));
                }
                ReplyBody::Bootstrapped { wal_len, brandes } => {
                    fields.push(("body", Value::from("bootstrapped")));
                    fields.push(("wal_len", u64_value(*wal_len)));
                    fields.push(("brandes", u64_value(*brandes)));
                }
                ReplyBody::Partials { scores } => {
                    fields.push(("body", Value::from("partials")));
                    let [vbc, ebc] = encode_scores(scores);
                    fields.push(vbc);
                    fields.push(ebc);
                }
                ReplyBody::Segments { segments } => {
                    fields.push(("body", Value::from("segments")));
                    fields.push((
                        "segments",
                        Value::Arr(segments.iter().map(encode_segment).collect()),
                    ));
                }
                ReplyBody::Exported {
                    record,
                    wal_len,
                    degraded,
                } => {
                    fields.push(("body", Value::from("exported")));
                    fields.push(("record", encode_record(record)));
                    fields.push(("wal_len", u64_value(*wal_len)));
                    fields.push(("degraded", Value::from(*degraded)));
                }
                ReplyBody::Status {
                    role,
                    version,
                    shard,
                    wal_len,
                    sources,
                    fenced,
                } => {
                    fields.push(("body", Value::from("status")));
                    fields.push(("role", Value::from(role.tag())));
                    fields.push(("version", u64_value(*version)));
                    fields.push((
                        "shard",
                        shard.map_or(Value::Null, |s| Value::from(u64::from(s))),
                    ));
                    fields.push(("wal_len", u64_value(*wal_len)));
                    fields.push(("sources", u64_value(*sources)));
                    fields.push(("fenced", u64_value(*fenced)));
                }
            }
            fields
        }
        Reply::Err { kind, msg, have } => vec![
            ("ok", Value::from(false)),
            ("kind", Value::from(kind.tag())),
            ("msg", Value::from(msg.as_str())),
            ("have", u64_value(*have)),
        ],
    }
}

fn decode_reply(v: &Value) -> Result<Reply, WireError> {
    if !bool_field(v, "ok")? {
        let kind =
            ErrKind::from_tag(str_field(v, "kind")?).ok_or_else(|| schema("unknown error kind"))?;
        return Ok(Reply::Err {
            kind,
            msg: str_field(v, "msg")?.to_string(),
            have: u64_field(v, "have")?,
        });
    }
    let body = match str_field(v, "body")? {
        "done" => ReplyBody::Done {
            wal_len: u64_field(v, "wal_len")?,
            deduped: bool_field(v, "deduped")?,
            degraded: bool_field(v, "degraded")?,
        },
        "bootstrapped" => ReplyBody::Bootstrapped {
            wal_len: u64_field(v, "wal_len")?,
            brandes: u64_field(v, "brandes")?,
        },
        "partials" => ReplyBody::Partials {
            scores: decode_scores(v)?,
        },
        "segments" => ReplyBody::Segments {
            segments: field(v, "segments")?
                .as_arr()
                .ok_or_else(|| schema("segments is not an array"))?
                .iter()
                .map(decode_segment)
                .collect::<Result<_, _>>()?,
        },
        "exported" => ReplyBody::Exported {
            record: decode_record(field(v, "record")?)?,
            wal_len: u64_field(v, "wal_len")?,
            degraded: bool_field(v, "degraded")?,
        },
        "status" => ReplyBody::Status {
            role: Role::from_tag(str_field(v, "role")?).ok_or_else(|| schema("unknown role"))?,
            version: u64_field(v, "version")?,
            shard: opt_u32_field(v, "shard")?,
            wal_len: u64_field(v, "wal_len")?,
            sources: u64_field(v, "sources")?,
            fenced: u64_field(v, "fenced")?,
        },
        other => return Err(schema(format!("unknown reply body {other:?}"))),
    };
    Ok(Reply::Ok(body))
}

/// Serialize one frame as a single JSON line (no trailing newline).
pub fn encode(msg: &NodeMsg) -> String {
    let value = match msg {
        NodeMsg::Request { seq, version, req } => {
            let Value::Obj(mut fields) = encode_request(req) else {
                unreachable!("requests encode as objects")
            };
            fields.insert("t".into(), Value::from("req"));
            fields.insert("seq".into(), u64_value(*seq));
            fields.insert("v".into(), u64_value(*version));
            Value::Obj(fields)
        }
        NodeMsg::Reply { seq, reply } => {
            let mut fields = vec![("t", Value::from("rep")), ("seq", u64_value(*seq))];
            fields.extend(encode_reply(reply));
            Value::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }
        NodeMsg::Replicate { index, op } => obj([
            ("t", Value::from("wal")),
            ("index", u64_value(*index)),
            ("op", encode_op(op)),
        ]),
        NodeMsg::RepAck { wal_len } => {
            obj([("t", Value::from("ack")), ("wal_len", u64_value(*wal_len))])
        }
        NodeMsg::Hello { from, assign } => obj([
            ("t", Value::from("hello")),
            ("from", Value::from(u64::from(from.0))),
            (
                "assign",
                assign.map_or(Value::Null, |a| Value::from(u64::from(a.0))),
            ),
        ]),
    };
    value.to_json()
}

/// Parse one frame. Never panics: garbage is [`WireError::Json`], valid
/// JSON of the wrong shape is [`WireError::Schema`].
pub fn decode(line: &str) -> Result<NodeMsg, WireError> {
    let v = json::parse(line).map_err(|e| WireError::Json(e.to_string()))?;
    Ok(match str_field(&v, "t")? {
        "req" => NodeMsg::Request {
            seq: u64_field(&v, "seq")?,
            version: u64_field(&v, "v")?,
            req: decode_request(&v)?,
        },
        "rep" => NodeMsg::Reply {
            seq: u64_field(&v, "seq")?,
            reply: decode_reply(&v)?,
        },
        "wal" => NodeMsg::Replicate {
            index: u64_field(&v, "index")?,
            op: decode_op(field(&v, "op")?)?,
        },
        "ack" => NodeMsg::RepAck {
            wal_len: u64_field(&v, "wal_len")?,
        },
        "hello" => NodeMsg::Hello {
            from: NodeId(u32_field(&v, "from")?),
            assign: opt_u32_field(&v, "assign")?.map(NodeId),
        },
        other => return Err(schema(format!("unknown frame type {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_beyond_2_53_survives_exactly() {
        let rec = ExportedRecord {
            source: 3,
            d: vec![0, 1, u32::MAX],
            sigma: vec![1, (1 << 53) + 1, u64::MAX],
            delta: vec![0.0, -0.0, 1.0 / 3.0],
        };
        let msg = NodeMsg::Request {
            seq: 9,
            version: 2,
            req: Request::Import {
                record: rec.clone(),
            },
        };
        let back = decode(&encode(&msg)).unwrap();
        let NodeMsg::Request {
            req: Request::Import { record },
            ..
        } = back
        else {
            panic!("wrong shape")
        };
        assert_eq!(record.sigma, rec.sigma);
        assert_eq!(
            record.delta.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            rec.delta.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn garbage_is_typed_not_a_panic() {
        for bad in [
            "",
            "nonsense",
            "{}",
            r#"{"t":"zorp"}"#,
            r#"{"t":"req","seq":1}"#,
            r#"{"t":"req","seq":1,"v":0,"cmd":"apply","index":0}"#,
            r#"{"t":"wal","index":0,"op":{"k":"init","shard":0,"snapshot":"zz","sources":[]}}"#,
        ] {
            assert!(decode(bad).is_err(), "{bad:?} should fail to decode");
        }
    }

    #[test]
    fn snapshot_hex_round_trips_structurally() {
        let mut g = ebc_graph::Graph::with_vertices(5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)] {
            g.add_edge(u, v).unwrap();
        }
        g.remove_edge(1, 2).unwrap();
        g.add_edge(2, 4).unwrap();
        let msg = NodeMsg::Request {
            seq: 1,
            version: 0,
            req: Request::Bootstrap {
                shard: 0,
                snapshot: g.snapshot_bytes(),
                sources: vec![0, 1, 2],
                follower: Some(NodeId(4)),
                follower_hint: None,
            },
        };
        let NodeMsg::Request {
            req: Request::Bootstrap { snapshot, .. },
            ..
        } = decode(&encode(&msg)).unwrap()
        else {
            panic!("wrong shape")
        };
        let g2 = ebc_graph::Graph::from_snapshot_bytes(&snapshot).unwrap();
        assert!(g.structural_eq(&g2));
    }
}
