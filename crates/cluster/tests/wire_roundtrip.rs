//! Node-protocol codec properties, mirroring the serve crate's
//! `proto_roundtrip` battery: every message in the catalog survives
//! encode → decode exactly (bitwise for `f64` payloads, exactly for `u64`s
//! beyond `2^53`), frames reassemble identically under arbitrary transport
//! fragmentation and survive reordering, and malformed input — garbage
//! bytes, truncations, valid JSON of the wrong shape — always yields a
//! typed [`WireError`], never a panic.

use ebc_cluster::wire::{
    self, decode, encode, u64_of, u64_value, ErrKind, NodeId, NodeMsg, Reply, ReplyBody, Request,
    Role, ShardOp, WireError,
};
use ebc_core::bd::ExportedRecord;
use ebc_core::exact::TreeSegment;
use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_serve::proto::{Frame, LineReader};
use proptest::prelude::*;
use std::io::Read;

// ───────────────────────── helpers ──────────────────────────────────────

/// Fixed-size-fragment reader modelling arbitrary TCP segmentation.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for Chunked {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn lines(data: &[u8], chunk: usize) -> Vec<String> {
    let mut reader = LineReader::new(Chunked {
        data: data.to_vec(),
        pos: 0,
        chunk: chunk.max(1),
    });
    let mut out = Vec::new();
    loop {
        match reader
            .read_frame()
            .expect("clean streams never error")
            .expect("chunked reader never blocks")
        {
            Frame::Eof => return out,
            Frame::Line(l) => out.push(l),
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// Deterministic xorshift generator deriving arbitrarily-shaped messages
/// from one proptest-drawn seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn finite_f64(&mut self) -> f64 {
        loop {
            let x = f64::from_bits(self.next());
            if x.is_finite() {
                return x;
            }
        }
    }

    /// u64s biased toward the 2^53 exactness cliff and the extremes.
    fn u64(&mut self) -> u64 {
        match self.next() % 5 {
            0 => self.next() % 100,
            1 => (1 << 53) - 1 + self.next() % 3,
            2 => u64::MAX - self.next() % 3,
            3 => self.next() >> (self.next() % 40),
            _ => self.next(),
        }
    }

    fn vec_len(&mut self) -> usize {
        (self.next() % 6) as usize
    }

    fn record(&mut self) -> ExportedRecord {
        let n = self.vec_len() + 1;
        ExportedRecord {
            source: (self.next() % 1000) as u32,
            d: (0..n)
                .map(|_| (self.next() % u32::MAX as u64) as u32)
                .collect(),
            sigma: (0..n).map(|_| self.u64()).collect(),
            delta: (0..n).map(|_| self.finite_f64()).collect(),
        }
    }

    fn update(&mut self) -> Update {
        let (u, v) = ((self.next() % 512) as u32, (self.next() % 512) as u32);
        if self.next().is_multiple_of(2) {
            Update::add(u, v)
        } else {
            Update::remove(u, v)
        }
    }

    fn scores(&mut self) -> Scores {
        let n = self.vec_len();
        let m = self.vec_len();
        Scores {
            vbc: (0..n).map(|_| self.finite_f64()).collect(),
            ebc: (0..m).map(|_| self.finite_f64()).collect(),
        }
    }

    fn op(&mut self) -> ShardOp {
        match self.next() % 4 {
            0 => ShardOp::Init {
                shard: (self.next() % 64) as u32,
                snapshot: (0..self.vec_len() * 7)
                    .map(|_| (self.next() & 0xff) as u8)
                    .collect(),
                sources: (0..self.vec_len())
                    .map(|_| (self.next() % 4096) as u32)
                    .collect(),
            },
            1 => ShardOp::Apply {
                update: self.update(),
                adopt: (self.next().is_multiple_of(2)).then(|| (self.next() % 4096) as u32),
            },
            2 => ShardOp::Export {
                source: (self.next() % 4096) as u32,
            },
            _ => ShardOp::Import {
                record: self.record(),
            },
        }
    }

    fn request(&mut self) -> Request {
        match self.next() % 10 {
            0 => Request::Bootstrap {
                shard: (self.next() % 64) as u32,
                snapshot: (0..self.vec_len() * 5)
                    .map(|_| (self.next() & 0xff) as u8)
                    .collect(),
                sources: (0..self.vec_len())
                    .map(|_| (self.next() % 4096) as u32)
                    .collect(),
                follower: (self.next().is_multiple_of(2))
                    .then(|| NodeId((self.next() % 64) as u32)),
                follower_hint: (self.next().is_multiple_of(3))
                    .then(|| format!("127.0.0.1:{}", self.next() % 65536)),
            },
            1 => Request::Apply {
                index: self.u64(),
                update: self.update(),
                adopt: (self.next().is_multiple_of(2)).then(|| (self.next() % 4096) as u32),
            },
            2 => Request::Partials,
            3 => Request::Segments,
            4 => Request::Export {
                source: (self.next() % 4096) as u32,
            },
            5 => Request::Import {
                record: self.record(),
            },
            6 => Request::Promote,
            7 => Request::Demote,
            8 => Request::Status,
            _ => Request::Shutdown,
        }
    }

    fn reply(&mut self) -> Reply {
        match self.next() % 8 {
            0 => Reply::Ok(ReplyBody::Done {
                wal_len: self.u64(),
                deduped: self.next().is_multiple_of(2),
                degraded: self.next().is_multiple_of(2),
            }),
            1 => Reply::Ok(ReplyBody::Bootstrapped {
                wal_len: self.u64(),
                brandes: self.u64(),
            }),
            2 => Reply::Ok(ReplyBody::Partials {
                scores: self.scores(),
            }),
            3 => Reply::Ok(ReplyBody::Segments {
                segments: (0..self.vec_len())
                    .map(|_| TreeSegment {
                        lo: (self.next() % 4096) as u32,
                        hi: (self.next() % 4096) as u32,
                        scores: self.scores(),
                    })
                    .collect(),
            }),
            4 => Reply::Ok(ReplyBody::Exported {
                record: self.record(),
                wal_len: self.u64(),
                degraded: self.next().is_multiple_of(2),
            }),
            5 => Reply::Ok(ReplyBody::Status {
                role: match self.next() % 3 {
                    0 => Role::Idle,
                    1 => Role::Leader,
                    _ => Role::Follower,
                },
                version: self.u64(),
                shard: (self.next().is_multiple_of(2)).then(|| (self.next() % 64) as u32),
                wal_len: self.u64(),
                sources: self.u64(),
                fenced: self.u64(),
            }),
            _ => Reply::Err {
                kind: match self.next() % 3 {
                    0 => ErrKind::Fenced,
                    1 => ErrKind::Protocol,
                    _ => ErrKind::State,
                },
                msg: format!("err-{}", self.next() % 100),
                have: self.u64(),
            },
        }
    }

    fn msg(&mut self) -> NodeMsg {
        match self.next() % 5 {
            0 => NodeMsg::Request {
                seq: self.u64(),
                version: self.u64(),
                req: self.request(),
            },
            1 => NodeMsg::Reply {
                seq: self.u64(),
                reply: self.reply(),
            },
            2 => NodeMsg::Replicate {
                index: self.u64(),
                op: self.op(),
            },
            3 => NodeMsg::RepAck {
                wal_len: self.u64(),
            },
            _ => NodeMsg::Hello {
                from: NodeId((self.next() % 256) as u32),
                assign: (self.next().is_multiple_of(2)).then(|| NodeId((self.next() % 256) as u32)),
            },
        }
    }
}

// ───────────────────────── properties ───────────────────────────────────

proptest! {
    /// Every message in the catalog survives encode → decode, and the
    /// encoding is a fixed point (canonical member order, shortest floats).
    #[test]
    fn node_msgs_round_trip(seed in any::<u64>()) {
        let msg = Gen(seed | 1).msg();
        let line = encode(&msg);
        let back = decode(&line)
            .unwrap_or_else(|e| panic!("rejected own output {line:?}: {e}"));
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(encode(&back), line);
    }

    /// `u64` payloads cross exactly on both sides of the `2^53` cliff —
    /// the property σ counts and WAL indexes rely on.
    #[test]
    fn u64s_cross_exactly(x in any::<u64>()) {
        prop_assert_eq!(u64_of(&u64_value(x)), Some(x));
    }

    /// δ floats in exported records cross the wire bitwise, so a record
    /// imported over the network is byte-identical to a local handoff.
    #[test]
    fn record_floats_cross_bitwise(bits in any::<u64>(), sigma in any::<u64>()) {
        let x = f64::from_bits(bits);
        prop_assume!(x.is_finite());
        let msg = NodeMsg::Replicate {
            index: 3,
            op: ShardOp::Import {
                record: ExportedRecord {
                    source: 0,
                    d: vec![0],
                    sigma: vec![sigma],
                    delta: vec![x],
                },
            },
        };
        let NodeMsg::Replicate { op: ShardOp::Import { record }, .. } =
            decode(&encode(&msg)).unwrap()
        else {
            panic!("shape changed in flight")
        };
        prop_assert_eq!(record.delta[0].to_bits(), x.to_bits());
        prop_assert_eq!(record.sigma[0], sigma);
    }

    /// However the transport fragments the byte stream, the exact same
    /// frames come out and decode to the original messages — and decoding
    /// is per-line, so delivery order doesn't affect any individual frame
    /// (the dedup layers above handle reordering semantics).
    #[test]
    fn fragmentation_and_reordering_are_harmless(
        seed in any::<u64>(),
        chunk in 1usize..48,
    ) {
        let mut gen = Gen(seed | 1);
        let msgs: Vec<NodeMsg> = (0..(gen.next() % 5 + 1)).map(|_| gen.msg()).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(encode(m).as_bytes());
            stream.push(b'\n');
        }
        let got = lines(&stream, chunk);
        prop_assert_eq!(got.len(), msgs.len(), "chunk={}", chunk);
        for (line, want) in got.iter().zip(&msgs) {
            prop_assert_eq!(&decode(line).unwrap(), want);
        }
        // reversed delivery: every frame still decodes to its own message
        for (line, want) in got.iter().rev().zip(msgs.iter().rev()) {
            prop_assert_eq!(&decode(line).unwrap(), want);
        }
    }

    /// Arbitrary garbage is a typed error, never a panic: raw bytes,
    /// truncated valid frames, and bit-flipped valid frames all map to
    /// `WireError::{Json, Schema}`.
    #[test]
    fn garbage_is_typed_never_a_panic(
        junk in proptest::collection::vec(0u8..=255, 0..64),
        seed in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let text = String::from_utf8_lossy(&junk);
        if let Err(e) = decode(&text) {
            prop_assert!(matches!(e, WireError::Json(_) | WireError::Schema(_)));
        }
        // truncating a valid frame must fail (or re-parse as valid JSON
        // of the wrong shape) — never panic, never half-decode
        let line = encode(&Gen(seed | 1).msg());
        let cut = cut % line.len().max(1);
        let truncated = &line[..line.floor_char_boundary(cut)];
        if let Err(e) = decode(truncated) {
            prop_assert!(matches!(e, WireError::Json(_) | WireError::Schema(_)));
        }
    }

    /// Valid JSON that isn't a protocol frame (or carries out-of-range
    /// ids) is a schema error with the offending field named.
    #[test]
    fn wrong_shapes_are_schema_errors(seed in any::<u64>()) {
        let mut gen = Gen(seed | 1);
        let shard = gen.next();
        let bads = [
            format!("{{\"t\":\"req\",\"seq\":1,\"v\":0,\"cmd\":\"mystery-{}\"}}", gen.next()),
            format!("{{\"t\":\"wal\",\"index\":0,\"op\":{{\"k\":\"init\",\"shard\":{},\"snapshot\":\"0g\",\"sources\":[]}}}}", shard % 64),
            format!("{{\"t\":\"req\",\"seq\":1,\"v\":0,\"cmd\":\"export\",\"source\":{}}}", u64::from(u32::MAX) + 1 + shard % 100),
            format!("{{\"t\":\"rep\",\"seq\":{},\"ok\":true,\"body\":\"nonsense\"}}", gen.next() % 100),
        ];
        for bad in &bads {
            match decode(bad) {
                Err(WireError::Schema(_)) => {}
                other => prop_assert!(false, "{bad} -> {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Big payloads (wide records, long source lists) still round trip —
    /// sized to stay under the serve codec's `MAX_LINE` cap, which the
    /// node protocol inherits.
    #[test]
    fn wide_records_round_trip(seed in any::<u64>()) {
        let mut gen = Gen(seed | 1);
        let n = 4096;
        let record = ExportedRecord {
            source: 7,
            d: (0..n).map(|_| (gen.next() % 64) as u32).collect(),
            sigma: (0..n).map(|_| gen.u64()).collect(),
            delta: (0..n).map(|_| gen.finite_f64()).collect(),
        };
        let msg = NodeMsg::Request {
            seq: 1,
            version: 0,
            req: Request::Import { record },
        };
        let line = encode(&msg);
        assert!(line.len() < ebc_serve::proto::MAX_LINE, "frame exceeds MAX_LINE");
        prop_assert_eq!(decode(&line).unwrap(), msg);
    }
}

/// `wire::decode_op` is public for WAL inspection: the journaled bytes of
/// a replicated entry decode to the same op the frame carried.
#[test]
fn wal_entry_bytes_decode_as_ops() {
    let mut gen = Gen(0xfeed_beef);
    for _ in 0..32 {
        let op = gen.op();
        let frame = encode(&NodeMsg::Replicate {
            index: 9,
            op: op.clone(),
        });
        let NodeMsg::Replicate { op: back, .. } = decode(&frame).unwrap() else {
            panic!("shape")
        };
        assert_eq!(back, op);
        let parsed = ebc_serve::json::parse(&frame).unwrap();
        let via_op = wire::decode_op(parsed.get("op").unwrap()).unwrap();
        assert_eq!(via_op, op);
    }
}
