//! The polymorphic engine surface the `streaming-bc` facade builds on.
//!
//! The paper presents **one** framework with interchangeable embodiments —
//! memory vs. disk `BD[·]`, single machine vs. `p`-way partitioned — yet the
//! concrete types ([`BetweennessState`] here, `ClusterEngine` in
//! `ebc-engine`) historically exposed different constructors and different
//! query signatures (`reduce` returned `(Scores, Duration)`, `reduce_exact`
//! bare `Scores`, the single state borrowed its running scores). This module
//! extracts the common contract:
//!
//! * [`Reduced`] — the one query report both the fast and the exact reduce
//!   return: the scores plus the wall-clock time spent producing them;
//! * [`EbcError`] — the one error type every embodiment maps onto, so a
//!   type-erased engine (`Box<dyn EbcEngine>`) has a concrete `Result`;
//! * [`EbcEngine`] — the trait erasing the single-machine vs. cluster split
//!   at the call site: `apply`/`apply_stream` to stream updates,
//!   `scores`/`reduce_exact` to query, `top_k` for the ranking view
//!   ([`crate::ranking`]), and `verify` for the recompute-from-scratch
//!   oracle.
//!
//! Every query method takes `&mut self`: partitioned embodiments must run a
//! reduce over their workers to answer, and out-of-core stores seek even on
//! reads. The single-machine implementation simply clones its running
//! scores.

use crate::bd::{BdError, BdStore};
use crate::rankindex::ScoreDelta;
use crate::ranking;
use crate::scores::Scores;
use crate::state::{BetweennessState, StateError, Update};
use crate::verify::{divergence_from_scratch, Divergence};
use ebc_graph::{Graph, GraphError, VertexId};
use std::fmt;
use std::time::{Duration, Instant};

/// Outcome of one reduce (fast or exact): the assembled scores and the
/// wall-clock time spent producing them — the paper's `t_M` for the
/// partitioned fast reduce, the derivation time for the exact one.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// The assembled vertex and edge betweenness scores.
    pub scores: Scores,
    /// Wall-clock time of the reduce that produced them.
    pub wall: Duration,
}

impl Reduced {
    /// Measure `f` and wrap its output.
    pub fn timed(f: impl FnOnce() -> Scores) -> Self {
        let t0 = Instant::now();
        let scores = f();
        Reduced {
            scores,
            wall: t0.elapsed(),
        }
    }
}

/// A point-in-time view of a partitioned engine's source→shard ownership:
/// which worker answers for which sources, and the version of the map that
/// said so. Single-machine embodiments have no map and return `None` from
/// [`EbcEngine::shard_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Version of the ownership map (bumps once per committed handoff).
    pub version: u64,
    /// `assignment[k]` is the list of sources worker `k` owns, in the
    /// map's internal (adoption/handoff) order. The lists partition the
    /// current vertex set.
    pub assignment: Vec<Vec<VertexId>>,
}

impl ShardAssignment {
    /// Total owned sources across all shards (equals the graph's `n`).
    pub fn total(&self) -> usize {
        self.assignment.iter().map(Vec::len).sum()
    }

    /// Owned-source skew: `max − min` across shards.
    pub fn skew(&self) -> usize {
        let max = self.assignment.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.assignment.iter().map(Vec::len).min().unwrap_or(0);
        max - min
    }
}

/// What a [`EbcEngine::rebalance`] or [`EbcEngine::handoff`] did: the
/// executed source moves (each `(source, from, to)`), the effective skew
/// threshold, and the map version after the last committed move. Scores are
/// never affected — ownership moves are score-neutral by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// Executed handoffs in commit order (empty when the skew was already
    /// within the threshold).
    pub moves: Vec<(VertexId, usize, usize)>,
    /// The effective threshold (requests below 1 are clamped up; `0` for a
    /// single explicit handoff).
    pub threshold: usize,
    /// Ownership-map version after the last committed move.
    pub map_version: u64,
}

/// The unified error type of the [`EbcEngine`] surface. Concrete engines
/// keep their precise error enums (`StateError`, `ebc-engine`'s
/// `EngineError`); this is what they map onto when driven through the
/// type-erased trait.
#[derive(Debug)]
pub enum EbcError {
    /// The update is invalid against the current graph; the engine is
    /// untouched and stays usable.
    Graph(GraphError),
    /// A `BD` storage backend failed.
    Store(BdError),
    /// An addition referenced a vertex more than one past the maximum id.
    SparseVertex(VertexId),
    /// An engine-level failure (poisoned cluster, lost worker, shard-map
    /// violation). The engine may no longer be trustworthy.
    Engine(String),
    /// A [`EbcEngine::verify`] check exceeded its tolerance.
    Diverged {
        /// Max absolute vertex-betweenness difference from scratch.
        vbc: f64,
        /// Max absolute edge-betweenness difference from scratch.
        ebc: f64,
        /// The tolerance that was exceeded.
        tol: f64,
    },
}

impl fmt::Display for EbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbcError::Graph(e) => write!(f, "graph error: {e}"),
            EbcError::Store(e) => write!(f, "store error: {e}"),
            EbcError::SparseVertex(v) => write!(f, "vertex {v} skips ids"),
            EbcError::Engine(why) => write!(f, "engine error: {why}"),
            EbcError::Diverged { vbc, ebc, tol } => write!(
                f,
                "scores diverged from recomputation \
                 (max VBC diff {vbc:.3e}, max EBC diff {ebc:.3e}, tolerance {tol:.1e})"
            ),
        }
    }
}

impl std::error::Error for EbcError {}

impl From<GraphError> for EbcError {
    fn from(e: GraphError) -> Self {
        EbcError::Graph(e)
    }
}

impl From<BdError> for EbcError {
    fn from(e: BdError) -> Self {
        EbcError::Store(e)
    }
}

impl From<StateError> for EbcError {
    fn from(e: StateError) -> Self {
        match e {
            StateError::Graph(g) => EbcError::Graph(g),
            StateError::Store(s) => EbcError::Store(s),
            StateError::SparseVertex(v) => EbcError::SparseVertex(v),
        }
    }
}

/// One online-betweenness engine, whatever its embodiment.
///
/// Implemented by [`BetweennessState`] (single machine, any [`BdStore`])
/// and by `ebc-engine`'s `ClusterEngine` (the `p`-worker shared-nothing
/// pool); the `streaming-bc` facade's `Session` drives either through a
/// `Box<dyn EbcEngine>` built by its `SessionBuilder`.
pub trait EbcEngine {
    /// The current graph.
    fn graph(&self) -> &Graph;

    /// Number of workers executing the map phase (1 for the single-machine
    /// embodiment).
    fn workers(&self) -> usize;

    /// Apply one edge update, keeping the scores current.
    fn apply(&mut self, update: Update) -> Result<(), EbcError>;

    /// Apply a batch of updates in order. Partitioned embodiments pipeline
    /// dispatch against collection; on a validation error the already
    /// dispatched prefix still completes and the error is returned.
    fn apply_stream(&mut self, updates: &[Update]) -> Result<(), EbcError>;

    /// [`EbcEngine::apply_stream`], also reporting how many updates were
    /// actually applied — on a mid-batch validation error the applied
    /// prefix is durable state, and history/journaling layers must record
    /// exactly that prefix. The count is meaningful for validation
    /// errors; an engine-poisoning failure leaves it a lower bound.
    fn apply_stream_counted(&mut self, updates: &[Update]) -> (usize, Result<(), EbcError>) {
        for (i, &u) in updates.iter().enumerate() {
            if let Err(e) = self.apply(u) {
                return (i, Err(e));
            }
        }
        (updates.len(), Ok(()))
    }

    /// The fast query path: the incrementally maintained scores (cluster
    /// embodiments fold per-worker partials — the paper's reduce, bitwise
    /// dependent on the worker count).
    fn scores(&mut self) -> Result<Reduced, EbcError>;

    /// The partition-invariant exact reduction of [`crate::exact`]: bitwise
    /// identical across embodiments, worker counts, and store backends for
    /// the same update history.
    fn reduce_exact(&mut self) -> Result<Reduced, EbcError>;

    /// Edge betweenness of `{u, v}`, `None` if the edge is absent.
    fn edge_centrality(&mut self, u: VertexId, v: VertexId) -> Result<Option<f64>, EbcError> {
        let reduced = self.scores()?;
        Ok(reduced.scores.ebc_of(self.graph(), u, v))
    }

    /// The `k` currently most central vertices (ties toward smaller id),
    /// via [`crate::ranking::top_k`] over the fast-path scores.
    fn top_k(&mut self, k: usize) -> Result<Vec<VertexId>, EbcError> {
        let reduced = self.scores()?;
        Ok(ranking::top_k(&reduced.scores.vbc, k))
    }

    /// Drain what changed in the fast-path scores since the last drain, for
    /// incremental [`crate::rankindex::RankIndex`] maintenance. Applying
    /// every drained delta in order to one index reproduces the engine's
    /// current fast-path vector bit for bit.
    ///
    /// The default cannot track changes and republishes densely every call;
    /// embodiments with dirty tracking (the single-machine kernel) or a
    /// published-vector cache (the cluster reduce) override this with
    /// sparse deltas.
    fn take_score_delta(&mut self) -> Result<ScoreDelta, EbcError> {
        Ok(ScoreDelta::Dense(self.scores()?.scores.vbc))
    }

    /// Compare the engine's exact scores against a fresh Brandes
    /// recomputation on the current graph. Returns the divergence when it is
    /// within `tol`, [`EbcError::Diverged`] otherwise.
    fn verify(&mut self, tol: f64) -> Result<Divergence, EbcError> {
        let reduced = self.reduce_exact()?;
        let d = divergence_from_scratch(self.graph(), &reduced.scores);
        if d.within(tol) {
            Ok(d)
        } else {
            Err(EbcError::Diverged {
                vbc: d.vbc,
                ebc: d.ebc,
                tol,
            })
        }
    }

    /// Flush any durable backing storage (no-op for in-memory embodiments).
    fn flush(&mut self) -> Result<(), EbcError>;

    /// Version of the source-ownership map for partitioned embodiments
    /// (`None` on a single machine, where ownership never moves). The
    /// facade records this in its session manifest at checkpoint time.
    fn shard_map_version(&self) -> Option<u64> {
        None
    }

    /// Brandes single-source iterations this engine has executed (bootstrap
    /// plus adopted arrivals), when the embodiment tracks them — the
    /// durable-restart suite asserts this is 0 right after a resume. `None`
    /// for embodiments that do not count.
    fn brandes_runs(&self) -> Option<u64> {
        None
    }

    /// The current source→shard ownership of a partitioned embodiment, or
    /// `None` on a single machine (where every source lives in the one
    /// store and ownership never moves).
    fn shard_map(&self) -> Option<ShardAssignment> {
        None
    }

    /// Hand ownership of `source` to worker `to` (an explicit, out-of-plan
    /// move — e.g. draining a machine before maintenance). Score-neutral.
    /// Single-machine embodiments have nowhere to move a source and error.
    fn handoff(&mut self, source: VertexId, to: usize) -> Result<RebalanceOutcome, EbcError> {
        let _ = (source, to);
        Err(EbcError::Engine(
            "handoff requires a sharded engine (workers > 1)".into(),
        ))
    }

    /// Restore the owned-source skew invariant `max − min ≤ threshold`
    /// through the engine's journaled handoff path, returning the executed
    /// moves. Score-neutral. Single-machine embodiments error.
    fn rebalance(&mut self, threshold: usize) -> Result<RebalanceOutcome, EbcError> {
        let _ = threshold;
        Err(EbcError::Engine(
            "rebalance requires a sharded engine (workers > 1)".into(),
        ))
    }
}

impl<S: BdStore> EbcEngine for BetweennessState<S> {
    fn graph(&self) -> &Graph {
        BetweennessState::graph(self)
    }

    fn workers(&self) -> usize {
        1
    }

    fn apply(&mut self, update: Update) -> Result<(), EbcError> {
        BetweennessState::apply(self, update)?;
        Ok(())
    }

    fn apply_stream(&mut self, updates: &[Update]) -> Result<(), EbcError> {
        for &u in updates {
            BetweennessState::apply(self, u)?;
        }
        Ok(())
    }

    fn scores(&mut self) -> Result<Reduced, EbcError> {
        Ok(Reduced::timed(|| BetweennessState::scores(self).clone()))
    }

    fn reduce_exact(&mut self) -> Result<Reduced, EbcError> {
        let t0 = Instant::now();
        let scores = self.exact_scores()?;
        Ok(Reduced {
            scores,
            wall: t0.elapsed(),
        })
    }

    fn edge_centrality(&mut self, u: VertexId, v: VertexId) -> Result<Option<f64>, EbcError> {
        // the single state answers from its running scores without a clone
        Ok(BetweennessState::edge_centrality(self, u, v))
    }

    fn top_k(&mut self, k: usize) -> Result<Vec<VertexId>, EbcError> {
        Ok(ranking::top_k(&BetweennessState::scores(self).vbc, k))
    }

    fn take_score_delta(&mut self) -> Result<ScoreDelta, EbcError> {
        Ok(BetweennessState::take_score_delta(self))
    }

    fn flush(&mut self) -> Result<(), EbcError> {
        self.store_mut().flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Update;

    fn square() -> Graph {
        let mut g = Graph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v).unwrap();
        }
        g
    }

    fn as_engine(state: &mut BetweennessState) -> &mut dyn EbcEngine {
        state
    }

    #[test]
    fn single_state_behind_the_trait() {
        let mut st = BetweennessState::new(&square());
        let engine = as_engine(&mut st);
        assert_eq!(engine.workers(), 1);
        engine.apply(Update::add(0, 2)).unwrap();
        engine
            .apply_stream(&[Update::add(1, 3), Update::remove(0, 2)])
            .unwrap();
        let fast = engine.scores().unwrap();
        let exact = engine.reduce_exact().unwrap();
        assert!(fast.scores.max_vbc_diff(&exact.scores) < 1e-9);
        assert!(engine.edge_centrality(1, 3).unwrap().unwrap() > 0.0);
        assert_eq!(engine.edge_centrality(0, 2).unwrap(), None);
        assert_eq!(engine.top_k(2).unwrap().len(), 2);
        engine.verify(1e-6).unwrap();
        engine.flush().unwrap();
    }

    #[test]
    fn trait_surfaces_validation_errors() {
        let mut st = BetweennessState::new(&square());
        let engine = as_engine(&mut st);
        assert!(matches!(
            engine.apply(Update::add(0, 1)),
            Err(EbcError::Graph(GraphError::DuplicateEdge(0, 1)))
        ));
        assert!(matches!(
            engine.apply(Update::add(0, 9)),
            Err(EbcError::SparseVertex(9))
        ));
        // still usable afterwards
        engine.apply(Update::add(0, 2)).unwrap();
        engine.verify(1e-6).unwrap();
    }

    #[test]
    fn single_machine_has_no_shard_surface() {
        let mut st = BetweennessState::new(&square());
        let engine = as_engine(&mut st);
        assert!(engine.shard_map().is_none());
        assert!(matches!(engine.handoff(0, 1), Err(EbcError::Engine(_))));
        assert!(matches!(engine.rebalance(1), Err(EbcError::Engine(_))));
    }

    #[test]
    fn verify_reports_divergence() {
        let mut st = BetweennessState::new(&square());
        // sabotage the running scores: verify goes through reduce_exact,
        // which re-derives from records, so corrupt a record instead
        st.store_mut()
            .update_with(0, &mut |view| {
                view.delta[2] += 64.0;
                true
            })
            .unwrap();
        let engine = as_engine(&mut st);
        assert!(matches!(
            engine.verify(1e-6),
            Err(EbcError::Diverged { .. })
        ));
    }
}
