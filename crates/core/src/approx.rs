//! Source-sampling approximation of betweenness centrality.
//!
//! The paper's introduction surveys randomized approximations (Brandes &
//! Pich 2007; Riondato & Kornaropoulos 2014) as the usual escape hatch from
//! Brandes' `O(nm)` cost, and notes their accuracy "can decrease considerably
//! with the increase in graph size" — one of the motivations for exact
//! incremental maintenance. This module implements the classic
//! source-sampling estimator so experiments can quantify that trade-off
//! against the exact framework:
//!
//! * sample `k` sources uniformly without replacement,
//! * run one predecessor-free Brandes iteration per sampled source,
//! * scale the accumulated dependencies by `n / k`.
//!
//! The estimator is unbiased for both vertex and edge betweenness; its error
//! concentrates like `O(sqrt(log n / k) · diam)` (Brandes & Pich).

use crate::brandes::{single_source_update_with, BrandesScratch};
use crate::scores::Scores;
use ebc_graph::{Graph, VertexId};

/// Deterministic splitmix64 step (tiny, dependency-free PRNG — sampling
/// quality needs nothing stronger here).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sample `k` distinct sources uniformly (partial Fisher–Yates).
pub fn sample_sources(n: usize, k: usize, seed: u64) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    let k = k.min(n);
    let mut state = seed;
    for i in 0..k {
        let j = i + (splitmix64(&mut state) % (n - i) as u64) as usize;
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// Approximate VBC and EBC from `k` sampled sources, scaled by `n/k`.
///
/// `k = n` degenerates to exact (unscaled) Brandes.
pub fn approx_betweenness(g: &Graph, k: usize, seed: u64) -> Scores {
    let n = g.n();
    let mut scores = Scores::zeros_for(g);
    if n == 0 || k == 0 {
        return scores;
    }
    let sources = sample_sources(n, k, seed);
    let mut scratch = BrandesScratch::new(n);
    for &s in &sources {
        let _ = single_source_update_with(g, s, &mut scores, &mut scratch);
    }
    let scale = n as f64 / sources.len() as f64;
    for x in &mut scores.vbc {
        *x *= scale;
    }
    for x in &mut scores.ebc {
        *x *= scale;
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes;

    fn test_graph() -> Graph {
        // two hubs bridged: clear centrality structure
        let mut g = Graph::with_vertices(12);
        for leaf in 1..6 {
            g.add_edge(0, leaf).unwrap();
        }
        for leaf in 7..12 {
            g.add_edge(6, leaf).unwrap();
        }
        g.add_edge(0, 6).unwrap();
        g
    }

    #[test]
    fn sampling_all_sources_is_exact() {
        let g = test_graph();
        let exact = brandes(&g);
        let approx = approx_betweenness(&g, g.n(), 7);
        assert!(exact.max_vbc_diff(&approx) < 1e-9);
        assert!(exact.max_ebc_diff(&approx, &g) < 1e-9);
    }

    #[test]
    fn sample_sources_distinct_and_in_range() {
        let s = sample_sources(50, 20, 3);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|&v| (v as usize) < 50));
        // k > n clamps
        assert_eq!(sample_sources(5, 100, 3).len(), 5);
    }

    #[test]
    fn estimator_is_roughly_unbiased() {
        let g = test_graph();
        let exact = brandes(&g);
        // average many independent estimates; the mean must approach exact
        let mut acc = Scores::zeros_for(&g);
        let runs = 200;
        for seed in 0..runs {
            acc.merge_from(&approx_betweenness(&g, 4, seed));
        }
        for x in &mut acc.vbc {
            *x /= runs as f64;
        }
        let worst = acc.max_vbc_diff(&exact);
        // exact hub VBC is ~70; the averaged estimate should be within ~15%
        let scale = exact.vbc.iter().cloned().fold(0.0, f64::max).max(1.0);
        assert!(
            worst / scale < 0.15,
            "bias too large: {worst} vs scale {scale}"
        );
    }

    #[test]
    fn half_sampling_ranks_the_bridge_first() {
        let g = test_graph();
        let approx = approx_betweenness(&g, 6, 11);
        let top = approx.top_edge(&g).unwrap().0;
        assert_eq!(top, ebc_graph::EdgeKey::new(0, 6), "bridge must rank first");
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Graph::new();
        let s = approx_betweenness(&empty, 5, 1);
        assert!(s.vbc.is_empty());
        let g = test_graph();
        let zero = approx_betweenness(&g, 0, 1);
        assert!(zero.vbc.iter().all(|&x| x == 0.0));
    }
}
