//! The `BD[·]` betweenness-data abstraction.
//!
//! For every source `s` the framework keeps three fixed-width arrays —
//! distance `d`, shortest-path count `σ`, dependency `δ` — and nothing else
//! (no predecessor lists, §3 "Memory optimisation"). This module defines the
//! storage contract those arrays live behind:
//!
//! * [`MemoryBdStore`] — everything resident (the paper's MO configuration);
//! * the `ebc-store` crate implements the out-of-core columnar layout (DO).
//!
//! The trait surface is shaped by the two access patterns of Algorithm 1:
//!
//! 1. [`BdStore::peek_pair`] reads only the two endpoint distances so a
//!    source with `dd == 0` can be skipped without touching `σ`/`δ`
//!    (the paper's §5.1 skip, "constant offset" seek on disk);
//! 2. [`BdStore::update_with`] hands the full mutable `BD[s]` view to the
//!    update kernel and persists it only if the kernel reports a change.

use ebc_graph::{FxHashMap, VertexId, UNREACHABLE};
use std::fmt;

/// Mutable view over one source's `BD[s]` arrays.
///
/// All three slices have length `n` (the number of vertices) and are indexed
/// by vertex id, exactly like the paper's columnar record.
pub struct SourceViewMut<'a> {
    /// Distances from the source; [`UNREACHABLE`] when disconnected.
    pub d: &'a mut [u32],
    /// Shortest-path counts from the source.
    pub sigma: &'a mut [u64],
    /// Accumulated dependencies `δ_s(·)`.
    pub delta: &'a mut [f64],
}

/// Errors surfaced by `BD` storage backends.
#[derive(Debug)]
pub enum BdError {
    /// The requested source is not managed by this store (wrong partition).
    UnknownSource(VertexId),
    /// A source was added twice.
    DuplicateSource(VertexId),
    /// Arrays of the wrong length were supplied.
    ShapeMismatch { expected: usize, got: usize },
    /// Backend I/O failure (out-of-core stores).
    Io(std::io::Error),
    /// Backend-specific corruption or format error.
    Corrupt(String),
}

impl fmt::Display for BdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdError::UnknownSource(s) => write!(f, "source {s} not in this store"),
            BdError::DuplicateSource(s) => write!(f, "source {s} already present"),
            BdError::ShapeMismatch { expected, got } => {
                write!(f, "expected arrays of length {expected}, got {got}")
            }
            BdError::Io(e) => write!(f, "bd store io error: {e}"),
            BdError::Corrupt(msg) => write!(f, "bd store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for BdError {}

impl From<std::io::Error> for BdError {
    fn from(e: std::io::Error) -> Self {
        BdError::Io(e)
    }
}

/// Result alias for store operations.
pub type BdResult<T> = Result<T, BdError>;

/// Callback that mutates one source view and reports whether it changed
/// anything (`false` lets out-of-core backends skip the write-back).
pub type SourceFn<'a> = &'a mut dyn FnMut(SourceViewMut<'_>) -> bool;

/// Callback applied to each non-skipped source of an [`BdStore::update_batch`]
/// call; receives the source id alongside its view and reports dirtiness
/// exactly like [`SourceFn`].
pub type BatchSourceFn<'a> = &'a mut dyn FnMut(VertexId, SourceViewMut<'_>) -> bool;

/// Counters describing one [`BdStore::update_batch`] invocation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Sources skipped by the `dd == 0` peek without materialising a record.
    pub skipped: u64,
    /// Sources whose full record was handed to the kernel.
    pub processed: u64,
    /// Records the kernel reported dirty and the store persisted.
    pub written: u64,
}

/// One source's full `BD[s]` record serialized out of a store by
/// [`BdStore::export_source`] — the unit of data a shard handoff moves
/// between machines.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedRecord {
    /// The source the record belongs to.
    pub source: VertexId,
    /// Distances from the source.
    pub d: Vec<u32>,
    /// Shortest-path counts from the source.
    pub sigma: Vec<u64>,
    /// Accumulated dependencies `δ_s(·)`.
    pub delta: Vec<f64>,
}

/// Storage contract for the per-source `BD[s]` records of one partition.
pub trait BdStore: Send {
    /// Number of vertex slots in every record.
    fn n(&self) -> usize;

    /// The sources managed by this store, in deterministic order.
    fn sources(&self) -> Vec<VertexId>;

    /// Fill `out` with [`BdStore::sources`] (same order), reusing its
    /// capacity. Backends that keep a resident order vector override this so
    /// the per-update source enumeration in the engine hot loop does not
    /// allocate.
    fn sources_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.sources());
    }

    /// Number of sources managed by this store.
    fn num_sources(&self) -> usize;

    /// Read the distances of `a` and `b` under source `s` without
    /// materialising the full record (the `dd == 0` fast path).
    fn peek_pair(&mut self, s: VertexId, a: VertexId, b: VertexId) -> BdResult<(u32, u32)>;

    /// Run `f` over the mutable view of source `s`, persisting the record if
    /// `f` returns `true`. Returns that flag.
    fn update_with(&mut self, s: VertexId, f: SourceFn<'_>) -> BdResult<bool>;

    /// Drive one edge update of `{u, v}` over `sources`: peek the endpoint
    /// distances of every source, skip the `dd == 0` ones (Proposition 3.1),
    /// and hand each remaining source's full view to `f`, persisting it when
    /// `f` reports a change.
    ///
    /// This default implementation is the trait-generic loop — one
    /// [`BdStore::peek_pair`] plus one [`BdStore::update_with`] per source —
    /// which is optimal for in-memory backends. Out-of-core backends
    /// override it to coalesce the record I/O of one update into run-sorted
    /// batched reads and writes (≤ 1 seek per contiguous slot run) instead
    /// of one seek+read+write per affected source.
    fn update_batch(
        &mut self,
        sources: &[VertexId],
        u: VertexId,
        v: VertexId,
        f: BatchSourceFn<'_>,
    ) -> BdResult<BatchStats> {
        let mut stats = BatchStats::default();
        for &s in sources {
            let (a, b) = self.peek_pair(s, u, v)?;
            if a == b {
                stats.skipped += 1;
                continue;
            }
            stats.processed += 1;
            if self.update_with(s, &mut |view| f(s, view))? {
                stats.written += 1;
            }
        }
        Ok(stats)
    }

    /// Append one vertex slot (`d = UNREACHABLE`, `σ = 0`, `δ = 0`) to every
    /// record — called when a new vertex joins the graph.
    fn grow_vertex(&mut self) -> BdResult<()>;

    /// Register a brand-new source with its freshly computed record.
    fn add_source(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
    ) -> BdResult<()>;

    /// Unregister source `s` and drop its record — the store no longer
    /// answers for it. Slot compaction is backend-specific; the surviving
    /// sources and their records must be unaffected.
    fn remove_source(&mut self, s: VertexId) -> BdResult<()>;

    /// Serialize source `s`'s record out of the store and unregister it —
    /// the donor half of a shard handoff.
    ///
    /// `tag` is an opaque caller token travelling with the export (the
    /// sharded layer passes the recipient shard id). Backends with a crash
    /// story persist the payload and the tag durably *before* removing the
    /// source, so a kill between the removal here and the installation in
    /// the recipient store can be rolled forward from the journal; once the
    /// handoff has committed elsewhere the journal is discarded via
    /// [`BdStore::retire_export`]. This default implementation (in-memory
    /// backends) reads and removes without journaling.
    fn export_source(&mut self, s: VertexId, tag: u64) -> BdResult<ExportedRecord> {
        let _ = tag;
        let (mut d, mut sigma, mut delta) = (Vec::new(), Vec::new(), Vec::new());
        self.update_with(s, &mut |view| {
            d = view.d.to_vec();
            sigma = view.sigma.to_vec();
            delta = view.delta.to_vec();
            false
        })?;
        self.remove_source(s)?;
        Ok(ExportedRecord {
            source: s,
            d,
            sigma,
            delta,
        })
    }

    /// Discard any durable export journal [`BdStore::export_source`] left
    /// for `s`, once the handoff has committed on the recipient side. No-op
    /// for backends without one; discarding a journal that does not exist
    /// must succeed.
    fn retire_export(&mut self, s: VertexId) -> BdResult<()> {
        let _ = s;
        Ok(())
    }

    /// Flush buffered record data to durable storage. No-op for in-memory
    /// backends; out-of-core backends override to sync their data and
    /// sidecar files (the session checkpoint path calls this through the
    /// trait, without knowing the backend).
    fn flush(&mut self) -> BdResult<()> {
        Ok(())
    }
}

/// Fully in-memory `BD` store — the paper's *MO* configuration.
///
/// Struct-of-arrays layout: each of `d`/`sigma`/`delta` is one contiguous
/// slab holding every record back to back with stride [`MemoryBdStore::n`]
/// (slot `i`'s record occupies `[i·n, (i+1)·n)`). One allocation per
/// component instead of three per source keeps the kernel's record walks
/// cache-linear and makes growing/removing a record a `memmove`, not an
/// allocator round trip.
pub struct MemoryBdStore {
    n: usize,
    order: Vec<VertexId>,
    index: FxHashMap<VertexId, usize>,
    d: Vec<u32>,
    sigma: Vec<u64>,
    delta: Vec<f64>,
}

impl MemoryBdStore {
    /// Empty store for records of `n` vertices.
    pub fn new(n: usize) -> Self {
        MemoryBdStore {
            n,
            order: Vec::new(),
            index: FxHashMap::default(),
            d: Vec::new(),
            sigma: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Approximate resident bytes (for the experiments' memory reporting).
    pub fn resident_bytes(&self) -> usize {
        self.order.len() * self.n * (4 + 8 + 8)
    }

    fn slot(&self, s: VertexId) -> BdResult<usize> {
        self.index.get(&s).copied().ok_or(BdError::UnknownSource(s))
    }

    #[inline]
    fn row(&self, slot: usize) -> std::ops::Range<usize> {
        slot * self.n..(slot + 1) * self.n
    }
}

impl BdStore for MemoryBdStore {
    fn n(&self) -> usize {
        self.n
    }

    fn sources(&self) -> Vec<VertexId> {
        self.order.clone()
    }

    fn sources_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend_from_slice(&self.order);
    }

    fn num_sources(&self) -> usize {
        self.order.len()
    }

    fn peek_pair(&mut self, s: VertexId, a: VertexId, b: VertexId) -> BdResult<(u32, u32)> {
        let base = self.slot(s)? * self.n;
        Ok((self.d[base + a as usize], self.d[base + b as usize]))
    }

    fn update_with(&mut self, s: VertexId, f: SourceFn<'_>) -> BdResult<bool> {
        let slot = self.slot(s)?;
        let row = self.row(slot);
        let view = SourceViewMut {
            d: &mut self.d[row.clone()],
            sigma: &mut self.sigma[row.clone()],
            delta: &mut self.delta[row],
        };
        Ok(f(view))
    }

    fn grow_vertex(&mut self) -> BdResult<()> {
        // Re-stride the slabs in place: widen each row by one slot and seed
        // the new column with the fresh-vertex sentinel. Rows move to larger
        // offsets, so walking them back to front never clobbers an unmoved
        // row (each row move itself is a memmove).
        let (old_n, new_n, slots) = (self.n, self.n + 1, self.order.len());
        self.d.resize(slots * new_n, UNREACHABLE);
        self.sigma.resize(slots * new_n, 0);
        self.delta.resize(slots * new_n, 0.0);
        for slot in (0..slots).rev() {
            let src = slot * old_n..slot * old_n + old_n;
            let dst = slot * new_n;
            self.d.copy_within(src.clone(), dst);
            self.sigma.copy_within(src.clone(), dst);
            self.delta.copy_within(src, dst);
            self.d[dst + old_n] = UNREACHABLE;
            self.sigma[dst + old_n] = 0;
            self.delta[dst + old_n] = 0.0;
        }
        self.n = new_n;
        Ok(())
    }

    fn add_source(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
    ) -> BdResult<()> {
        if self.index.contains_key(&s) {
            return Err(BdError::DuplicateSource(s));
        }
        if d.len() != self.n || sigma.len() != self.n || delta.len() != self.n {
            return Err(BdError::ShapeMismatch {
                expected: self.n,
                got: d.len(),
            });
        }
        self.index.insert(s, self.order.len());
        self.order.push(s);
        self.d.extend_from_slice(&d);
        self.sigma.extend_from_slice(&sigma);
        self.delta.extend_from_slice(&delta);
        Ok(())
    }

    fn remove_source(&mut self, s: VertexId) -> BdResult<()> {
        let slot = self.slot(s)?;
        self.index.remove(&s);
        self.order.swap_remove(slot);
        // Mirror `swap_remove` on the slabs: the last row fills the vacated
        // stride, then the slabs shrink by one row.
        let last = self.order.len();
        if slot != last {
            let src = last * self.n..(last + 1) * self.n;
            let dst = slot * self.n;
            self.d.copy_within(src.clone(), dst);
            self.sigma.copy_within(src.clone(), dst);
            self.delta.copy_within(src, dst);
        }
        self.d.truncate(last * self.n);
        self.sigma.truncate(last * self.n);
        self.delta.truncate(last * self.n);
        if let Some(&moved) = self.order.get(slot) {
            self.index.insert(moved, slot);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_two_sources() -> MemoryBdStore {
        let mut st = MemoryBdStore::new(3);
        st.add_source(0, vec![0, 1, 2], vec![1, 1, 1], vec![2.0, 1.0, 0.0])
            .unwrap();
        st.add_source(1, vec![1, 0, 1], vec![1, 1, 1], vec![0.0, 2.0, 0.0])
            .unwrap();
        st
    }

    #[test]
    fn peek_reads_distances() {
        let mut st = store_with_two_sources();
        assert_eq!(st.peek_pair(0, 1, 2).unwrap(), (1, 2));
        assert_eq!(st.peek_pair(1, 0, 2).unwrap(), (1, 1));
    }

    #[test]
    fn unknown_source_rejected() {
        let mut st = store_with_two_sources();
        assert!(matches!(
            st.peek_pair(9, 0, 1),
            Err(BdError::UnknownSource(9))
        ));
        assert!(matches!(
            st.update_with(9, &mut |_| false),
            Err(BdError::UnknownSource(9))
        ));
    }

    #[test]
    fn update_mutates_in_place() {
        let mut st = store_with_two_sources();
        let dirty = st
            .update_with(0, &mut |view| {
                view.d[2] = 7;
                view.sigma[2] = 5;
                view.delta[2] = 3.5;
                true
            })
            .unwrap();
        assert!(dirty);
        assert_eq!(st.peek_pair(0, 2, 2).unwrap(), (7, 7));
        st.update_with(0, &mut |view| {
            assert_eq!(view.sigma[2], 5);
            assert_eq!(view.delta[2], 3.5);
            false
        })
        .unwrap();
    }

    #[test]
    fn grow_vertex_extends_records() {
        let mut st = store_with_two_sources();
        st.grow_vertex().unwrap();
        assert_eq!(st.n(), 4);
        assert_eq!(st.peek_pair(0, 3, 0).unwrap(), (UNREACHABLE, 0));
        st.update_with(1, &mut |view| {
            assert_eq!(view.d.len(), 4);
            assert_eq!(view.sigma[3], 0);
            assert_eq!(view.delta[3], 0.0);
            false
        })
        .unwrap();
    }

    #[test]
    fn duplicate_and_misshapen_sources_rejected() {
        let mut st = store_with_two_sources();
        assert!(matches!(
            st.add_source(0, vec![0; 3], vec![0; 3], vec![0.0; 3]),
            Err(BdError::DuplicateSource(0))
        ));
        assert!(matches!(
            st.add_source(2, vec![0; 2], vec![0; 2], vec![0.0; 2]),
            Err(BdError::ShapeMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn update_batch_default_skips_and_counts() {
        let mut st = store_with_two_sources();
        // source 0: d[0]=0, d[1]=1 → processed; source 1: d[0]=1, d[1]=0 → processed
        let sources = st.sources();
        let mut seen = Vec::new();
        let stats = st
            .update_batch(&sources, 0, 1, &mut |s, view| {
                seen.push(s);
                if s == 0 {
                    view.delta[0] += 1.0;
                    true
                } else {
                    false
                }
            })
            .unwrap();
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(
            stats,
            BatchStats {
                skipped: 0,
                processed: 2,
                written: 1
            }
        );
        // an edge whose endpoints are equidistant from source 1 is skipped
        let stats = st
            .update_batch(&[1], 0, 2, &mut |_, _| panic!("must be skipped"))
            .unwrap();
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.processed, 0);
    }

    #[test]
    fn sources_in_insertion_order() {
        let st = store_with_two_sources();
        assert_eq!(st.sources(), vec![0, 1]);
        assert_eq!(st.num_sources(), 2);
    }

    #[test]
    fn remove_source_compacts_and_preserves_survivors() {
        let mut st = store_with_two_sources();
        st.add_source(2, vec![2, 1, 0], vec![1, 1, 1], vec![0.5, 0.25, 0.0])
            .unwrap();
        st.remove_source(0).unwrap();
        assert_eq!(st.sources(), vec![2, 1], "swap-remove order");
        assert!(matches!(
            st.peek_pair(0, 0, 1),
            Err(BdError::UnknownSource(0))
        ));
        // survivors keep their exact records
        assert_eq!(st.peek_pair(1, 0, 2).unwrap(), (1, 1));
        assert_eq!(st.peek_pair(2, 0, 2).unwrap(), (2, 0));
        // removing the last slot needs no index fixup
        st.remove_source(1).unwrap();
        assert_eq!(st.sources(), vec![2]);
        assert!(matches!(
            st.remove_source(9),
            Err(BdError::UnknownSource(9))
        ));
    }

    #[test]
    fn slab_restride_survives_interleaved_grow_and_remove() {
        // Rows are strided in shared slabs; growing re-strides in place and
        // removal memmoves the tail row. Interleave both and check every
        // surviving record cell against an independently maintained model.
        type ModelRow = (VertexId, Vec<u32>, Vec<u64>, Vec<f64>);
        let mut st = MemoryBdStore::new(2);
        let mut model: Vec<ModelRow> = Vec::new();
        for s in 0..6u32 {
            let d: Vec<u32> = (0..st.n() as u32).map(|v| v + s).collect();
            let sig: Vec<u64> = (0..st.n() as u64).map(|v| v + 10 * s as u64 + 1).collect();
            let del: Vec<f64> = (0..st.n()).map(|v| v as f64 + s as f64 / 4.0).collect();
            st.add_source(s, d.clone(), sig.clone(), del.clone())
                .unwrap();
            model.push((s, d, sig, del));
            if s % 2 == 1 {
                st.grow_vertex().unwrap();
                for r in &mut model {
                    r.1.push(UNREACHABLE);
                    r.2.push(0);
                    r.3.push(0.0);
                }
            }
            if s == 3 {
                st.remove_source(1).unwrap();
                model.retain(|r| r.0 != 1);
            }
        }
        for (s, d, sig, del) in &model {
            st.update_with(*s, &mut |view| {
                assert_eq!(view.d, &d[..], "d row of source {s}");
                assert_eq!(view.sigma, &sig[..], "sigma row of source {s}");
                assert_eq!(view.delta, &del[..], "delta row of source {s}");
                false
            })
            .unwrap();
        }
        let mut buf = vec![99; 4];
        st.sources_into(&mut buf);
        assert_eq!(buf, st.sources());
    }

    #[test]
    fn export_source_hands_back_the_record_and_removes_it() {
        let mut st = store_with_two_sources();
        let rec = st.export_source(0, 7).unwrap();
        assert_eq!(rec.source, 0);
        assert_eq!(rec.d, vec![0, 1, 2]);
        assert_eq!(rec.sigma, vec![1, 1, 1]);
        assert_eq!(rec.delta, vec![2.0, 1.0, 0.0]);
        assert_eq!(st.sources(), vec![1], "export removes the source");
        // re-importing on another store round-trips
        let mut other = MemoryBdStore::new(3);
        other
            .add_source(rec.source, rec.d, rec.sigma, rec.delta)
            .unwrap();
        assert_eq!(other.peek_pair(0, 1, 2).unwrap(), (1, 2));
        // retiring an export that left no journal is a no-op
        st.retire_export(0).unwrap();
    }
}
