//! Static Brandes baselines (step 1 of the framework) computing vertex and
//! edge betweenness simultaneously.
//!
//! Two variants are provided, mirroring the paper's §6.1 comparison:
//!
//! * **MO** (*memory, no predecessor lists*): the search phase stores only
//!   `d` and `σ`; the backtracking phase scans *all* neighbours of a vertex
//!   and selects DAG successors by level (`d[x] == d[w] + 1`). This is both
//!   the paper's optimization (§3, "Memory optimisation") and the exact
//!   accumulation-order contract the incremental kernel relies on: a vertex's
//!   dependency is always the sum over its DAG successors *in adjacency
//!   order*, which makes unchanged values bitwise-reproducible.
//! * **MP** (*memory, predecessor lists*): the classic Brandes formulation
//!   that materialises `P_s[v]` during the BFS — kept as the baseline that
//!   Figure 5 compares against.
//!
//! Both produce identical scores up to floating-point summation order.

use crate::scores::Scores;
use ebc_graph::{Graph, GraphView, VertexId, UNREACHABLE};

/// Per-source data produced by one Brandes iteration — exactly the paper's
/// `BD[s]` record: distance, number of shortest paths, and dependency for
/// every vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceResult {
    /// BFS distance from the source ([`UNREACHABLE`] if disconnected).
    pub d: Vec<u32>,
    /// Number of shortest paths from the source (0 if unreachable).
    pub sigma: Vec<u64>,
    /// Accumulated dependency `δ_s(v)`.
    pub delta: Vec<f64>,
}

/// Reusable scratch for repeated single-source iterations.
#[derive(Debug, Default)]
pub struct BrandesScratch {
    dist: Vec<u32>,
    sigma: Vec<u64>,
    delta: Vec<f64>,
    /// Vertices in BFS discovery order (levels are non-decreasing).
    order: Vec<VertexId>,
}

impl BrandesScratch {
    /// Scratch sized for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        BrandesScratch {
            dist: vec![UNREACHABLE; n],
            sigma: vec![0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
        }
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, UNREACHABLE);
        self.sigma.clear();
        self.sigma.resize(n, 0);
        self.delta.clear();
        self.delta.resize(n, 0.0);
        self.order.clear();
    }
}

/// BFS phase: fill `dist`, `sigma`, and the discovery `order`.
pub(crate) fn sssp_mo<G: GraphView>(g: &G, s: VertexId, scratch: &mut BrandesScratch) {
    scratch.reset(g.n());
    scratch.dist[s as usize] = 0;
    scratch.sigma[s as usize] = 1;
    scratch.order.push(s);
    let mut head = 0usize;
    while head < scratch.order.len() {
        let v = scratch.order[head];
        head += 1;
        let dv = scratch.dist[v as usize];
        for h in g.neighbors(v) {
            let w = h.to as usize;
            if scratch.dist[w] == UNREACHABLE {
                scratch.dist[w] = dv + 1;
                scratch.order.push(h.to);
            }
            if scratch.dist[w] == dv + 1 {
                scratch.sigma[w] = scratch.sigma[w].saturating_add(scratch.sigma[v as usize]);
            }
        }
    }
}

/// Predecessor-free dependency accumulation in *reverse BFS order*, pulling
/// each vertex's dependency from its DAG successors in adjacency order, and
/// folding the per-source contributions into `scores`.
pub(crate) fn accumulate_mo<G: GraphView>(
    g: &G,
    s: VertexId,
    scratch: &mut BrandesScratch,
    scores: &mut Scores,
) {
    for idx in (0..scratch.order.len()).rev() {
        let w = scratch.order[idx];
        let dw = scratch.dist[w as usize];
        let sw = scratch.sigma[w as usize] as f64;
        let mut dep = 0.0;
        for h in g.neighbors(w) {
            let x = h.to as usize;
            if scratch.dist[x] == dw + 1 {
                let c = sw / scratch.sigma[x] as f64 * (1.0 + scratch.delta[x]);
                dep += c;
                scores.ebc[h.eid as usize] += c;
            }
        }
        scratch.delta[w as usize] = dep;
        if w != s {
            scores.vbc[w as usize] += dep;
        }
    }
}

/// One full source iteration of the predecessor-free algorithm: accumulates
/// this source's VBC/EBC contributions into `scores` and returns the `BD[s]`
/// arrays for storage (step 1 of the framework, Figure 1).
pub fn single_source_update<G: GraphView>(g: &G, s: VertexId, scores: &mut Scores) -> SourceResult {
    let mut scratch = BrandesScratch::new(g.n());
    single_source_update_with(g, s, scores, &mut scratch)
}

/// [`single_source_update`] with caller-provided scratch (hot loop variant).
pub fn single_source_update_with<G: GraphView>(
    g: &G,
    s: VertexId,
    scores: &mut Scores,
    scratch: &mut BrandesScratch,
) -> SourceResult {
    sssp_mo(g, s, scratch);
    accumulate_mo(g, s, scratch, scores);
    SourceResult {
        d: scratch.dist.clone(),
        sigma: scratch.sigma.clone(),
        delta: scratch.delta.clone(),
    }
}

/// Full predecessor-free Brandes (MO): VBC and EBC for every vertex and edge.
///
/// `O(nm)` time, `O(n + m)` working space beyond the output.
pub fn brandes<G: GraphView>(g: &G) -> Scores {
    let mut scores = Scores::zeros(g.n(), g.edge_slots());
    let mut scratch = BrandesScratch::new(g.n());
    for s in 0..g.n() as VertexId {
        sssp_mo(g, s, &mut scratch);
        accumulate_mo(g, s, &mut scratch, &mut scores);
    }
    scores
}

/// Classic Brandes with predecessor lists (MP): the baseline the paper's
/// Figure 5 compares against. Identical output to [`brandes`] up to
/// floating-point summation order.
pub fn brandes_with_predecessors(g: &Graph) -> Scores {
    let n = g.n();
    let mut scores = Scores::zeros_for(g);
    let mut dist = vec![UNREACHABLE; n];
    let mut sigma = vec![0u64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);

    for s in g.vertices() {
        for v in 0..n {
            dist[v] = UNREACHABLE;
            sigma[v] = 0;
            delta[v] = 0.0;
            preds[v].clear();
        }
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1;
        order.push(s);
        let mut head = 0usize;
        while head < order.len() {
            let v = order[head];
            head += 1;
            let dv = dist[v as usize];
            for h in g.neighbors(v) {
                let w = h.to as usize;
                if dist[w] == UNREACHABLE {
                    dist[w] = dv + 1;
                    order.push(h.to);
                }
                if dist[w] == dv + 1 {
                    sigma[w] = sigma[w].saturating_add(sigma[v as usize]);
                    preds[w].push((v, h.eid));
                }
            }
        }
        for idx in (0..order.len()).rev() {
            let w = order[idx];
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize] as f64;
            for &(v, eid) in &preds[w as usize] {
                let c = sigma[v as usize] as f64 * coeff;
                delta[v as usize] += c;
                scores.ebc[eid as usize] += c;
            }
            if w != s {
                scores.vbc[w as usize] += delta[w as usize];
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1).unwrap();
        }
        g
    }

    #[test]
    fn path_graph_vbc() {
        // P4: 0-1-2-3. Ordered-pair VBC of vertex 1: pairs (0,2),(0,3),(2,0),
        // (3,0),(3,2)? — middle vertices lie on all paths crossing them.
        let g = path(4);
        let s = brandes(&g);
        // vertex 1 is interior to pairs {0}×{2,3} and back => 4 ordered pairs
        assert_eq!(s.vbc, vec![0.0, 4.0, 4.0, 0.0]);
        // edge (0,1) carries pairs 0×{1,2,3} both directions = 6
        assert_eq!(s.ebc_of(&g, 0, 1), Some(6.0));
        assert_eq!(s.ebc_of(&g, 1, 2), Some(8.0));
    }

    #[test]
    fn star_graph_vbc() {
        // star with centre 0 and 4 leaves: centre carries all 4*3 leaf pairs.
        let mut g = Graph::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf).unwrap();
        }
        let s = brandes(&g);
        assert_eq!(s.vbc[0], 12.0);
        for leaf in 1..5 {
            assert_eq!(s.vbc[leaf], 0.0);
            // each spoke carries pairs leaf×{everything else} twice = 2*4
            assert_eq!(s.ebc_of(&g, 0, leaf as u32), Some(8.0));
        }
    }

    #[test]
    fn cycle_graph_even() {
        // C4: every vertex lies on one of the two shortest paths between the
        // opposite pair: σ=2, contribution 1/2 per ordered pair (2 pairs) = 1.
        let mut g = Graph::with_vertices(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4).unwrap();
        }
        let s = brandes(&g);
        for v in 0..4 {
            assert!((s.vbc[v] - 1.0).abs() < 1e-12, "vbc[{v}] = {}", s.vbc[v]);
        }
    }

    #[test]
    fn disconnected_pairs_do_not_count() {
        let mut g = path(3);
        g.add_vertex(); // isolated vertex 3
        let s = brandes(&g);
        assert_eq!(s.vbc, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn mp_and_mo_agree() {
        // deterministic pseudo-random graph
        let mut g = Graph::with_vertices(30);
        let mut x = 12345u64;
        for _ in 0..80 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 30) as u32;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 30) as u32;
            if u != v {
                let _ = g.add_edge(u, v);
            }
        }
        let mo = brandes(&g);
        let mp = brandes_with_predecessors(&g);
        assert!(mo.max_vbc_diff(&mp) < 1e-9);
        assert!(mo.max_ebc_diff(&mp, &g) < 1e-9);
    }

    #[test]
    fn single_source_matches_full_run() {
        let g = path(5);
        let mut by_source = Scores::zeros_for(&g);
        for s in g.vertices() {
            let _ = single_source_update(&g, s, &mut by_source);
        }
        let full = brandes(&g);
        assert!(by_source.max_vbc_diff(&full) < 1e-12);
    }

    #[test]
    fn source_result_contents() {
        let g = path(3);
        let mut sc = Scores::zeros_for(&g);
        let r = single_source_update(&g, 0, &mut sc);
        assert_eq!(r.d, vec![0, 1, 2]);
        assert_eq!(r.sigma, vec![1, 1, 1]);
        // δ_0(1) = 1 (vertex 2 depends on 1), δ_0(2) = 0
        assert_eq!(r.delta[1], 1.0);
        assert_eq!(r.delta[2], 0.0);
    }

    #[test]
    fn vbc_sum_equals_pair_dependency_total() {
        // Σ_v VBC(v) = Σ_{s≠t} (number of interior vertices weighted) — for a
        // tree every pair contributes (dist-1) interior vertices.
        let g = path(5);
        let s = brandes(&g);
        let total: f64 = s.vbc.iter().sum();
        // ordered pairs at distance k contribute k-1 each: pairs by distance:
        // d=1:8, d=2:6, d=3:4, d=4:2 -> total = 6*1+4*2+2*3 = 20
        assert!((total - 20.0).abs() < 1e-9);
    }
}
