//! Directed betweenness centrality.
//!
//! The paper's framework "can also work on directed graphs by following
//! outlinks in the search phase and inlinks in the backtracking phase" (§3).
//! This module provides the directed static baseline — the bootstrap such a
//! deployment would use — with the same predecessor-free, pull-in-adjacency-
//! order accumulation as the undirected [`brandes`](crate::brandes::brandes):
//! the search follows outlinks, and the backtracking pulls each vertex's
//! dependency from its out-neighbours one level deeper (which is exactly the
//! inlink relation read from the other side).

use crate::scores::Scores;
use ebc_graph::{DiGraph, VertexId, UNREACHABLE};

/// Per-source iteration on a directed graph, accumulating VBC and per-arc
/// EBC contributions into `scores`. Returns the `BD[s]` arrays.
pub fn single_source_directed(
    g: &DiGraph,
    s: VertexId,
    scores: &mut Scores,
) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
    let n = g.n();
    let mut dist = vec![UNREACHABLE; n];
    let mut sigma = vec![0u64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    dist[s as usize] = 0;
    sigma[s as usize] = 1;
    order.push(s);
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        let dv = dist[v as usize];
        for h in g.out_neighbors(v) {
            let w = h.to as usize;
            if dist[w] == UNREACHABLE {
                dist[w] = dv + 1;
                order.push(h.to);
            }
            if dist[w] == dv + 1 {
                sigma[w] = sigma[w].saturating_add(sigma[v as usize]);
            }
        }
    }
    for idx in (0..order.len()).rev() {
        let w = order[idx];
        let dw = dist[w as usize];
        let sw = sigma[w as usize] as f64;
        let mut dep = 0.0;
        for h in g.out_neighbors(w) {
            let x = h.to as usize;
            if dist[x] == dw + 1 {
                let c = sw / sigma[x] as f64 * (1.0 + delta[x]);
                dep += c;
                scores.ebc[h.eid as usize] += c;
            }
        }
        delta[w as usize] = dep;
        if w != s {
            scores.vbc[w as usize] += dep;
        }
    }
    (dist, sigma, delta)
}

/// Directed Brandes: exact vertex and arc betweenness over ordered pairs
/// `(s, t)` connected by directed shortest paths. `O(nm)` time.
pub fn brandes_directed(g: &DiGraph) -> Scores {
    let mut scores = Scores::zeros(g.n(), g.arc_slots());
    for s in g.vertices() {
        let _ = single_source_directed(g, s, &mut scores);
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_path_counts_one_direction_only() {
        // 0 -> 1 -> 2: only the forward pairs exist.
        let g = DiGraph::from_arcs([(0, 1), (1, 2)]);
        let s = brandes_directed(&g);
        // vertex 1 is interior only for the ordered pair (0, 2)
        assert_eq!(s.vbc, vec![0.0, 1.0, 0.0]);
        let e01 = g.arc_id(0, 1).unwrap();
        // arc (0,1) carries pairs (0,1) and (0,2)
        assert_eq!(s.ebc[e01 as usize], 2.0);
    }

    #[test]
    fn directed_cycle_is_symmetric() {
        let g = DiGraph::from_arcs([(0, 1), (1, 2), (2, 0)]);
        let s = brandes_directed(&g);
        // every vertex is interior to exactly one ordered pair (the long way
        // around), e.g. 1 interior to (0, 2)? 0->1->2 is the only 0~>2 path.
        for v in 0..3 {
            assert_eq!(s.vbc[v], 1.0, "vbc[{v}]");
        }
    }

    #[test]
    fn antiparallel_arcs_score_independently() {
        let g = DiGraph::from_arcs([(0, 1), (1, 0), (1, 2), (2, 1)]);
        let s = brandes_directed(&g);
        let f = g.arc_id(0, 1).unwrap();
        let b = g.arc_id(1, 0).unwrap();
        // forward arc carries (0,1),(0,2); backward carries (1,0),(2,0)
        assert_eq!(s.ebc[f as usize], 2.0);
        assert_eq!(s.ebc[b as usize], 2.0);
        assert_eq!(s.vbc[1], 2.0);
    }

    #[test]
    fn dag_diamond_splits_paths() {
        // 0 -> {1,2} -> 3: two shortest 0~>3 paths.
        let g = DiGraph::from_arcs([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let s = brandes_directed(&g);
        assert_eq!(s.vbc[1], 0.5);
        assert_eq!(s.vbc[2], 0.5);
        assert_eq!(s.vbc[3], 0.0);
    }

    #[test]
    fn matches_undirected_when_symmetrised() {
        // A digraph with every edge in both directions must reproduce the
        // undirected scores exactly.
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)];
        let mut dg = DiGraph::with_vertices(4);
        let mut ug = ebc_graph::Graph::with_vertices(4);
        for (u, v) in edges {
            dg.add_arc(u, v).unwrap();
            dg.add_arc(v, u).unwrap();
            ug.add_edge(u, v).unwrap();
        }
        let ds = brandes_directed(&dg);
        let us = crate::brandes::brandes(&ug);
        for v in 0..4 {
            assert!((ds.vbc[v] - us.vbc[v]).abs() < 1e-9, "vbc[{v}]");
        }
        // arc pair (u->v) + (v->u) must sum to the undirected edge's EBC
        for (u, v) in edges {
            let fwd = ds.ebc[dg.arc_id(u, v).unwrap() as usize];
            let bwd = ds.ebc[dg.arc_id(v, u).unwrap() as usize];
            let und = us.ebc_of(&ug, u, v).unwrap();
            assert!((fwd + bwd - und).abs() < 1e-9, "edge ({u},{v})");
        }
    }
}
