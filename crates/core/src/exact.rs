//! Partition-invariant exact score reduction.
//!
//! Floating-point addition is not associative, so summing per-worker partial
//! score vectors (the paper's reduce step) yields last-bit differences that
//! depend on how sources were partitioned: `(Σ Π_0) + (Σ Π_1)` rounds
//! differently from a single machine's flat fold over all sources. That
//! makes "the cluster matches the single-machine state" only an
//! epsilon-level statement — too weak to pin aggressive engine refactors.
//!
//! This module provides a reduction whose result is **bitwise independent of
//! the partitioning**, built on two facts:
//!
//! 1. **Per-source contributions are derivable from `BD[s]` alone.** The
//!    predecessor-free accumulation stores `δ_s(v)` exactly as the value it
//!    added to `VBC(v)`, and an edge `{a, b}` with `d_s[b] == d_s[a] + 1`
//!    received exactly `σ_s(a)/σ_s(b) · (1 + δ_s(b))` — the same expression,
//!    over the same stored operands, on every replica. Because the
//!    incremental kernel updates each `BD[s]` as a pure function of
//!    `(graph, BD[s], update)`, the records — and hence the derived leaf
//!    contributions — are identical no matter which worker owns the source.
//! 2. **A fixed combination tree removes order sensitivity.** Leaves (one
//!    per source id) are combined up a perfect binary tree over
//!    `[0, padded_sources(n))` whose shape depends only on `n`. Any
//!    contiguous range of sources decomposes into `O(log n)` canonical
//!    subtrees ([`tree_segments`]); combining those segments bottom-up
//!    ([`assemble`]) performs, node for node, the same `f64` additions as a
//!    single machine evaluating the whole tree — so every configuration
//!    produces the same bits at the root.
//!
//! The engine's fast reduce (summing incrementally-maintained partials)
//! remains the paper-faithful `t_M` path; this module is the oracle the
//! parallel-consistency suite pins it against.

use crate::bd::{BdResult, BdStore};
use crate::scores::Scores;
use ebc_graph::{GraphView, VertexId, UNREACHABLE};
use std::ops::Range;

/// Number of leaves of the fixed reduction tree for `n` sources: the next
/// power of two (at least 1). Leaves `>= n` are virtual and contribute
/// nothing; subtrees that lie entirely beyond `n` are skipped, a decision
/// that depends only on `(node, n)` and is therefore partition-independent.
pub fn padded_sources(n: usize) -> u32 {
    (n.max(1) as u32).next_power_of_two()
}

/// A leaf generator: fill the (zeroed, full-shape) `Scores` with source
/// `s`'s exact contribution. Fallible so out-of-core stores can surface I/O
/// errors.
pub type LeafFn<'a> = &'a mut dyn FnMut(VertexId, &mut Scores) -> BdResult<()>;

/// One canonical segment of the fixed reduction tree: the combined scores of
/// the subtree spanning sources `[lo, hi)` (`hi - lo` is a power of two).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSegment {
    /// First source id covered by the subtree.
    pub lo: u32,
    /// One past the last source id covered (may exceed the real source
    /// count; the overhang is virtual).
    pub hi: u32,
    /// The subtree's combined contribution.
    pub scores: Scores,
}

/// Derive source `s`'s exact score contribution from its stored `BD[s]`
/// record into `out` (which must be zeroed and shaped for `g`).
///
/// Bitwise identical to what one `accumulate_mo` pass for `s` adds to the
/// global scores: `VBC` gets the stored dependency `δ_s(v)` verbatim
/// (`v ≠ s`), and each tree edge of the SSSP DAG gets
/// `σ(pred)/σ(succ) · (1 + δ(succ))` — evaluated with the same operation
/// order as the accumulation loop.
pub fn source_contribution<G: GraphView>(
    g: &G,
    s: VertexId,
    d: &[u32],
    sigma: &[u64],
    delta: &[f64],
    out: &mut Scores,
) {
    out.vbc[..g.n()].copy_from_slice(&delta[..g.n()]);
    out.vbc[s as usize] = 0.0;
    // Per-edge work is a slot *assignment*, so the visit order difference
    // between `Graph` (hash map) and `CsrView` (segment scan) is immaterial.
    g.for_each_edge(|a, b, eid| {
        let (da, db) = (d[a as usize], d[b as usize]);
        if da == UNREACHABLE || db == UNREACHABLE {
            return;
        }
        let c = if db == da + 1 {
            sigma[a as usize] as f64 / sigma[b as usize] as f64 * (1.0 + delta[b as usize])
        } else if da == db + 1 {
            sigma[b as usize] as f64 / sigma[a as usize] as f64 * (1.0 + delta[a as usize])
        } else {
            return;
        };
        out.ebc[eid as usize] = c;
    });
}

/// Value of tree node `[lo, hi)` (`hi - lo` a power of two): leaves from
/// `leaf`, children combined left-then-right, fully-virtual right subtrees
/// skipped.
fn node_value(
    lo: u32,
    hi: u32,
    n: u32,
    shape: (usize, usize),
    leaf: LeafFn<'_>,
) -> BdResult<Scores> {
    if hi - lo == 1 {
        let mut out = Scores::zeros(shape.0, shape.1);
        if lo < n {
            leaf(lo, &mut out)?;
        }
        return Ok(out);
    }
    let mid = lo + (hi - lo) / 2;
    let mut left = node_value(lo, mid, n, shape, leaf)?;
    if mid < n {
        let right = node_value(mid, hi, n, shape, leaf)?;
        left.merge_from(&right);
    }
    Ok(left)
}

fn decompose(
    lo: u32,
    hi: u32,
    range: &Range<u32>,
    n: u32,
    shape: (usize, usize),
    leaf: LeafFn<'_>,
    out: &mut Vec<TreeSegment>,
) -> BdResult<()> {
    if range.end <= lo || hi <= range.start {
        return Ok(());
    }
    if range.start <= lo && hi <= range.end {
        out.push(TreeSegment {
            lo,
            hi,
            scores: node_value(lo, hi, n, shape, leaf)?,
        });
        return Ok(());
    }
    let mid = lo + (hi - lo) / 2;
    decompose(lo, mid, range, n, shape, leaf, out)?;
    decompose(mid, hi, range, n, shape, leaf, out)?;
    Ok(())
}

/// Canonical decomposition of a set of owned source ranges: for each maximal
/// contiguous run, the `O(log n)` tree nodes that exactly tile it, each with
/// its combined contribution. `n` is the current total source count and
/// `shape` the `(vertices, edge_slots)` score dimensions.
pub fn tree_segments(
    runs: &[Range<u32>],
    n: usize,
    shape: (usize, usize),
    leaf: LeafFn<'_>,
) -> BdResult<Vec<TreeSegment>> {
    let padded = padded_sources(n);
    let mut out = Vec::new();
    for run in runs {
        if run.start < run.end {
            decompose(0, padded, run, n as u32, shape, leaf, &mut out)?;
        }
    }
    Ok(out)
}

/// Canonical segments of an **arbitrary** owned-source set — a shard's view
/// of the source→shard map: sort the membership list, group it into maximal
/// contiguous runs, and decompose each run into fixed-tree segments.
///
/// Shard handoffs make owned sets non-contiguous (a shard can own
/// `{0..5, 17, 23}` after a rebalance), so segment derivation must start
/// from the membership list itself, never from an assumed contiguous
/// bootstrap range: the fixed tree guarantees the assembled root is bitwise
/// identical for *any* disjoint cover of `[0, n)`, contiguous or not.
pub fn tree_segments_of(
    sources: &[VertexId],
    n: usize,
    shape: (usize, usize),
    leaf: LeafFn<'_>,
) -> BdResult<Vec<TreeSegment>> {
    let mut sorted = sources.to_vec();
    sorted.sort_unstable();
    tree_segments(&contiguous_runs(&sorted), n, shape, leaf)
}

/// Group a sorted list of source ids into maximal contiguous runs (the input
/// to [`tree_segments`]).
pub fn contiguous_runs(sorted: &[VertexId]) -> Vec<Range<u32>> {
    let mut runs: Vec<Range<u32>> = Vec::new();
    for &s in sorted {
        match runs.last_mut() {
            Some(r) if r.end == s => r.end = s + 1,
            _ => runs.push(s..s + 1),
        }
    }
    runs
}

/// Combine canonical segments (a disjoint tile of `[0, n)` from any mix of
/// workers) into the root value, performing exactly the additions the fixed
/// tree prescribes. Returns `None` if the segments do not tile `[0, n)`.
pub fn assemble(segments: Vec<TreeSegment>, n: usize, shape: (usize, usize)) -> Option<Scores> {
    if n == 0 {
        return Some(Scores::zeros(shape.0, shape.1));
    }
    let mut map = std::collections::HashMap::with_capacity(segments.len());
    for seg in segments {
        if map.insert((seg.lo, seg.hi), seg.scores).is_some() {
            return None; // overlapping cover
        }
    }
    let padded = padded_sources(n);
    let root = assemble_node(0, padded, n as u32, &mut map)?;
    // every segment must have been consumed; leftovers overlap the cover
    if !map.is_empty() {
        return None;
    }
    Some(root)
}

fn assemble_node(
    lo: u32,
    hi: u32,
    n: u32,
    map: &mut std::collections::HashMap<(u32, u32), Scores>,
) -> Option<Scores> {
    if let Some(s) = map.remove(&(lo, hi)) {
        return Some(s);
    }
    if hi - lo == 1 {
        return None; // leaf missing from the cover
    }
    let mid = lo + (hi - lo) / 2;
    let mut left = assemble_node(lo, mid, n, map)?;
    if mid < n {
        let right = assemble_node(mid, hi, n, map)?;
        left.merge_from(&right);
    }
    Some(left)
}

/// Exact scores of a full store (the single-machine embodiment): evaluates
/// the whole fixed tree in place. Bitwise equal to [`assemble`] over any
/// partitioning's [`tree_segments`] of the same records.
pub fn exact_scores<G: GraphView, S: BdStore>(g: &G, store: &mut S) -> BdResult<Scores> {
    let n = g.n();
    let shape = (n, g.edge_slots());
    if n == 0 {
        return Ok(Scores::zeros(shape.0, shape.1));
    }
    let mut leaf = |s: VertexId, out: &mut Scores| -> BdResult<()> {
        store.update_with(s, &mut |view| {
            source_contribution(g, s, view.d, view.sigma, view.delta, out);
            false
        })?;
        Ok(())
    };
    node_value(0, padded_sources(n), n as u32, shape, &mut leaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{BetweennessState, Update};
    use crate::verify::assert_matches_scratch;
    use ebc_graph::Graph;

    fn ring_with_chords(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n {
            g.add_edge(i as u32, ((i + 1) % n) as u32).unwrap();
        }
        for i in (0..n).step_by(3) {
            let _ = g.add_edge(i as u32, ((i + n / 2) % n) as u32);
        }
        g
    }

    fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
        (
            s.vbc.iter().map(|x| x.to_bits()).collect(),
            s.ebc.iter().map(|x| x.to_bits()).collect(),
        )
    }

    #[test]
    fn exact_scores_match_brandes_within_epsilon() {
        let g = ring_with_chords(24);
        let mut st = BetweennessState::new(&g);
        st.apply(Update::add(0, 5)).unwrap();
        st.apply(Update::remove(1, 2)).unwrap();
        let exact = st.exact_scores().unwrap();
        assert_matches_scratch(st.graph(), &exact, 1e-6, "exact reduce");
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // runs really are range lists
    fn any_partitioning_assembles_to_the_same_bits() {
        let g = ring_with_chords(21);
        let mut st = BetweennessState::new(&g);
        st.apply(Update::add(2, 9)).unwrap();
        let reference = st.exact_scores().unwrap();
        let (g2, n) = (st.graph().clone(), st.graph().n());
        let shape = (n, g2.edge_slots());
        // every 2-way split point, plus a 3-way split
        let mut cuts: Vec<Vec<u32>> = (1..n as u32).map(|c| vec![c]).collect();
        cuts.push(vec![5, 13]);
        for cut in cuts {
            let mut bounds = vec![0u32];
            bounds.extend(&cut);
            bounds.push(n as u32);
            let mut segments = Vec::new();
            for w in bounds.windows(2) {
                let runs = [w[0]..w[1]];
                let mut leaf = |s: VertexId, out: &mut Scores| -> BdResult<()> {
                    st.store_mut().update_with(s, &mut |view| {
                        source_contribution(&g2, s, view.d, view.sigma, view.delta, out);
                        false
                    })?;
                    Ok(())
                };
                segments.extend(tree_segments(&runs, n, shape, &mut leaf).unwrap());
            }
            let total = assemble(segments, n, shape).expect("complete cover");
            assert_eq!(bits(&total), bits(&reference), "cut {cut:?} diverged");
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // runs really are range lists
    fn incomplete_or_overlapping_covers_rejected() {
        let g = ring_with_chords(9);
        let mut st = BetweennessState::new(&g);
        let n = g.n();
        let shape = (n, g.edge_slots());
        let mut leaf = |s: VertexId, out: &mut Scores| -> BdResult<()> {
            st.store_mut().update_with(s, &mut |view| {
                source_contribution(&g, s, view.d, view.sigma, view.delta, out);
                false
            })?;
            Ok(())
        };
        let partial = tree_segments(&[0..5], n, shape, &mut leaf).unwrap();
        assert!(assemble(partial, n, shape).is_none(), "hole not detected");
        let mut doubled = tree_segments(&[0..n as u32], n, shape, &mut leaf).unwrap();
        doubled.extend(tree_segments(&[2..3], n, shape, &mut leaf).unwrap());
        assert!(
            assemble(doubled, n, shape).is_none(),
            "overlap not detected"
        );
    }

    #[test]
    fn scattered_ownership_assembles_to_the_same_bits() {
        // a handoff-shaped cover: shard A owns {0..9} minus {2, 6} plus
        // {13}, shard B owns the complement — still bit-identical
        let g = ring_with_chords(18);
        let mut st = BetweennessState::new(&g);
        st.apply(Update::add(0, 7)).unwrap();
        let reference = st.exact_scores().unwrap();
        let (g2, n) = (st.graph().clone(), st.graph().n());
        let shape = (n, g2.edge_slots());
        let a: Vec<u32> = (0..9).filter(|s| *s != 2 && *s != 6).chain([13]).collect();
        let b: Vec<u32> = (0..n as u32).filter(|s| !a.contains(s)).collect();
        let mut segments = Vec::new();
        for owned in [a, b] {
            let mut leaf = |s: VertexId, out: &mut Scores| -> BdResult<()> {
                st.store_mut().update_with(s, &mut |view| {
                    source_contribution(&g2, s, view.d, view.sigma, view.delta, out);
                    false
                })?;
                Ok(())
            };
            segments.extend(tree_segments_of(&owned, n, shape, &mut leaf).unwrap());
        }
        let total = assemble(segments, n, shape).expect("complete cover");
        assert_eq!(bits(&total), bits(&reference), "scattered cover diverged");
    }

    #[test]
    fn contiguous_runs_split_on_gaps() {
        assert_eq!(
            contiguous_runs(&[0, 1, 2, 5, 6, 9]),
            vec![0..3, 5..7, 9..10]
        );
        assert!(contiguous_runs(&[]).is_empty());
    }

    #[test]
    fn padded_sources_rounds_up() {
        assert_eq!(padded_sources(0), 1);
        assert_eq!(padded_sources(1), 1);
        assert_eq!(padded_sources(5), 8);
        assert_eq!(padded_sources(64), 64);
    }
}
