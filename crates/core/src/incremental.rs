//! The per-source incremental update kernel — the paper's Algorithms 1–10.
//!
//! Given one edge addition or removal, [`update_source`] brings a single
//! source's `BD[s] = {d, σ, δ}` record and the global VBC/EBC scores up to
//! date. The framework (and its parallel embodiment) simply runs this kernel
//! for every source, skipping sources where both endpoints sit at the same
//! distance (`dd == 0`, Proposition 3.1).
//!
//! ## Relation to the paper's pseudocode
//!
//! The published Algorithms 2–10 enumerate the case analysis of Figure 3
//! (same level / one-level rise / multi-level rise / drop / pivots /
//! disconnection) with separate code paths. We implement the same
//! computation as two uniform phases (see `DESIGN.md` §3 for the
//! derivation and the equivalence argument):
//!
//! * **Phase A — structure repair.** Compute new distances `d′` for the
//!   affected region (partial BFS "decrease" for additions; for removals a
//!   multi-source bucket BFS over the old sub-DAG under `uL`, seeded at the
//!   boundary — the seeds with unchanged distance are exactly the paper's
//!   *pivots*), then recompute `σ′` level by level. The *touched set* `T` is
//!   every vertex whose `d` or `σ` changed; the disconnected-component case
//!   falls out naturally as `d′ = ∞`.
//! * **Phase B — dependency re-accumulation.** Process touched vertices
//!   deepest-level first through bucket queues (the paper's `LQ[·]`). Each
//!   popped vertex *pulls* its new dependency from its new-DAG successors in
//!   adjacency order — the identical summation the predecessor-free
//!   bootstrap uses, so untouched subtrees reproduce bitwise — while edge
//!   scores receive one net `c − α` correction per scanned pair (`c` from
//!   the new DAG, `α` recomputed from the old arrays), covering all
//!   reconfiguration cases of Figure 3 without per-case code and cancelling
//!   exactly when nothing changed. New-DAG predecessors of every popped
//!   vertex are enqueued in turn (the paper's `UP` fringe, Algorithm 3),
//!   carrying corrections up to the source.

use crate::bd::SourceViewMut;
use crate::scores::Scores;
use ebc_graph::{EdgeKey, EdgeOp, GraphView, VertexId, UNREACHABLE};

/// Tuning knobs for the update kernel.
#[derive(Debug, Clone, Default)]
pub struct UpdateConfig {
    /// When `true`, a popped vertex that is outside the touched set and whose
    /// recomputed dependency is bitwise-identical to the stored one does not
    /// enqueue its predecessors, cutting the ancestor walk short. The paper's
    /// Algorithm 3 always walks corrections up to the source (`false`).
    /// Pruning is exact because bootstrap and kernel share the same
    /// pull-in-adjacency-order summation (see module docs); it is exposed as
    /// an ablation for the benchmark suite.
    pub prune_unchanged: bool,
    /// When `true`, the kernel additionally maintains materialised
    /// predecessor lists for every vertex it touches — the bookkeeping the
    /// paper's *MP* configuration (and Green et al.'s algorithm) pays and
    /// that the predecessor-free design eliminates (§3 "Memory
    /// optimisation"). Scores are unaffected; this knob exists so the
    /// Figure 5 MP-vs-MO comparison measures a faithful cost model.
    pub maintain_predecessors: bool,
}

/// Counters describing how much work updates performed (reset explicitly).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Sources processed beyond the `dd == 0` skip.
    pub sources_processed: u64,
    /// Sources skipped by Proposition 3.1 (`dd == 0`).
    pub sources_skipped: u64,
    /// Vertices whose `d` or `σ` changed (|T| summed over sources).
    pub touched: u64,
    /// Vertices popped in the dependency-accumulation phase.
    pub popped: u64,
}

const F_ND: u8 = 1; // nd assigned (phase A distance candidate/final)
const F_SIG: u8 = 2; // nsig assigned
const F_T: u8 = 4; // in touched set T (d or σ changed)
const F_ENQ: u8 = 8; // enqueued in a phase-B queue
const F_POP: u8 = 16; // dependency finalised in ndel
const F_R: u8 = 32; // member of the removal region R
const F_PEND: u8 = 64; // scheduled for σ recomputation

/// Bucket queue over BFS levels with stable cursors (no reallocation between
/// pushes and pops at the same level, which phase B relies on).
#[derive(Debug, Default)]
struct BucketQueue {
    buckets: Vec<Vec<u32>>,
    heads: Vec<usize>,
    used: Vec<u32>,
    max_used: u32,
}

impl BucketQueue {
    fn ensure(&mut self, levels: usize) {
        if self.buckets.len() < levels {
            self.buckets.resize_with(levels, Vec::new);
            self.heads.resize(levels, 0);
        }
    }

    #[inline]
    fn push(&mut self, level: u32, v: u32) {
        self.buckets[level as usize].push(v);
        self.used.push(level);
        self.max_used = self.max_used.max(level);
    }

    #[inline]
    fn pop(&mut self, level: u32) -> Option<u32> {
        let l = level as usize;
        if self.heads[l] < self.buckets[l].len() {
            let v = self.buckets[l][self.heads[l]];
            self.heads[l] += 1;
            Some(v)
        } else {
            None
        }
    }

    fn reset(&mut self) {
        for &l in &self.used {
            self.buckets[l as usize].clear();
            self.heads[l as usize] = 0;
        }
        self.used.clear();
        self.max_used = 0;
    }
}

/// Reusable per-worker scratch. All per-vertex state is epoch-stamped so a
/// fresh update clears in O(1); capacity grows with the graph.
#[derive(Debug, Default)]
pub struct Workspace {
    epoch: u32,
    stamp: Vec<u32>,
    flags: Vec<u8>,
    nd: Vec<u32>,
    nsig: Vec<u64>,
    ndel: Vec<f64>,
    /// Every vertex stamped this epoch (drives the final write-back).
    touched_list: Vec<u32>,
    /// Vertices in T (subset of `touched_list`).
    t_list: Vec<u32>,
    /// Vertices with a new (changed or tentative) distance.
    moved: Vec<u32>,
    region: Vec<u32>,
    queue: Vec<u32>,
    inf_bucket: Vec<u32>,
    bq: BucketQueue,
    lq: BucketQueue,
    /// Materialised predecessor lists (only populated under
    /// [`UpdateConfig::maintain_predecessors`]).
    preds: Vec<Vec<u32>>,
    /// Vertices whose running `vbc` changed since the last
    /// [`Workspace::drain_dirty`] — the sparse feed for
    /// [`crate::rankindex::RankIndex`] maintenance. Unlike the per-update
    /// epoch state above, this survives `begin` and accumulates across
    /// updates until a publisher drains it.
    dirty: Vec<u32>,
    /// `dirty_stamp[v] == dirty_epoch + 1` marks membership in `dirty`,
    /// so re-marking a vertex is O(1) and the list stays duplicate-free.
    dirty_stamp: Vec<u32>,
    dirty_epoch: u32,
    /// Work counters for experiments.
    pub stats: UpdateStats,
}

impl Workspace {
    /// Workspace for graphs of up to `n` vertices (grows automatically).
    pub fn new(n: usize) -> Self {
        let mut ws = Workspace::default();
        ws.grow(n);
        ws
    }

    /// Ensure capacity for `n` vertices.
    pub fn grow(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.flags.resize(n, 0);
            self.nd.resize(n, 0);
            self.nsig.resize(n, 0);
            self.ndel.resize(n, 0.0);
        }
        self.bq.ensure(n + 2);
        self.lq.ensure(n + 2);
    }

    fn begin(&mut self, n: usize) {
        self.grow(n);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wrapped: invalidate all stamps
            self.stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
        self.touched_list.clear();
        self.t_list.clear();
        self.moved.clear();
        self.region.clear();
        self.queue.clear();
        self.inf_bucket.clear();
        self.bq.reset();
        self.lq.reset();
    }

    #[inline]
    fn stamped(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    #[inline]
    fn flag(&self, v: u32) -> u8 {
        if self.stamped(v) {
            self.flags[v as usize]
        } else {
            0
        }
    }

    #[inline]
    fn set_flag(&mut self, v: u32, bit: u8) {
        if !self.stamped(v) {
            self.stamp[v as usize] = self.epoch;
            self.flags[v as usize] = 0;
            self.touched_list.push(v);
        }
        self.flags[v as usize] |= bit;
    }

    /// Record that `v`'s running `vbc` changed bits. Idempotent per drain
    /// window; over-marking is harmless (the index treats a no-op change
    /// as free), under-marking is not.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, v: u32) {
        let vi = v as usize;
        if self.dirty_stamp.len() <= vi {
            self.dirty_stamp.resize(vi + 1, 0);
        }
        let tag = self.dirty_epoch.wrapping_add(1);
        if self.dirty_stamp[vi] != tag {
            self.dirty_stamp[vi] = tag;
            self.dirty.push(v);
        }
    }

    /// Take the accumulated dirty set and open a fresh drain window.
    pub(crate) fn drain_dirty(&mut self) -> Vec<u32> {
        self.dirty_epoch = self.dirty_epoch.wrapping_add(1);
        if self.dirty_epoch == u32::MAX {
            // the next membership tag would wrap onto stale stamps
            self.dirty_stamp.iter_mut().for_each(|s| *s = 0);
            self.dirty_epoch = 0;
        }
        std::mem::take(&mut self.dirty)
    }
}

/// Apply one already-performed edge update to one source's `BD[s]` record.
///
/// `g` must be the graph **after** the update; `view` holds the record from
/// **before**. Score deltas are accumulated into `scores` (which may be a
/// per-partition partial). Returns `true` iff the record changed (out-of-core
/// backends use this to decide on the write-back).
///
/// Note: for removals the caller owns zeroing/freeing the removed edge's
/// score slot once after all sources are processed — per-source subtraction
/// of a slot that is being deleted anyway would be wasted work.
#[allow(clippy::too_many_arguments)] // the kernel entry point mirrors the paper's signature
pub fn update_source<G: GraphView>(
    g: &G,
    s: VertexId,
    op: EdgeOp,
    u1: VertexId,
    u2: VertexId,
    view: SourceViewMut<'_>,
    scores: &mut Scores,
    ws: &mut Workspace,
    cfg: &UpdateConfig,
) -> bool {
    let d1 = view.d[u1 as usize];
    let d2 = view.d[u2 as usize];
    // Proposition 3.1: same distance (including both unreachable) — the edge
    // carries no shortest path from s; nothing changes.
    if d1 == d2 {
        ws.stats.sources_skipped += 1;
        return false;
    }
    ws.stats.sources_processed += 1;
    ws.begin(g.n());

    let (uh, ul) = if d1 < d2 { (u1, u2) } else { (u2, u1) };
    let added = match op {
        EdgeOp::Add => Some(EdgeKey::new(u1, u2)),
        EdgeOp::Remove => None,
    };

    {
        let mut k = Kernel {
            g,
            s,
            old_d: view.d,
            old_sig: view.sigma,
            old_del: view.delta,
            scores,
            ws,
            added,
            cfg,
        };
        match op {
            EdgeOp::Add => k.phase_a_addition(uh, ul),
            EdgeOp::Remove => k.phase_a_removal(uh, ul),
        }
        if k.ws.t_list.is_empty() {
            return false;
        }
        k.phase_b(op, uh);
    }

    // Write-back: distances and σ for structurally touched vertices, δ for
    // every popped vertex. `touched_list` covers both sets.
    for i in 0..ws.touched_list.len() {
        let v = ws.touched_list[i];
        let f = ws.flags[v as usize];
        if f & (F_ND | F_SIG) != 0 {
            if f & F_ND != 0 {
                view.d[v as usize] = ws.nd[v as usize];
            }
            if f & F_SIG != 0 {
                view.sigma[v as usize] = ws.nsig[v as usize];
            }
        }
        if f & F_POP != 0 {
            view.delta[v as usize] = ws.ndel[v as usize];
        }
    }
    true
}

struct Kernel<'a, G: GraphView> {
    g: &'a G,
    s: VertexId,
    old_d: &'a [u32],
    old_sig: &'a [u64],
    old_del: &'a [f64],
    scores: &'a mut Scores,
    ws: &'a mut Workspace,
    added: Option<EdgeKey>,
    cfg: &'a UpdateConfig,
}

impl<'a, G: GraphView> Kernel<'a, G> {
    #[inline]
    fn cur_d(&self, v: u32) -> u32 {
        if self.ws.flag(v) & F_ND != 0 {
            self.ws.nd[v as usize]
        } else {
            self.old_d[v as usize]
        }
    }

    #[inline]
    fn cur_sig(&self, v: u32) -> u64 {
        if self.ws.flag(v) & F_SIG != 0 {
            self.ws.nsig[v as usize]
        } else {
            self.old_sig[v as usize]
        }
    }

    /// Dependency of `v` as seen by a shallower vertex: the finalised new
    /// value if `v` was popped this update, otherwise the stored one.
    #[inline]
    fn delta_star(&self, v: u32) -> f64 {
        if self.ws.flag(v) & F_POP != 0 {
            self.ws.ndel[v as usize]
        } else {
            self.old_del[v as usize]
        }
    }

    #[inline]
    fn set_nd(&mut self, v: u32, d: u32) {
        self.ws.set_flag(v, F_ND);
        self.ws.nd[v as usize] = d;
    }

    #[inline]
    fn set_nsig(&mut self, v: u32, sig: u64) {
        self.ws.set_flag(v, F_SIG);
        self.ws.nsig[v as usize] = sig;
    }

    fn mark_in_t(&mut self, v: u32) {
        if self.ws.flag(v) & F_T == 0 {
            self.ws.set_flag(v, F_T);
            self.ws.t_list.push(v);
        }
    }

    fn schedule_sigma(&mut self, v: u32) {
        if self.ws.flag(v) & F_PEND == 0 {
            self.ws.set_flag(v, F_PEND);
            let lvl = self.cur_d(v);
            debug_assert_ne!(lvl, UNREACHABLE, "σ scheduling requires a finite level");
            self.ws.bq.push(lvl, v);
        }
    }

    /// Addition, structural part: distances can only decrease, and every
    /// improved path crosses the new edge and continues from `uL`, so a
    /// single bucket BFS seeded at `uL` with tentative distance `d[uH]+1`
    /// computes all new distances (covers the 0-level-rise, multi-level-rise
    /// and component-merge cases of §3.1/§4.2 uniformly).
    fn phase_a_addition(&mut self, uh: u32, ul: u32) {
        let base = self.old_d[uh as usize];
        debug_assert_ne!(base, UNREACHABLE);
        let t_new = base + 1;
        if self.old_d[ul as usize] > t_new {
            self.set_nd(ul, t_new);
            self.ws.moved.push(ul);
            self.ws.bq.push(t_new, ul);
            let mut lvl = t_new;
            while lvl <= self.ws.bq.max_used {
                while let Some(v) = self.ws.bq.pop(lvl) {
                    debug_assert_eq!(self.ws.nd[v as usize], lvl);
                    for h in self.g.neighbors(v) {
                        let w = h.to;
                        let cand = lvl + 1;
                        if cand < self.cur_d(w) {
                            debug_assert!(self.ws.flag(w) & F_ND == 0);
                            self.set_nd(w, cand);
                            self.ws.moved.push(w);
                            self.ws.bq.push(cand, w);
                        }
                    }
                }
                lvl += 1;
            }
        }
        self.ws.bq.reset();
        // σ repair: seeds are every moved vertex plus uL itself (the
        // 0-level-rise case moves nothing but still adds paths through uL).
        self.schedule_sigma(ul);
        for i in 0..self.ws.moved.len() {
            let v = self.ws.moved[i];
            self.schedule_sigma(v);
        }
        self.sigma_repair();
    }

    /// Removal, structural part. The affected region `R` is the old-DAG
    /// descendant cone of `uL` (a vertex's distance can only grow if *all*
    /// its old shortest paths used the removed edge, and such paths continue
    /// inside that cone). New distances for `R` come from a multi-source
    /// bucket BFS seeded with boundary distances `min(d[x]+1, x ∉ R)` — the
    /// seeds that keep their old distance are the paper's pivots (Def. 3.2).
    /// Unreachable results (`d′ = ∞`) are the disconnection case of §4.5.
    fn phase_a_removal(&mut self, _uh: u32, ul: u32) {
        // R discovery over old-DAG successor edges.
        self.ws.set_flag(ul, F_R);
        self.ws.region.push(ul);
        self.ws.queue.push(ul);
        let mut head = 0;
        while head < self.ws.queue.len() {
            let v = self.ws.queue[head];
            head += 1;
            let dv = self.old_d[v as usize];
            for h in self.g.neighbors(v) {
                let w = h.to;
                if self.old_d[w as usize] == dv + 1 && self.ws.flag(w) & F_R == 0 {
                    self.ws.set_flag(w, F_R);
                    self.ws.region.push(w);
                    self.ws.queue.push(w);
                }
            }
        }
        // Boundary seeds.
        for i in 0..self.ws.region.len() {
            let r = self.ws.region[i];
            let mut best = UNREACHABLE;
            for h in self.g.neighbors(r) {
                let w = h.to;
                let dw = self.old_d[w as usize];
                if self.ws.flag(w) & F_R == 0 && dw != UNREACHABLE {
                    best = best.min(dw + 1);
                }
            }
            self.set_nd(r, best);
            if best != UNREACHABLE {
                self.ws.bq.push(best, r);
            }
        }
        // Multi-source relaxation inside R (unit weights => bucket BFS).
        let mut lvl = 0u32;
        while lvl <= self.ws.bq.max_used {
            while let Some(v) = self.ws.bq.pop(lvl) {
                if self.ws.nd[v as usize] != lvl {
                    continue; // stale queue entry
                }
                for h in self.g.neighbors(v) {
                    let w = h.to;
                    if self.ws.flag(w) & F_R != 0 && lvl + 1 < self.ws.nd[w as usize] {
                        self.ws.nd[w as usize] = lvl + 1;
                        self.ws.bq.push(lvl + 1, w);
                    }
                }
            }
            lvl += 1;
        }
        self.ws.bq.reset();
        // σ repair over the whole region; unreachable members short-circuit.
        for i in 0..self.ws.region.len() {
            let r = self.ws.region[i];
            debug_assert!(self.ws.nd[r as usize] >= self.old_d[r as usize]);
            if self.ws.nd[r as usize] == UNREACHABLE {
                self.set_nsig(r, 0);
                self.mark_in_t(r);
            } else {
                self.schedule_sigma(r);
            }
        }
        self.sigma_repair();
    }

    /// Shared σ recomputation: process scheduled vertices in ascending new
    /// level, rebuilding `σ′(v) = Σ σ′(x)` over new-DAG predecessors (old
    /// values serve for untouched predecessors). Vertices whose `d` or `σ`
    /// changed enter `T` and schedule their new-DAG successors.
    fn sigma_repair(&mut self) {
        let mut lvl = 0u32;
        while lvl <= self.ws.bq.max_used {
            while let Some(v) = self.ws.bq.pop(lvl) {
                let dv = self.cur_d(v);
                debug_assert_eq!(dv, lvl);
                let mut sig: u64 = 0;
                for h in self.g.neighbors(v) {
                    let w = h.to;
                    let dw = self.cur_d(w);
                    if dw != UNREACHABLE && dw + 1 == dv {
                        sig = sig.saturating_add(self.cur_sig(w));
                    }
                }
                let changed = (self.ws.flag(v) & F_ND != 0
                    && self.ws.nd[v as usize] != self.old_d[v as usize])
                    || sig != self.old_sig[v as usize];
                self.set_nsig(v, sig);
                if changed {
                    self.mark_in_t(v);
                    for h in self.g.neighbors(v) {
                        let w = h.to;
                        let dw = self.cur_d(w);
                        if dw != UNREACHABLE && dw == dv + 1 && self.ws.flag(w) & F_PEND == 0 {
                            self.schedule_sigma(w);
                        }
                    }
                }
            }
            lvl += 1;
        }
        self.ws.bq.reset();
        self.ws.stats.touched += self.ws.t_list.len() as u64;
    }

    fn enqueue(&mut self, v: u32) {
        if self.ws.flag(v) & F_ENQ != 0 {
            return;
        }
        let lvl = self.cur_d(v);
        debug_assert_ne!(
            lvl, UNREACHABLE,
            "unreachable vertices are always in T and pre-enqueued"
        );
        self.ws.set_flag(v, F_ENQ);
        self.ws.lq.push(lvl, v);
    }

    /// Dependency re-accumulation (paper Algorithms 2/3/4/7/9/10 unified).
    fn phase_b(&mut self, op: EdgeOp, uh: u32) {
        // Seed the level queues with T; unreachable members go to a dedicated
        // bucket processed first (they are conceptually the deepest).
        for i in 0..self.ws.t_list.len() {
            let v = self.ws.t_list[i];
            self.ws.set_flag(v, F_ENQ);
            let lvl = self.cur_d(v);
            if lvl == UNREACHABLE {
                self.ws.inf_bucket.push(v);
            } else {
                self.ws.lq.push(lvl, v);
            }
        }
        if matches!(op, EdgeOp::Remove) {
            // The removed partner is no longer adjacent to uL, so the scan
            // cannot discover it: enqueue explicitly (Alg. 2 line 13).
            self.enqueue(uh);
        }
        for i in 0..self.ws.inf_bucket.len() {
            let w = self.ws.inf_bucket[i];
            self.pop_vertex(w, UNREACHABLE);
        }
        let mut lvl = self.ws.lq.max_used;
        loop {
            while let Some(w) = self.ws.lq.pop(lvl) {
                self.pop_vertex(w, lvl);
            }
            if lvl == 0 {
                break;
            }
            lvl -= 1;
        }
    }

    /// Finalise one vertex: pull the new dependency from new-DAG successors,
    /// fix edge scores against old-DAG pairs, update VBC, propagate upward.
    fn pop_vertex(&mut self, w: u32, lvl: u32) {
        debug_assert!(self.ws.flag(w) & F_POP == 0, "vertex popped twice");
        self.ws.stats.popped += 1;
        let dw_old = self.old_d[w as usize];
        let sw_new = self.cur_sig(w) as f64;
        let sw_old = self.old_sig[w as usize] as f64;
        let w_reachable = lvl != UNREACHABLE;
        let mut dep = 0.0;
        for h in self.g.neighbors(w) {
            let x = h.to;
            let dx_new = self.cur_d(x);
            let dx_old = self.old_d[x as usize];
            // (1) x is a new-DAG successor: pull dependency, credit the edge.
            // (2) x was an old-DAG successor: retract the old contribution α
            //     (skipped for the freshly added edge, which had none).
            // The two corrections land on the same edge slot, so they are
            // applied as one net `c − α` update: when nothing changed they
            // cancel *exactly* (c == α bitwise), making the pop of an
            // unchanged vertex a no-op on the scores. This is what makes the
            // `prune_unchanged` ablation bitwise-neutral (see UpdateConfig).
            let is_new_succ = w_reachable && dx_new != UNREACHABLE && dx_new == lvl + 1;
            let is_old_succ = dw_old != UNREACHABLE
                && dx_old != UNREACHABLE
                && dx_old == dw_old + 1
                && self.added != Some(EdgeKey::new(w, x));
            if !is_new_succ && !is_old_succ {
                continue;
            }
            let mut edge_correction = 0.0;
            if is_new_succ {
                let c = sw_new / self.cur_sig(x) as f64 * (1.0 + self.delta_star(x));
                dep += c;
                edge_correction += c;
            }
            if is_old_succ {
                let alpha =
                    sw_old / self.old_sig[x as usize] as f64 * (1.0 + self.old_del[x as usize]);
                edge_correction -= alpha;
            }
            self.scores.ebc[h.eid as usize] += edge_correction;
        }
        if self.cfg.maintain_predecessors {
            // MP cost model: rewrite this vertex's predecessor list the way
            // a predecessor-list algorithm must after the update.
            if self.ws.preds.len() < self.g.n() {
                self.ws.preds.resize_with(self.g.n(), Vec::new);
            }
            let mut list = std::mem::take(&mut self.ws.preds[w as usize]);
            list.clear();
            if w_reachable {
                for h in self.g.neighbors(w) {
                    let dx = self.cur_d(h.to);
                    if dx != UNREACHABLE && dx + 1 == lvl {
                        list.push(h.to);
                    }
                }
            }
            self.ws.preds[w as usize] = list;
        }
        let delta_old = self.old_del[w as usize];
        if w != self.s {
            let inc = dep - delta_old;
            self.scores.vbc[w as usize] += inc;
            // a zero increment cannot change the stored bits (vbc is never
            // -0.0: it accumulates non-negative dependencies), so only a
            // nonzero — or NaN — increment dirties the rank index feed
            if inc != 0.0 {
                self.ws.mark_dirty(w);
            }
        }
        self.ws.set_flag(w, F_POP);
        self.ws.ndel[w as usize] = dep;

        // Propagation. Pruning (exact, see UpdateConfig) may stop the
        // ancestor walk when nothing about w changed.
        let w_changed = self.ws.flag(w) & F_T != 0 || dep != delta_old;
        if self.cfg.prune_unchanged && !w_changed {
            return;
        }
        for h in self.g.neighbors(w) {
            let x = h.to;
            let dx_new = self.cur_d(x);
            if w_reachable && dx_new != UNREACHABLE && dx_new + 1 == lvl {
                // new-DAG predecessor: unconditional UP-touch (Alg. 3 line 2)
                self.enqueue(x);
            } else {
                let dx_old = self.old_d[x as usize];
                if dw_old != UNREACHABLE
                    && dx_old != UNREACHABLE
                    && dx_old + 1 == dw_old
                    && self.added != Some(EdgeKey::new(w, x))
                {
                    // x was an old-DAG predecessor but no longer is: it loses
                    // its α(x,w) contribution and must pop too. If the pair
                    // broke because x became unreachable, x is in T already.
                    if dx_new != UNREACHABLE {
                        self.enqueue(x);
                    } else {
                        debug_assert!(self.ws.flag(x) & F_ENQ != 0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bd::{BdStore, MemoryBdStore};
    use crate::brandes::{brandes, single_source_update};
    use ebc_graph::Graph;

    /// Tiny harness: bootstrap a state on `g0`, apply updates through the
    /// kernel, and compare against recomputation from scratch.
    struct Harness {
        g: Graph,
        store: MemoryBdStore,
        scores: Scores,
        ws: Workspace,
        cfg: UpdateConfig,
    }

    impl Harness {
        fn new(g: Graph) -> Self {
            Self::with_config(g, UpdateConfig::default())
        }

        fn with_config(g: Graph, cfg: UpdateConfig) -> Self {
            let mut store = MemoryBdStore::new(g.n());
            let mut scores = Scores::zeros_for(&g);
            for s in g.vertices() {
                let r = single_source_update(&g, s, &mut scores);
                store.add_source(s, r.d, r.sigma, r.delta).unwrap();
            }
            let n = g.n();
            Harness {
                g,
                store,
                scores,
                ws: Workspace::new(n),
                cfg,
            }
        }

        fn add(&mut self, u: u32, v: u32) {
            let eid = self.g.add_edge(u, v).unwrap();
            self.scores.ensure_shape(self.g.n(), self.g.edge_slots());
            self.run(EdgeOp::Add, u, v);
            let _ = eid;
        }

        fn remove(&mut self, u: u32, v: u32) {
            let eid = self.g.remove_edge(u, v).unwrap();
            self.run(EdgeOp::Remove, u, v);
            self.scores.ebc[eid as usize] = 0.0;
        }

        fn run(&mut self, op: EdgeOp, u: u32, v: u32) {
            let g = &self.g;
            let scores = &mut self.scores;
            let ws = &mut self.ws;
            let cfg = &self.cfg;
            for s in self.store.sources() {
                let (a, b) = self.store.peek_pair(s, u, v).unwrap();
                if a == b {
                    ws.stats.sources_skipped += 1;
                    continue;
                }
                self.store
                    .update_with(s, &mut |view| {
                        update_source(g, s, op, u, v, view, scores, ws, cfg)
                    })
                    .unwrap();
            }
        }

        fn check(&self, label: &str) {
            let fresh = brandes(&self.g);
            let dv = self.scores.max_vbc_diff(&fresh);
            let de = self.scores.max_ebc_diff(&fresh, &self.g);
            assert!(dv < 1e-6, "{label}: VBC diverged by {dv}");
            assert!(de < 1e-6, "{label}: EBC diverged by {de}");
        }
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1).unwrap();
        }
        g
    }

    #[test]
    fn addition_same_level_is_skipped() {
        // 0-1, 0-2: vertices 1,2 both at distance 1 from 0; adding (1,2)
        // changes nothing for source 0 — and for sources 1/2 it does.
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        let mut h = Harness::new(g);
        h.add(1, 2);
        h.check("triangle close");
        assert!(h.ws.stats.sources_skipped >= 1);
    }

    #[test]
    fn addition_zero_level_rise() {
        // dd == 1: new edge creates extra shortest paths, no level moves.
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(0, 2).unwrap();
        let mut h = Harness::new(g);
        h.add(2, 3); // 3 now reachable from 0 via 1 and via 2
        h.check("zero level rise");
    }

    #[test]
    fn addition_multi_level_rise() {
        let mut h = Harness::new(path(6));
        h.add(0, 5); // far endpoints: large structural change
        h.check("multi level rise");
    }

    #[test]
    fn addition_shortcut_middle() {
        let mut h = Harness::new(path(7));
        h.add(1, 5);
        h.check("shortcut");
        h.add(0, 3);
        h.check("second shortcut");
    }

    #[test]
    fn addition_component_merge() {
        let mut g = Graph::with_vertices(6);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(3, 4).unwrap();
        g.add_edge(4, 5).unwrap();
        let mut h = Harness::new(g);
        h.add(2, 3); // merge two paths into P6
        h.check("component merge");
    }

    #[test]
    fn removal_with_alternative_predecessor() {
        // square 0-1-2-3-0: removing one side keeps everything reachable.
        let mut g = Graph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v).unwrap();
        }
        let mut h = Harness::new(g);
        h.remove(1, 2);
        h.check("square minus side");
    }

    #[test]
    fn removal_zero_level_drop() {
        // diamond: 0-1, 0-2, 1-3, 2-3 (+ chord 1-2). Remove (1,3): 3 keeps
        // its level through 2.
        let mut g = Graph::with_vertices(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            g.add_edge(u, v).unwrap();
        }
        let mut h = Harness::new(g);
        h.remove(1, 3);
        h.check("zero level drop");
    }

    #[test]
    fn removal_multi_level_drop() {
        // path + shortcut; removing the shortcut drops a whole region.
        let mut g = path(7);
        g.add_edge(0, 4).unwrap();
        let mut h = Harness::new(g);
        h.remove(0, 4);
        h.check("multi level drop");
    }

    #[test]
    fn removal_disconnects_component() {
        let mut h = Harness::new(path(5));
        h.remove(2, 3); // splits {0,1,2} from {3,4}
        h.check("disconnect");
        h.remove(0, 1);
        h.check("disconnect again");
    }

    #[test]
    fn removal_isolates_vertex() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut h = Harness::new(g);
        h.remove(1, 2); // vertex 2 becomes a singleton
        h.check("isolate");
        assert_eq!(h.scores.vbc[2], 0.0);
    }

    #[test]
    fn add_then_remove_roundtrip_scores() {
        let g = path(6);
        let before = brandes(&g);
        let mut h = Harness::new(g);
        h.add(1, 4);
        h.remove(1, 4);
        h.check("roundtrip");
        assert!(h.scores.max_vbc_diff(&before) < 1e-6);
    }

    #[test]
    fn dense_clique_updates() {
        let mut g = Graph::with_vertices(6);
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                g.add_edge(i, j).unwrap();
            }
        }
        let mut h = Harness::new(g);
        h.remove(0, 1);
        h.check("clique minus edge");
        h.remove(0, 2);
        h.check("clique minus two");
        h.add(0, 1);
        h.check("clique restore one");
    }

    #[test]
    fn pruning_matches_unpruned() {
        let mut pruned = Harness::with_config(
            path(8),
            UpdateConfig {
                prune_unchanged: true,
                ..Default::default()
            },
        );
        pruned.add(2, 6);
        pruned.check("pruned add");
        pruned.remove(3, 4);
        pruned.check("pruned remove");
    }

    #[test]
    fn long_mixed_sequence() {
        let mut g = Graph::with_vertices(10);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (2, 7),
        ] {
            g.add_edge(u, v).unwrap();
        }
        let mut h = Harness::new(g);
        for (i, (op, u, v)) in [
            (EdgeOp::Add, 0, 9),
            (EdgeOp::Add, 3, 8),
            (EdgeOp::Remove, 2, 7),
            (EdgeOp::Add, 1, 6),
            (EdgeOp::Remove, 4, 5),
            (EdgeOp::Remove, 0, 9),
            (EdgeOp::Add, 5, 9),
            (EdgeOp::Remove, 8, 9),
        ]
        .into_iter()
        .enumerate()
        {
            match op {
                EdgeOp::Add => h.add(u, v),
                EdgeOp::Remove => h.remove(u, v),
            }
            h.check(&format!("mixed step {i}"));
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Harness::new(path(5));
        h.add(0, 4);
        let st = h.ws.stats;
        assert!(st.sources_processed > 0);
        assert!(st.popped > 0);
        assert!(st.touched > 0);
    }
}
