//! # ebc-core
//!
//! The primary contribution of *"Scalable Online Betweenness Centrality in
//! Evolving Graphs"* (Kourtellis, De Francisci Morales, Bonchi — ICDE 2016):
//! an incremental algorithm that keeps **both vertex and edge betweenness
//! centrality** up to date while edges are **added and removed**, one update
//! at a time, using only three fixed-width per-vertex arrays per source
//! (`BD[s] = {d, σ, δ}` — distance, shortest-path count, dependency) and **no
//! predecessor lists**, for `O(n²)` total space.
//!
//! ## Layout
//!
//! * [`mod@brandes`] — the static baselines: predecessor-free Brandes (the
//!   paper's *MO* variant, also used as step 1 of the framework) and the
//!   classic predecessor-list Brandes (*MP*), both producing VBC and EBC
//!   simultaneously (Brandes 2008).
//! * [`bd`] — the `BD[s]` betweenness-data abstraction: a [`bd::BdStore`]
//!   trait with an in-memory implementation (the out-of-core implementation
//!   lives in the `ebc-store` crate).
//! * [`incremental`] — the per-source update kernel (Algorithms 1–10 of the
//!   paper, re-derived in a uniform pull-based formulation; see `DESIGN.md`).
//! * [`state`] — [`BetweennessState`]: the end-to-end framework of Figure 1
//!   (bootstrap once, then stream updates).
//! * [`scores`] — score containers and merge (reduce) operations.
//! * [`api`] — the polymorphic [`api::EbcEngine`] surface (one trait over
//!   the single-machine and clustered embodiments, one [`api::Reduced`]
//!   query report, one [`api::EbcError`]) that the `streaming-bc` facade's
//!   `Session` drives.
//! * [`verify`] — recompute-from-scratch oracles for tests and experiments.

pub mod api;
pub mod approx;
pub mod bd;
pub mod brandes;
pub mod directed;
pub mod exact;
pub mod incremental;
pub mod rankindex;
pub mod ranking;
pub mod scores;
pub mod scratch;
pub mod state;
pub mod verify;

pub use api::{EbcEngine, EbcError, RebalanceOutcome, Reduced, ShardAssignment};
pub use approx::approx_betweenness;
pub use bd::{BdStore, MemoryBdStore, SourceViewMut};
pub use brandes::{brandes, brandes_with_predecessors, single_source_update};
pub use directed::brandes_directed;
pub use incremental::{update_source, UpdateConfig, UpdateStats, Workspace};
pub use rankindex::{RankIndex, ScoreDelta};
pub use scores::Scores;
pub use scratch::KernelScratch;
pub use state::{BetweennessState, StateError, Update};
