//! Incrementally maintained ordered index over centrality scores.
//!
//! The paper's closing application (§7) is online detection of emerging
//! leaders: consumers read *rankings*, not raw scores, and they read them
//! far more often than the graph changes shape at the top. [`RankIndex`]
//! keeps the full score order materialized across updates so
//! [`RankIndex::top_k`] is `O(k + log n)` and [`RankIndex::rank_of`] /
//! [`RankIndex::percentile`] are `O(log n)`, instead of the `O(n log n)`
//! re-sort of [`crate::ranking::top_k`] (which stays as the oracle the
//! index is property-tested against, bit for bit).
//!
//! ## Structure
//!
//! The order is a **persistent treap** keyed by one `u128` per vertex:
//! the high 64 bits are the bitwise *complement* of the IEEE-754
//! total-order key of the score (so ascending key order is descending
//! score order, `f64::total_cmp` exactly), the low 32 bits are the vertex
//! id (so equal scores break toward the smaller id — the same tie rule as
//! `ranking::top_k`). Heap priorities are `splitmix64(vertex)`: the
//! finalizer is a bijection on `u64`, so priorities are distinct and the
//! tree shape is a deterministic function of the key set. Nodes are
//! `Arc`-shared and every update path-copies `O(log n)` nodes, which makes
//! cloning the whole index `O(1)` — the serve layer publishes a clone
//! inside each immutable snapshot without copying `n` scores.
//!
//! Scores themselves live in a chunked copy-on-write vector
//! (`ScoreVec`) so a snapshot clone shares unchanged chunks and a
//! sparse update copies only the chunks it touches.
//!
//! ## Delta maintenance
//!
//! Producers publish [`ScoreDelta`]s: `Unchanged` (nothing moved),
//! `Sparse` (the update kernel's dirty vertices with their new scores) or
//! `Dense` (a full re-publication, e.g. right after bootstrap).
//! [`RankIndex::apply`] folds a delta in by deleting the old `(score,
//! vertex)` key and inserting the new one per changed vertex; a vertex
//! whose new bits equal its old bits is a no-op, so over-approximate
//! dirty sets are harmless. Correctness only needs the dirty set to
//! *cover* every vertex whose score bits changed.

use std::sync::Arc;

/// Chunk size of the copy-on-write score vector. Small enough that a
/// sparse update copies little, large enough that the `Arc` directory
/// stays tiny (`n / 512` pointers).
const CHUNK: usize = 512;

/// What changed in the published score vector since the last drain.
#[derive(Clone, Debug, PartialEq)]
pub enum ScoreDelta {
    /// No score changed bits; the index is already current.
    Unchanged,
    /// Exactly these vertices changed (or appeared), with their new
    /// scores. May over-approximate: unchanged entries are no-ops.
    Sparse(Vec<(u32, f64)>),
    /// Full re-publication of every score (bootstrap, resume, or a
    /// producer that cannot track deltas).
    Dense(Vec<f64>),
}

impl ScoreDelta {
    /// True when applying the delta cannot change the index.
    pub fn is_empty(&self) -> bool {
        match self {
            ScoreDelta::Unchanged => true,
            ScoreDelta::Sparse(changes) => changes.is_empty(),
            ScoreDelta::Dense(_) => false,
        }
    }

    /// Diff a freshly computed dense vector against the previously
    /// published one (bitwise), remembering `next` for the next call.
    ///
    /// This is the delta producer for engines whose reduce step
    /// re-materializes the vector (the clustered embodiments): the values
    /// always come from the true reduce, so the index stays bitwise equal
    /// to what `scores()` would report, and unchanged entries fold to an
    /// empty delta.
    pub fn from_diff(prev: &mut Option<Vec<f64>>, next: Vec<f64>) -> ScoreDelta {
        let Some(old) = prev else {
            *prev = Some(next.clone());
            return ScoreDelta::Dense(next);
        };
        let mut changes: Vec<(u32, f64)> = Vec::new();
        for (v, &x) in next.iter().enumerate() {
            if old.get(v).map(|o| o.to_bits()) != Some(x.to_bits()) {
                changes.push((v as u32, x));
            }
        }
        if next.len() < old.len() {
            // vertices never disappear from the score vector; a shrink
            // means the producer restarted — fall back to dense
            *prev = Some(next.clone());
            return ScoreDelta::Dense(next);
        }
        *old = next;
        if changes.is_empty() {
            ScoreDelta::Unchanged
        } else {
            ScoreDelta::Sparse(changes)
        }
    }
}

/// Monotone map from `f64` to `u64` in `total_cmp` order: `a.total_cmp(&b)
/// == score_key(a).cmp(&score_key(b))` for all bit patterns, NaNs
/// included.
#[inline]
fn score_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// The treap's BST key: ascending key order is (descending score by
/// `total_cmp`, ascending vertex id) — exactly the oracle's comparator.
#[inline]
fn rank_key(score: f64, v: u32) -> u128 {
    (((!score_key(score)) as u128) << 32) | v as u128
}

/// splitmix64 finalizer: a bijection on `u64`, so distinct vertices get
/// distinct heap priorities and the treap shape is deterministic.
#[inline]
fn priority(v: u32) -> u64 {
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct Node {
    key: u128,
    pri: u64,
    size: usize,
    score: f64,
    left: Link,
    right: Link,
}

type Link = Option<Arc<Node>>;

impl Node {
    #[inline]
    fn vertex(&self) -> u32 {
        (self.key & 0xFFFF_FFFF) as u32
    }
}

#[inline]
fn size(t: &Link) -> usize {
    t.as_ref().map_or(0, |n| n.size)
}

fn mk(key: u128, pri: u64, score: f64, left: Link, right: Link) -> Link {
    let size = size(&left) + size(&right) + 1;
    Some(Arc::new(Node {
        key,
        pri,
        size,
        score,
        left,
        right,
    }))
}

fn merge(l: Link, r: Link) -> Link {
    match (l, r) {
        (None, r) => r,
        (l, None) => l,
        (Some(a), Some(b)) => {
            if a.pri >= b.pri {
                let right = merge(a.right.clone(), Some(b));
                mk(a.key, a.pri, a.score, a.left.clone(), right)
            } else {
                let left = merge(Some(a), b.left.clone());
                mk(b.key, b.pri, b.score, left, b.right.clone())
            }
        }
    }
}

/// Split into (`keys < key`, `keys ≥ key`).
fn split(t: Link, key: u128) -> (Link, Link) {
    match t {
        None => (None, None),
        Some(n) => {
            if n.key < key {
                let (a, b) = split(n.right.clone(), key);
                (mk(n.key, n.pri, n.score, n.left.clone(), a), b)
            } else {
                let (a, b) = split(n.left.clone(), key);
                (a, mk(n.key, n.pri, n.score, b, n.right.clone()))
            }
        }
    }
}

fn insert(root: Link, key: u128, pri: u64, score: f64) -> Link {
    let (l, r) = split(root, key);
    merge(merge(l, mk(key, pri, score, None, None)), r)
}

fn remove(root: Link, key: u128) -> Link {
    let (l, r) = split(root, key);
    // keys have 32 zero high bits, so `key + 1` cannot overflow
    let (_mid, r) = split(r, key + 1);
    merge(l, r)
}

/// Chunked copy-on-write score vector: a clone shares every chunk, a
/// point write copies one `CHUNK`-sized chunk.
#[derive(Clone, Debug, Default)]
struct ScoreVec {
    chunks: Vec<Arc<Vec<f64>>>,
    len: usize,
}

impl ScoreVec {
    fn get(&self, i: usize) -> f64 {
        self.chunks[i / CHUNK][i % CHUNK]
    }

    fn set(&mut self, i: usize, x: f64) {
        Arc::make_mut(&mut self.chunks[i / CHUNK])[i % CHUNK] = x;
    }

    fn push(&mut self, x: f64) {
        if self.len.is_multiple_of(CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        Arc::make_mut(self.chunks.last_mut().expect("chunk exists")).push(x);
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }
}

/// The incrementally maintained score order (module docs for the
/// structure and the delta-maintenance rules).
#[derive(Clone, Debug, Default)]
pub struct RankIndex {
    root: Link,
    scores: ScoreVec,
}

impl RankIndex {
    /// An empty index; feed it with [`RankIndex::apply`] or
    /// [`RankIndex::set`].
    pub fn new() -> Self {
        RankIndex::default()
    }

    /// Bulk-build from a dense score vector in `O(n log n)` (sort by
    /// rank key, then a stack-based treap construction in `O(n)`).
    pub fn from_scores(scores: &[f64]) -> Self {
        struct Tmp {
            key: u128,
            pri: u64,
            score: f64,
            left: Option<usize>,
            right: Option<usize>,
        }
        let mut items: Vec<(u128, u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(v, &x)| (rank_key(x, v as u32), v as u32, x))
            .collect();
        items.sort_unstable_by_key(|&(key, _, _)| key);

        // standard right-spine cartesian-tree build over the key-sorted
        // items; the spine holds the path from the root to the largest key
        let mut arena: Vec<Tmp> = Vec::with_capacity(items.len());
        let mut spine: Vec<usize> = Vec::new();
        for (key, v, score) in items {
            let pri = priority(v);
            let mut last: Option<usize> = None;
            while let Some(&top) = spine.last() {
                if arena[top].pri < pri {
                    last = spine.pop();
                } else {
                    break;
                }
            }
            let id = arena.len();
            arena.push(Tmp {
                key,
                pri,
                score,
                left: last,
                right: None,
            });
            if let Some(&top) = spine.last() {
                arena[top].right = Some(id);
            }
            spine.push(id);
        }

        fn freeze(arena: &[Tmp], i: Option<usize>) -> Link {
            let t = &arena[i?];
            let left = freeze(arena, t.left);
            let right = freeze(arena, t.right);
            mk(t.key, t.pri, t.score, left, right)
        }
        let root = freeze(&arena, spine.first().copied());

        let mut sv = ScoreVec::default();
        for &x in scores {
            sv.push(x);
        }
        RankIndex { root, scores: sv }
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.scores.len
    }

    /// True when no vertex is indexed.
    pub fn is_empty(&self) -> bool {
        self.scores.len == 0
    }

    /// The indexed score of `v`, if `v` is indexed.
    pub fn score(&self, v: u32) -> Option<f64> {
        ((v as usize) < self.scores.len).then(|| self.scores.get(v as usize))
    }

    /// Point update: move `v` to `score` (append when `v` is the next
    /// fresh id; intermediate ids are filled with `0.0`, the score every
    /// vertex is born with). `O(log n)`; a bitwise no-op change is free.
    pub fn set(&mut self, v: u32, score: f64) {
        let vi = v as usize;
        while self.scores.len < vi {
            let pad = self.scores.len as u32;
            self.scores.push(0.0);
            self.root = insert(self.root.take(), rank_key(0.0, pad), priority(pad), 0.0);
        }
        if vi == self.scores.len {
            self.scores.push(score);
            self.root = insert(self.root.take(), rank_key(score, v), priority(v), score);
            return;
        }
        let old = self.scores.get(vi);
        if old.to_bits() == score.to_bits() {
            return;
        }
        self.root = remove(self.root.take(), rank_key(old, v));
        self.scores.set(vi, score);
        self.root = insert(self.root.take(), rank_key(score, v), priority(v), score);
    }

    /// Fold one published delta into the index.
    pub fn apply(&mut self, delta: &ScoreDelta) {
        match delta {
            ScoreDelta::Unchanged => {}
            ScoreDelta::Sparse(changes) => {
                for &(v, score) in changes {
                    self.set(v, score);
                }
            }
            ScoreDelta::Dense(scores) => *self = RankIndex::from_scores(scores),
        }
    }

    /// The top `k` vertex ids — bitwise the same list as
    /// `ranking::top_k(&scores, k)` on the indexed scores. `O(k + log n)`.
    pub fn top_k(&self, k: usize) -> Vec<u32> {
        self.top_entries(k).into_iter().map(|(v, _)| v).collect()
    }

    /// The top `k` as `(vertex, score)` pairs, rank order. `O(k + log n)`.
    pub fn top_entries(&self, k: usize) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        let mut stack: Vec<&Arc<Node>> = Vec::new();
        let mut cur = self.root.as_ref();
        while out.len() < k {
            while let Some(n) = cur {
                stack.push(n);
                cur = n.left.as_ref();
            }
            let Some(n) = stack.pop() else { break };
            out.push((n.vertex(), n.score));
            cur = n.right.as_ref();
        }
        out
    }

    /// 1-based rank of `v` (1 = most central, ties toward smaller id),
    /// `None` when `v` is not indexed. `O(log n)`.
    pub fn rank_of(&self, v: u32) -> Option<usize> {
        let score = self.score(v)?;
        let key = rank_key(score, v);
        let mut before = 0usize;
        let mut cur = self.root.as_ref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => cur = n.left.as_ref(),
                std::cmp::Ordering::Greater => {
                    before += size(&n.left) + 1;
                    cur = n.right.as_ref();
                }
                std::cmp::Ordering::Equal => return Some(before + size(&n.left) + 1),
            }
        }
        // the score vector and the tree are maintained in lockstep, so a
        // scored vertex is always in the tree
        None
    }

    /// Fraction of indexed vertices ranked at or below `v` — the top
    /// vertex answers `1.0`, the bottom `1/n`. `O(log n)`.
    pub fn percentile(&self, v: u32) -> Option<f64> {
        let rank = self.rank_of(v)?;
        let n = self.len();
        Some((n - (rank - 1)) as f64 / n as f64)
    }

    /// The entry at 1-based `rank`, `None` when out of range. `O(log n)`.
    pub fn nth(&self, rank: usize) -> Option<(u32, f64)> {
        if rank == 0 || rank > self.len() {
            return None;
        }
        let mut remaining = rank;
        let mut cur = self.root.as_ref();
        while let Some(n) = cur {
            let left = size(&n.left);
            if remaining <= left {
                cur = n.left.as_ref();
            } else if remaining == left + 1 {
                return Some((n.vertex(), n.score));
            } else {
                remaining -= left + 1;
                cur = n.right.as_ref();
            }
        }
        None
    }

    /// The indexed scores as a dense vector (vertex-id order).
    pub fn to_scores(&self) -> Vec<f64> {
        self.scores.iter().collect()
    }

    /// Iterate the indexed scores in vertex-id order.
    pub fn scores_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.scores.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Random scores with deliberate ties, zeros of both signs, infinities
    /// and NaNs — every class `total_cmp` distinguishes.
    fn adversarial_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| match xorshift(&mut s) % 10 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => -f64::NAN,
                6 | 7 => (xorshift(&mut s) % 5) as f64, // ties
                _ => (xorshift(&mut s) % 1000) as f64 / 7.0,
            })
            .collect()
    }

    fn assert_matches_oracle(ix: &RankIndex, scores: &[f64]) {
        assert_eq!(ix.len(), scores.len());
        let full = ranking::top_k(scores, scores.len());
        assert_eq!(ix.top_k(scores.len()), full, "full order diverges");
        for k in [0, 1, 3, scores.len() / 2] {
            assert_eq!(ix.top_k(k), ranking::top_k(scores, k), "k={k}");
        }
        for (pos, &v) in full.iter().enumerate() {
            assert_eq!(ix.rank_of(v), Some(pos + 1), "rank of {v}");
            let (nv, ns) = ix.nth(pos + 1).expect("rank in range");
            assert_eq!(nv, v, "entry at rank {}", pos + 1);
            assert_eq!(ns.to_bits(), scores[v as usize].to_bits());
        }
        let got = ix.to_scores();
        assert_eq!(got.len(), scores.len());
        for (v, (&a, &b)) in got.iter().zip(scores).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "score bits of {v}");
        }
    }

    #[test]
    fn score_key_is_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    score_key(a).cmp(&score_key(b)),
                    a.total_cmp(&b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn bulk_build_matches_oracle_on_adversarial_scores() {
        for seed in 1..6 {
            let scores = adversarial_scores(97, seed);
            assert_matches_oracle(&RankIndex::from_scores(&scores), &scores);
        }
    }

    #[test]
    fn incremental_sets_match_rebuild() {
        let mut s = 42u64;
        let mut scores = adversarial_scores(50, 7);
        let mut ix = RankIndex::from_scores(&scores);
        for step in 0..300 {
            let v = (xorshift(&mut s) % scores.len() as u64) as u32;
            let replacement = adversarial_scores(1, s ^ step)[0];
            scores[v as usize] = replacement;
            ix.set(v, replacement);
            if step % 37 == 0 {
                assert_matches_oracle(&ix, &scores);
            }
        }
        assert_matches_oracle(&ix, &scores);
    }

    #[test]
    fn growth_fills_gaps_with_zero() {
        let mut ix = RankIndex::new();
        ix.set(0, 3.0);
        ix.set(4, 1.0); // vertices 1..=3 are born at 0.0
        assert_eq!(ix.len(), 5);
        assert_matches_oracle(&ix, &[3.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn apply_delta_variants() {
        let base = [2.0, 9.0, 4.0];
        let mut ix = RankIndex::new();
        ix.apply(&ScoreDelta::Dense(base.to_vec()));
        assert_matches_oracle(&ix, &base);
        ix.apply(&ScoreDelta::Unchanged);
        assert_matches_oracle(&ix, &base);
        ix.apply(&ScoreDelta::Sparse(vec![(0, 10.0), (3, 1.0)]));
        assert_matches_oracle(&ix, &[10.0, 9.0, 4.0, 1.0]);
    }

    #[test]
    fn clone_is_a_stable_snapshot() {
        let scores = adversarial_scores(64, 3);
        let mut ix = RankIndex::from_scores(&scores);
        let snap = ix.clone();
        for v in 0..64u32 {
            ix.set(v, f64::from(v));
        }
        assert_matches_oracle(&snap, &scores);
        let now: Vec<f64> = (0..64).map(f64::from).collect();
        assert_matches_oracle(&ix, &now);
    }

    #[test]
    fn diff_produces_minimal_sparse_deltas() {
        let mut prev = None;
        let d = ScoreDelta::from_diff(&mut prev, vec![1.0, 2.0]);
        assert_eq!(d, ScoreDelta::Dense(vec![1.0, 2.0]));
        let d = ScoreDelta::from_diff(&mut prev, vec![1.0, 2.0]);
        assert!(d.is_empty());
        let d = ScoreDelta::from_diff(&mut prev, vec![1.0, 5.0, 7.0]);
        assert_eq!(d, ScoreDelta::Sparse(vec![(1, 5.0), (2, 7.0)]));
        // -0.0 vs 0.0 is a bitwise change even though they compare equal
        let d = ScoreDelta::from_diff(&mut prev, vec![-0.0, 5.0, 7.0]);
        assert_eq!(d, ScoreDelta::Sparse(vec![(0, -0.0)]));
    }

    #[test]
    fn percentile_ends() {
        let ix = RankIndex::from_scores(&[1.0, 9.0, 5.0, 0.0]);
        assert_eq!(ix.percentile(1), Some(1.0)); // leader
        assert_eq!(ix.percentile(3), Some(0.25)); // last of four
        assert_eq!(ix.percentile(9), None);
        assert_eq!(ix.rank_of(2), Some(2));
    }
}
