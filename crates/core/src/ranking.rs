//! Centrality-ranking utilities.
//!
//! The paper's closing application is "online detection and prediction of
//! emerging leaders and communities in social networks" (§7): what users of
//! the framework consume is rarely the raw scores but the *ranking* they
//! induce and how it shifts as the graph evolves. This module provides the
//! standard comparators:
//!
//! * [`top_k`] — the current leaders (deterministic tie-breaking by id);
//! * [`jaccard_top_k`] — set overlap between two top-k lists;
//! * [`kendall_tau`] — rank correlation of two full score vectors;
//! * [`RankTracker`] — turnover monitoring across updates.

/// Indices of the `k` largest scores, ties broken toward smaller index.
///
/// Ordering is [`f64::total_cmp`], so NaN never panics: a positive-bit
/// NaN ranks above `+∞`, a negative-bit NaN below `-∞`, and `-0.0` below
/// `+0.0` — deterministic whatever the input. Partial selection keeps
/// this `O(n + k log k)`; it is the bitwise oracle the incremental
/// [`crate::rankindex::RankIndex`] is property-tested against.
pub fn top_k(scores: &[f64], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    let cmp = |a: &u32, b: &u32| {
        scores[*b as usize]
            .total_cmp(&scores[*a as usize])
            .then(a.cmp(b))
    };
    if k == 0 {
        idx.clear();
        return idx;
    }
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
    idx
}

/// Jaccard similarity of the top-`k` sets of two score vectors
/// (`|A∩B| / |A∪B|`); 1.0 when both are empty.
pub fn jaccard_top_k(a: &[f64], b: &[f64], k: usize) -> f64 {
    let sa: std::collections::HashSet<u32> = top_k(a, k).into_iter().collect();
    let sb: std::collections::HashSet<u32> = top_k(b, k).into_iter().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 1.0;
    }
    sa.intersection(&sb).count() as f64 / union as f64
}

/// Kendall tau-a rank correlation between two same-length score vectors
/// (`O(n²)` pair scan — intended for evaluation, not hot paths).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must be the same length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Tracks top-k turnover across a stream of score snapshots.
#[derive(Debug, Clone)]
pub struct RankTracker {
    k: usize,
    current: Vec<u32>,
    /// Total number of entries that entered the top-k across all observed
    /// transitions.
    pub entries: usize,
    /// Number of snapshots observed.
    pub snapshots: usize,
}

impl RankTracker {
    /// Track the top `k` ranks.
    pub fn new(k: usize) -> Self {
        RankTracker {
            k,
            current: Vec::new(),
            entries: 0,
            snapshots: 0,
        }
    }

    /// Observe a new snapshot; returns `(entered, left)` vertex ids.
    pub fn observe(&mut self, scores: &[f64]) -> (Vec<u32>, Vec<u32>) {
        let next = top_k(scores, self.k);
        self.observe_ranked(next)
    }

    /// Observe an already-ranked top-k list — e.g. an `O(k)` walk of the
    /// incrementally maintained [`crate::rankindex::RankIndex`] — skipping
    /// the re-sort `observe` would pay. The list must be in rank order
    /// and at most `k` long.
    pub fn observe_ranked(&mut self, next: Vec<u32>) -> (Vec<u32>, Vec<u32>) {
        let prev: std::collections::HashSet<u32> = self.current.iter().copied().collect();
        let next_set: std::collections::HashSet<u32> = next.iter().copied().collect();
        let entered: Vec<u32> = next.iter().copied().filter(|v| !prev.contains(v)).collect();
        let left: Vec<u32> = self
            .current
            .iter()
            .copied()
            .filter(|v| !next_set.contains(v))
            .collect();
        if self.snapshots > 0 {
            self.entries += entered.len();
        }
        self.current = next;
        self.snapshots += 1;
        (entered, left)
    }

    /// The current top-k.
    pub fn current(&self) -> &[u32] {
        &self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_and_breaks_ties() {
        let scores = [1.0, 5.0, 5.0, 0.0, 3.0];
        assert_eq!(top_k(&scores, 3), vec![1, 2, 4]);
        assert_eq!(top_k(&scores, 0), Vec::<u32>::new());
        assert_eq!(top_k(&scores, 99).len(), 5);
    }

    #[test]
    fn jaccard_extremes() {
        let a = [3.0, 2.0, 1.0, 0.0];
        let b = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(jaccard_top_k(&a, &a, 2), 1.0);
        assert_eq!(jaccard_top_k(&a, &b, 2), 0.0);
        assert_eq!(jaccard_top_k(&[], &[], 3), 1.0);
    }

    #[test]
    fn kendall_bounds() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
    }

    #[test]
    fn kendall_partial_agreement() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0]; // one discordant pair of three
        let tau = kendall_tau(&a, &b);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_handles_nan_without_panicking() {
        // total_cmp order: +NaN above +inf, -NaN below -inf, -0.0 < +0.0
        let scores = [f64::NAN, 1.0, f64::INFINITY, -f64::NAN, f64::NEG_INFINITY];
        assert_eq!(top_k(&scores, 5), vec![0, 2, 1, 4, 3]);
        assert_eq!(top_k(&scores, 2), vec![0, 2]);
        let zeros = [-0.0, 0.0, -0.0];
        assert_eq!(top_k(&zeros, 3), vec![1, 0, 2]);
    }

    #[test]
    fn top_k_tie_boundary_prefers_smaller_ids_across_the_cut() {
        // five equal scores straddling k=3: selection must keep ids 0..3
        let scores = [7.0; 5];
        assert_eq!(top_k(&scores, 3), vec![0, 1, 2]);
        // equal block in the middle of distinct values
        let scores = [1.0, 5.0, 5.0, 5.0, 9.0, 5.0];
        assert_eq!(top_k(&scores, 4), vec![4, 1, 2, 3]);
        assert_eq!(top_k(&scores, 5), vec![4, 1, 2, 3, 5]);
    }

    #[test]
    fn top_k_selection_matches_full_sort() {
        // the O(n + k log k) path must agree with a full comparator sort
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let scores: Vec<f64> = (0..200)
            .map(|_| match next() % 8 {
                0 => f64::NAN,
                1 => -0.0,
                2 => f64::INFINITY,
                _ => (next() % 7) as f64,
            })
            .collect();
        let mut full: Vec<u32> = (0..scores.len() as u32).collect();
        full.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        for k in [0, 1, 7, 50, 199, 200, 500] {
            let mut want = full.clone();
            want.truncate(k);
            assert_eq!(top_k(&scores, k), want, "k={k}");
        }
    }

    #[test]
    fn jaccard_top_k_tolerates_nan() {
        let a = [f64::NAN, 2.0, 1.0];
        let b = [0.0, 2.0, f64::NAN];
        // top-2 of a = {0, 1}, of b = {2, 1}: one of three shared
        assert!((jaccard_top_k(&a, &b, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_treats_nan_pairs_as_ties() {
        let a = [f64::NAN, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        // pairs touching the NaN contribute neither way
        let tau = kendall_tau(&a, &b);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "tau={tau}");
    }

    #[test]
    fn tracker_set_diff_matches_naive_scan() {
        // the HashSet-based diff must agree with the quadratic scan it
        // replaced, snapshot for snapshot
        let mut s = 1234u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut fast = RankTracker::new(4);
        let mut naive_current: Vec<u32> = Vec::new();
        for _ in 0..40 {
            let scores: Vec<f64> = (0..12).map(|_| (next() % 9) as f64).collect();
            let want_next = top_k(&scores, 4);
            let want_entered: Vec<u32> = want_next
                .iter()
                .copied()
                .filter(|v| !naive_current.contains(v))
                .collect();
            let want_left: Vec<u32> = naive_current
                .iter()
                .copied()
                .filter(|v| !want_next.contains(v))
                .collect();
            let (entered, left) = fast.observe(&scores);
            assert_eq!(entered, want_entered);
            assert_eq!(left, want_left);
            naive_current = want_next;
        }
    }

    #[test]
    fn tracker_counts_turnover() {
        let mut t = RankTracker::new(2);
        let (e, l) = t.observe(&[5.0, 4.0, 1.0]);
        assert_eq!(e, vec![0, 1]);
        assert!(l.is_empty());
        let (e, l) = t.observe(&[5.0, 0.0, 9.0]); // 2 displaces 1
        assert_eq!(e, vec![2]);
        assert_eq!(l, vec![1]);
        assert_eq!(t.entries, 1);
        assert_eq!(t.snapshots, 2);
        assert_eq!(t.current(), &[2, 0]);
    }
}
