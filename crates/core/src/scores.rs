//! Betweenness score containers.

use ebc_graph::{EdgeKey, Graph, VertexId};

/// Vertex and edge betweenness centrality scores.
///
/// Following the paper's Definitions 2.1 and 2.2, scores are sums over
/// *ordered* pairs `(s, t), s ≠ t`: on an undirected graph every unordered
/// pair contributes twice, so values are exactly twice the "classic"
/// undirected convention. Use [`Scores::vbc_normalized`] /
/// [`Scores::ebc_normalized`] for halved values.
///
/// Edge scores are stored in a flat vector indexed by the graph's stable edge
/// slots ([`ebc_graph::EdgeId`]) — the dependency-accumulation inner loop
/// updates one edge score per scanned neighbour, so this avoids a hash lookup
/// on the hottest path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scores {
    /// Vertex betweenness, indexed by vertex id.
    pub vbc: Vec<f64>,
    /// Edge betweenness, indexed by edge slot.
    pub ebc: Vec<f64>,
}

impl Scores {
    /// Zeroed scores shaped for graph `g`.
    pub fn zeros_for(g: &Graph) -> Self {
        Scores {
            vbc: vec![0.0; g.n()],
            ebc: vec![0.0; g.edge_slots()],
        }
    }

    /// Zeroed scores with explicit dimensions.
    pub fn zeros(n: usize, edge_slots: usize) -> Self {
        Scores {
            vbc: vec![0.0; n],
            ebc: vec![0.0; edge_slots],
        }
    }

    /// Re-shape to exactly `(n, edge_slots)` with every entry zeroed,
    /// reusing the existing allocations (scratch-buffer reset).
    pub fn reset_shape(&mut self, n: usize, edge_slots: usize) {
        self.vbc.clear();
        self.vbc.resize(n, 0.0);
        self.ebc.clear();
        self.ebc.resize(edge_slots, 0.0);
    }

    /// Grow (never shrink) to cover `n` vertices and `edge_slots` slots.
    pub fn ensure_shape(&mut self, n: usize, edge_slots: usize) {
        if self.vbc.len() < n {
            self.vbc.resize(n, 0.0);
        }
        if self.ebc.len() < edge_slots {
            self.ebc.resize(edge_slots, 0.0);
        }
    }

    /// Edge betweenness of `{u, v}`, if the edge exists.
    pub fn ebc_of(&self, g: &Graph, u: VertexId, v: VertexId) -> Option<f64> {
        g.edge_id(u, v).map(|eid| self.ebc[eid as usize])
    }

    /// All live edges with their betweenness, sorted by key (deterministic).
    pub fn ebc_entries(&self, g: &Graph) -> Vec<(EdgeKey, f64)> {
        let mut out: Vec<_> = g
            .edges()
            .map(|(key, eid)| (key, self.ebc[eid as usize]))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Edge with the maximum betweenness (ties broken by canonical key, so the
    /// result is deterministic). `None` on an edgeless graph.
    pub fn top_edge(&self, g: &Graph) -> Option<(EdgeKey, f64)> {
        let mut best: Option<(EdgeKey, f64)> = None;
        for (key, eid) in g.edges() {
            let score = self.ebc[eid as usize];
            best = match best {
                None => Some((key, score)),
                Some((bk, bs)) => {
                    if score > bs || (score == bs && key < bk) {
                        Some((key, score))
                    } else {
                        Some((bk, bs))
                    }
                }
            };
        }
        best
    }

    /// Vertex betweenness under the classic undirected convention (each
    /// unordered pair counted once).
    pub fn vbc_normalized(&self) -> Vec<f64> {
        self.vbc.iter().map(|x| x / 2.0).collect()
    }

    /// Edge betweenness under the classic undirected convention.
    pub fn ebc_normalized(&self) -> Vec<f64> {
        self.ebc.iter().map(|x| x / 2.0).collect()
    }

    /// Elementwise accumulate `other` into `self` (the paper's reduce step:
    /// partial per-partition scores sum to the global scores).
    pub fn merge_from(&mut self, other: &Scores) {
        self.ensure_shape(other.vbc.len(), other.ebc.len());
        for (a, b) in self.vbc.iter_mut().zip(&other.vbc) {
            *a += b;
        }
        for (a, b) in self.ebc.iter_mut().zip(&other.ebc) {
            *a += b;
        }
    }

    /// Maximum absolute difference in VBC against `other` (test helper).
    pub fn max_vbc_diff(&self, other: &Scores) -> f64 {
        self.vbc
            .iter()
            .zip(&other.vbc)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute EBC difference over the live edges of `g`.
    pub fn max_ebc_diff(&self, other: &Scores, g: &Graph) -> f64 {
        let mut worst: f64 = 0.0;
        for (_, eid) in g.edges() {
            let a = self.ebc.get(eid as usize).copied().unwrap_or(0.0);
            let b = other.ebc.get(eid as usize).copied().unwrap_or(0.0);
            worst = worst.max((a - b).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_elementwise() {
        let mut a = Scores {
            vbc: vec![1.0, 2.0],
            ebc: vec![0.5],
        };
        let b = Scores {
            vbc: vec![0.25, 0.75, 3.0],
            ebc: vec![0.5, 1.0],
        };
        a.merge_from(&b);
        assert_eq!(a.vbc, vec![1.25, 2.75, 3.0]);
        assert_eq!(a.ebc, vec![1.0, 1.0]);
    }

    #[test]
    fn top_edge_deterministic_ties() {
        let mut g = Graph::with_vertices(4);
        let e0 = g.add_edge(0, 1).unwrap();
        let e1 = g.add_edge(2, 3).unwrap();
        let mut s = Scores::zeros_for(&g);
        s.ebc[e0 as usize] = 5.0;
        s.ebc[e1 as usize] = 5.0;
        // tie broken toward the smaller canonical key (0,1)
        assert_eq!(s.top_edge(&g).unwrap().0, EdgeKey::new(0, 1));
    }

    #[test]
    fn normalized_halves() {
        let s = Scores {
            vbc: vec![4.0],
            ebc: vec![2.0],
        };
        assert_eq!(s.vbc_normalized(), vec![2.0]);
        assert_eq!(s.ebc_normalized(), vec![1.0]);
    }

    #[test]
    fn diffs() {
        let mut g = Graph::with_vertices(2);
        let e = g.add_edge(0, 1).unwrap();
        let mut a = Scores::zeros_for(&g);
        let mut b = Scores::zeros_for(&g);
        a.vbc[1] = 1.0;
        b.ebc[e as usize] = 0.5;
        assert_eq!(a.max_vbc_diff(&b), 1.0);
        assert_eq!(a.max_ebc_diff(&b, &g), 0.5);
    }

    #[test]
    fn ebc_of_missing_edge_is_none() {
        let g = Graph::with_vertices(2);
        let s = Scores::zeros_for(&g);
        assert!(s.ebc_of(&g, 0, 1).is_none());
    }
}
