//! Reusable per-worker kernel arena.
//!
//! The map phase runs one kernel invocation per owned source per update;
//! everything a kernel touches besides the `BD[s]` records themselves lives
//! here so the steady-state hot path performs **no allocation per update**:
//!
//! * [`Workspace`] — the incremental kernel's epoch-stamped scratch
//!   (frontier queues, new-value overlays, touch lists);
//! * [`BrandesScratch`] — BFS scratch for fresh-source bootstraps and
//!   adoption recomputes;
//! * a sources buffer filled via [`BdStore::sources_into`], replacing the
//!   `Vec` the store used to hand out on every update;
//! * a reusable leaf [`Scores`] buffer for resume/segment evaluation.
//!
//! All buffers grow monotonically with the graph and are reused across
//! updates and across sources (the paper's "constant memory per source"
//! argument only holds if the harness does not allocate behind the
//! kernel's back).

use crate::bd::BdStore;
use crate::brandes::BrandesScratch;
use crate::incremental::Workspace;
use crate::scores::Scores;
use ebc_graph::VertexId;

/// Bundled scratch state for one worker's kernel invocations.
#[derive(Debug)]
pub struct KernelScratch {
    /// Incremental-kernel workspace (epoch reset, O(1) between sources).
    pub ws: Workspace,
    /// BFS scratch for full single-source recomputes.
    pub brandes: BrandesScratch,
    /// Source enumeration buffer, refreshed from the store each update.
    pub sources: Vec<VertexId>,
    leaf: Scores,
}

impl KernelScratch {
    /// Arena sized for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        KernelScratch {
            ws: Workspace::new(n),
            brandes: BrandesScratch::new(n),
            sources: Vec::new(),
            leaf: Scores::zeros(0, 0),
        }
    }

    /// Widen every buffer to `n` vertices (no-op when already that wide).
    pub fn grow(&mut self, n: usize) {
        self.ws.grow(n);
        // BrandesScratch sizes itself on reset; nothing to widen eagerly.
    }

    /// Refresh the sources buffer from `store` (allocation-free for
    /// backends that override [`BdStore::sources_into`]).
    pub fn refresh_sources<S: BdStore + ?Sized>(&mut self, store: &S) -> &[VertexId] {
        store.sources_into(&mut self.sources);
        &self.sources
    }

    /// A zeroed leaf buffer shaped `(n, edge_slots)`, reusing capacity.
    pub fn leaf_buffer(&mut self, n: usize, edge_slots: usize) -> &mut Scores {
        self.leaf.reset_shape(n, edge_slots);
        &mut self.leaf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bd::MemoryBdStore;

    #[test]
    fn refresh_sources_tracks_the_store() {
        let mut st = MemoryBdStore::new(2);
        st.add_source(3, vec![0, 1], vec![1, 1], vec![0.0, 0.0])
            .unwrap();
        st.add_source(1, vec![1, 0], vec![1, 1], vec![0.0, 0.0])
            .unwrap();
        let mut scratch = KernelScratch::new(2);
        assert_eq!(scratch.refresh_sources(&st), &[3, 1]);
        st.remove_source(3).unwrap();
        assert_eq!(scratch.refresh_sources(&st), &[1]);
    }

    #[test]
    fn leaf_buffer_is_zeroed_and_shaped() {
        let mut scratch = KernelScratch::new(4);
        {
            let leaf = scratch.leaf_buffer(3, 5);
            assert_eq!(leaf.vbc.len(), 3);
            assert_eq!(leaf.ebc.len(), 5);
            leaf.vbc[1] = 7.0;
            leaf.ebc[4] = 8.0;
        }
        let leaf = scratch.leaf_buffer(2, 6);
        assert_eq!(leaf.vbc, vec![0.0, 0.0]);
        assert!(leaf.ebc.iter().all(|&x| x == 0.0));
        assert_eq!(leaf.ebc.len(), 6);
    }
}
