//! The end-to-end framework of Figure 1: bootstrap once with Brandes, then
//! keep vertex and edge betweenness current while streaming edge updates.

use crate::bd::{BdError, BdStore, MemoryBdStore};
use crate::brandes::{single_source_update, single_source_update_with, BrandesScratch};
use crate::incremental::{update_source, UpdateConfig, UpdateStats, Workspace};
use crate::scores::Scores;
use ebc_graph::{EdgeOp, Graph, GraphError, VertexId};
use std::fmt;

/// One streamed edge update (the elements of the paper's stream `ES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// Add or remove.
    pub op: EdgeOp,
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
}

impl Update {
    /// An edge addition.
    pub fn add(u: VertexId, v: VertexId) -> Self {
        Update {
            op: EdgeOp::Add,
            u,
            v,
        }
    }

    /// An edge removal.
    pub fn remove(u: VertexId, v: VertexId) -> Self {
        Update {
            op: EdgeOp::Remove,
            u,
            v,
        }
    }
}

/// Errors from [`BetweennessState`] operations.
#[derive(Debug)]
pub enum StateError {
    /// Invalid graph mutation (duplicate edge, missing edge, self-loop...).
    Graph(GraphError),
    /// Storage failure.
    Store(BdError),
    /// An addition referenced a vertex more than one past the current
    /// maximum; new vertices must arrive densely (paper §3.1 handles one new
    /// endpoint per arriving edge).
    SparseVertex(VertexId),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Graph(e) => write!(f, "graph error: {e}"),
            StateError::Store(e) => write!(f, "store error: {e}"),
            StateError::SparseVertex(v) => {
                write!(f, "vertex {v} skips ids; new vertices must arrive densely")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<GraphError> for StateError {
    fn from(e: GraphError) -> Self {
        StateError::Graph(e)
    }
}

impl From<BdError> for StateError {
    fn from(e: BdError) -> Self {
        StateError::Store(e)
    }
}

/// Online betweenness centrality over an evolving graph (single machine).
///
/// Owns the graph, the `BD[·]` records for *all* sources, and the running
/// VBC/EBC scores. For the partitioned multi-worker embodiment see the
/// `ebc-engine` crate, which drives the same kernel over disjoint source
/// ranges.
pub struct BetweennessState<S: BdStore = MemoryBdStore> {
    graph: Graph,
    store: S,
    scores: Scores,
    ws: Workspace,
    cfg: UpdateConfig,
    /// Whether a dense score baseline has been drained by
    /// [`BetweennessState::take_score_delta`]; until then every drain
    /// republishes the full vector.
    published: bool,
}

impl BetweennessState<MemoryBdStore> {
    /// Bootstrap (step 1, Figure 1): run the predecessor-free Brandes over
    /// every source, keeping the records in memory.
    pub fn new(graph: &Graph) -> Self {
        Self::new_with(graph.clone(), UpdateConfig::default())
    }

    /// Deprecated name of [`BetweennessState::new`].
    #[deprecated(
        since = "0.1.0",
        note = "use BetweennessState::new, or streaming_bc::Session::builder() for the \
                unified facade"
    )]
    pub fn init(graph: &Graph) -> Self {
        Self::new(graph)
    }

    /// [`BetweennessState::new`] with a custom kernel configuration.
    pub fn new_with(graph: Graph, cfg: UpdateConfig) -> Self {
        let mut store = MemoryBdStore::new(graph.n());
        let mut scores = Scores::zeros_for(&graph);
        let mut scratch = BrandesScratch::new(graph.n());
        for s in graph.vertices() {
            let r = single_source_update_with(&graph, s, &mut scores, &mut scratch);
            store
                .add_source(s, r.d, r.sigma, r.delta)
                .expect("fresh store accepts all sources");
        }
        let n = graph.n();
        BetweennessState {
            graph,
            store,
            scores,
            ws: Workspace::new(n),
            cfg,
            published: false,
        }
    }

    /// Deprecated name of [`BetweennessState::new_with`].
    #[deprecated(since = "0.1.0", note = "use BetweennessState::new_with")]
    pub fn init_with(graph: Graph, cfg: UpdateConfig) -> Self {
        Self::new_with(graph, cfg)
    }
}

impl<S: BdStore> BetweennessState<S> {
    /// Bootstrap into a caller-provided (e.g. out-of-core) store. The store
    /// must be empty; records for every vertex of `graph` are inserted.
    pub fn new_into_store(
        graph: Graph,
        mut store: S,
        cfg: UpdateConfig,
    ) -> Result<Self, StateError> {
        let mut scores = Scores::zeros_for(&graph);
        let mut scratch = BrandesScratch::new(graph.n());
        for s in graph.vertices() {
            let r = single_source_update_with(&graph, s, &mut scores, &mut scratch);
            store.add_source(s, r.d, r.sigma, r.delta)?;
        }
        let n = graph.n();
        Ok(BetweennessState {
            graph,
            store,
            scores,
            ws: Workspace::new(n),
            cfg,
            published: false,
        })
    }

    /// Deprecated name of [`BetweennessState::new_into_store`].
    #[deprecated(since = "0.1.0", note = "use BetweennessState::new_into_store")]
    pub fn init_into_store(graph: Graph, store: S, cfg: UpdateConfig) -> Result<Self, StateError> {
        Self::new_into_store(graph, store, cfg)
    }

    /// Resume from previously persisted records alone: the running scores
    /// are reconstructed from the `BD[·]` records via the deterministic
    /// fixed-tree reduction of [`crate::exact`]. This is the DO-mode
    /// crash-recovery path — reopen the (recovered) disk store, then resume
    /// and keep streaming updates. The reconstructed scores agree with the
    /// pre-crash incrementally maintained ones up to floating-point
    /// summation order.
    pub fn resume(graph: Graph, mut store: S, cfg: UpdateConfig) -> Result<Self, StateError> {
        let scores = crate::exact::exact_scores(&graph, &mut store)?;
        Ok(Self::from_parts(graph, store, scores, cfg))
    }

    /// Resume from previously persisted records (the store already holds one
    /// record per vertex and `scores` matches them).
    pub fn from_parts(graph: Graph, store: S, scores: Scores, cfg: UpdateConfig) -> Self {
        let n = graph.n();
        BetweennessState {
            graph,
            store,
            scores,
            ws: Workspace::new(n),
            cfg,
            published: false,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current vertex betweenness (ordered-pair convention, Def. 2.1).
    pub fn vertex_centrality(&self) -> &[f64] {
        &self.scores.vbc
    }

    /// Current scores (vertex and edge).
    pub fn scores(&self) -> &Scores {
        &self.scores
    }

    /// Edge betweenness of `{u, v}`, if present.
    pub fn edge_centrality(&self, u: VertexId, v: VertexId) -> Option<f64> {
        self.scores.ebc_of(&self.graph, u, v)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> UpdateStats {
        self.ws.stats
    }

    /// Reset work counters.
    pub fn reset_stats(&mut self) {
        self.ws.stats = UpdateStats::default();
    }

    /// Borrow the underlying store (e.g. to flush an out-of-core backend).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutably borrow the underlying store (record reads are `&mut` because
    /// out-of-core backends seek).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Deterministic exact scores derived from the `BD[·]` records via the
    /// fixed reduction tree of [`crate::exact`]. Bitwise equal to any
    /// `ebc-engine` cluster's exact reduce over the same update history,
    /// regardless of worker count or store backend — the oracle the
    /// parallel-consistency suite compares against. The incrementally
    /// maintained [`BetweennessState::scores`] agree with this value only up
    /// to floating-point summation order.
    pub fn exact_scores(&mut self) -> Result<Scores, StateError> {
        Ok(crate::exact::exact_scores(&self.graph, &mut self.store)?)
    }

    /// Add an isolated vertex: it joins the source set with an empty record
    /// and zero centrality (paper §3.1).
    pub fn add_vertex(&mut self) -> Result<VertexId, StateError> {
        let v = self.graph.add_vertex();
        self.store.grow_vertex()?;
        self.scores
            .ensure_shape(self.graph.n(), self.graph.edge_slots());
        self.ws.grow(self.graph.n());
        // The new vertex is a source too: its record is trivial (d=∞
        // everywhere except itself).
        let n = self.graph.n();
        let mut d = vec![ebc_graph::UNREACHABLE; n];
        let mut sigma = vec![0u64; n];
        d[v as usize] = 0;
        sigma[v as usize] = 1;
        self.store.add_source(v, d, sigma, vec![0.0; n])?;
        // the score vector grew: the rank index must learn the new entry
        self.ws.mark_dirty(v);
        Ok(v)
    }

    /// Apply one edge update (step 2, Figure 1): mutate the graph, then run
    /// the incremental kernel for every source (skipping `dd == 0` sources
    /// via the cheap distance peek).
    pub fn apply(&mut self, update: Update) -> Result<(), StateError> {
        let Update { op, u, v } = update;
        match op {
            EdgeOp::Add => {
                let hi = u.max(v);
                if hi as usize > self.graph.n() {
                    return Err(StateError::SparseVertex(hi));
                }
                let new_vertex = (hi as usize) == self.graph.n();
                if new_vertex {
                    // §3.1: arriving vertices join with zero centrality; the
                    // generic addition kernel then treats them as uL with
                    // d[uL] = ∞ for every existing source.
                    self.graph.add_vertex();
                    self.store.grow_vertex()?;
                    self.ws.grow(self.graph.n());
                }
                self.graph.add_edge(u, v)?;
                self.scores
                    .ensure_shape(self.graph.n(), self.graph.edge_slots());
                self.run_kernel(op, u, v)?;
                if new_vertex {
                    // The new vertex also becomes a source: one fresh Brandes
                    // iteration adds its pair dependencies. Its dependency
                    // vector is exactly the set of vbc entries this pass
                    // touched outside the kernel's dirty tracking, plus the
                    // new score slot itself.
                    let r = single_source_update(&self.graph, hi, &mut self.scores);
                    self.ws.mark_dirty(hi);
                    for (w, &dep) in r.delta.iter().enumerate() {
                        if dep != 0.0 && w as u32 != hi {
                            self.ws.mark_dirty(w as u32);
                        }
                    }
                    self.store.add_source(hi, r.d, r.sigma, r.delta)?;
                }
                Ok(())
            }
            EdgeOp::Remove => {
                let eid = self.graph.remove_edge(u, v)?;
                self.run_kernel(op, u, v)?;
                // Every source has retracted its contribution; the slot is
                // recycled, so clear any residual floating-point dust.
                self.scores.ebc[eid as usize] = 0.0;
                Ok(())
            }
        }
    }

    /// Drain what changed in the running VBC since the last drain, as a
    /// [`crate::rankindex::ScoreDelta`] for
    /// [`crate::rankindex::RankIndex`] maintenance.
    ///
    /// The first drain (and the first after a resume) is a dense baseline;
    /// after that the kernel's dirty tracking yields sparse deltas whose
    /// values are read from the running scores at drain time, so applying
    /// the stream of deltas to an index reproduces
    /// [`BetweennessState::scores`]`.vbc` bit for bit.
    pub fn take_score_delta(&mut self) -> crate::rankindex::ScoreDelta {
        use crate::rankindex::ScoreDelta;
        if !self.published {
            self.published = true;
            self.ws.drain_dirty();
            return ScoreDelta::Dense(self.scores.vbc.clone());
        }
        let mut dirty = self.ws.drain_dirty();
        if dirty.is_empty() {
            return ScoreDelta::Unchanged;
        }
        // ascending id order so fresh vertices extend the index densely
        dirty.sort_unstable();
        ScoreDelta::Sparse(
            dirty
                .into_iter()
                .map(|v| (v, self.scores.vbc[v as usize]))
                .collect(),
        )
    }

    fn run_kernel(&mut self, op: EdgeOp, u: VertexId, v: VertexId) -> Result<(), StateError> {
        let graph = &self.graph;
        let scores = &mut self.scores;
        let ws = &mut self.ws;
        let cfg = &self.cfg;
        let sources = self.store.sources();
        let stats = self.store.update_batch(&sources, u, v, &mut |s, view| {
            update_source(graph, s, op, u, v, view, scores, ws, cfg)
        })?;
        self.ws.stats.sources_skipped += stats.skipped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes;

    fn check(state: &BetweennessState) {
        let fresh = brandes(state.graph());
        assert!(state.scores().max_vbc_diff(&fresh) < 1e-6);
        assert!(state.scores().max_ebc_diff(&fresh, state.graph()) < 1e-6);
    }

    #[test]
    fn quickstart_flow() {
        let mut g = Graph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            g.add_edge(u, v).unwrap();
        }
        let mut st = BetweennessState::new(&g);
        st.apply(Update::add(1, 3)).unwrap();
        check(&st);
        st.apply(Update::remove(0, 2)).unwrap();
        check(&st);
    }

    #[test]
    fn new_vertex_via_edge() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut st = BetweennessState::new(&g);
        st.apply(Update::add(2, 3)).unwrap(); // vertex 3 arrives
        assert_eq!(st.graph().n(), 4);
        check(&st);
        st.apply(Update::add(3, 0)).unwrap();
        check(&st);
    }

    #[test]
    fn sparse_vertex_rejected() {
        let mut g = Graph::with_vertices(2);
        g.add_edge(0, 1).unwrap();
        let mut st = BetweennessState::new(&g);
        assert!(matches!(
            st.apply(Update::add(0, 7)),
            Err(StateError::SparseVertex(7))
        ));
    }

    #[test]
    fn duplicate_add_rejected_cleanly() {
        let mut g = Graph::with_vertices(2);
        g.add_edge(0, 1).unwrap();
        let mut st = BetweennessState::new(&g);
        assert!(matches!(
            st.apply(Update::add(0, 1)),
            Err(StateError::Graph(_))
        ));
        check(&st); // state unharmed
    }

    #[test]
    fn isolated_vertex_then_connect() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut st = BetweennessState::new(&g);
        let v = st.add_vertex().unwrap();
        assert_eq!(v, 3);
        check(&st);
        st.apply(Update::add(1, 3)).unwrap();
        check(&st);
    }

    #[test]
    fn removed_edge_slot_zeroed() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut st = BetweennessState::new(&g);
        let eid = st.graph().edge_id(0, 1).unwrap();
        st.apply(Update::remove(0, 1)).unwrap();
        assert_eq!(st.scores().ebc[eid as usize], 0.0);
        check(&st);
    }

    #[test]
    fn score_deltas_reconstruct_running_vbc() {
        use crate::rankindex::{RankIndex, ScoreDelta};
        let mut g = Graph::with_vertices(5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            g.add_edge(u, v).unwrap();
        }
        let mut st = BetweennessState::new(&g);
        let mut ix = RankIndex::new();
        // first drain: dense baseline
        let d = st.take_score_delta();
        assert!(matches!(d, ScoreDelta::Dense(_)));
        ix.apply(&d);
        // quiescent drain: nothing moved
        assert!(st.take_score_delta().is_empty());
        // a stream including vertex arrival, an isolated vertex, a removal
        let updates = [
            Update::add(0, 2),
            Update::add(4, 5), // vertex 5 arrives
            Update::remove(1, 2),
            Update::add(3, 5),
        ];
        for u in updates {
            st.apply(u).unwrap();
            ix.apply(&st.take_score_delta());
            let want = &st.scores().vbc;
            let got = ix.to_scores();
            assert_eq!(got.len(), want.len());
            for (v, (a, b)) in got.iter().zip(want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "vbc[{v}] after {u:?}");
            }
        }
        let v = st.add_vertex().unwrap();
        ix.apply(&st.take_score_delta());
        assert_eq!(ix.len(), st.graph().n());
        assert_eq!(ix.score(v), Some(0.0));
    }

    #[test]
    fn girvan_newman_style_peeling() {
        // repeatedly remove the top edge; scores must track throughout.
        let mut g = Graph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(u, v).unwrap();
        }
        let mut st = BetweennessState::new(&g);
        for _ in 0..5 {
            let Some((key, _)) = st.scores().top_edge(st.graph()) else {
                break;
            };
            let (u, v) = key.endpoints();
            st.apply(Update::remove(u, v)).unwrap();
            check(&st);
        }
    }
}
