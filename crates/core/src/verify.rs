//! Recompute-from-scratch oracles.
//!
//! The load-bearing correctness property of the whole framework is: after any
//! sequence of updates, the incrementally maintained scores equal a fresh
//! Brandes recomputation on the final graph. These helpers package that check
//! for unit tests, property tests, integration tests, and the experiment
//! harness (which uses it to validate every speedup measurement).

use crate::brandes::brandes;
use crate::scores::Scores;
use ebc_graph::Graph;

/// Outcome of an oracle comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Max absolute vertex-betweenness difference.
    pub vbc: f64,
    /// Max absolute edge-betweenness difference over live edges.
    pub ebc: f64,
}

impl Divergence {
    /// True when both diffs are below `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.vbc <= tol && self.ebc <= tol
    }
}

/// Compare maintained `scores` against a fresh recomputation on `g`.
pub fn divergence_from_scratch(g: &Graph, scores: &Scores) -> Divergence {
    let fresh = brandes(g);
    Divergence {
        vbc: scores.max_vbc_diff(&fresh),
        ebc: scores.max_ebc_diff(&fresh, g),
    }
}

/// Panic (with a readable report) if `scores` diverges from a fresh
/// recomputation by more than `tol`.
pub fn assert_matches_scratch(g: &Graph, scores: &Scores, tol: f64, context: &str) {
    let d = divergence_from_scratch(g, scores);
    assert!(
        d.within(tol),
        "{context}: incremental scores diverged from recomputation \
         (max VBC diff {:.3e}, max EBC diff {:.3e}, tolerance {tol:.1e})",
        d.vbc,
        d.ebc,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes::brandes;

    #[test]
    fn identical_scores_have_zero_divergence() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        let s = brandes(&g);
        let d = divergence_from_scratch(&g, &s);
        assert_eq!(d.vbc, 0.0);
        assert_eq!(d.ebc, 0.0);
        assert!(d.within(1e-12));
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn corrupted_scores_detected() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut s = brandes(&g);
        s.vbc[1] += 1.0;
        assert_matches_scratch(&g, &s, 1e-9, "corrupt");
    }
}
