//! Oracle tests on structured graph families — each family stresses a
//! different case of the update algorithm: deep levels (paths), wide levels
//! (stars), many equal-length path multiplicities (grids, hypercubes),
//! bridges (barbells), and bipartite layering.

use ebc_core::state::{BetweennessState, Update};
use ebc_core::verify::assert_matches_scratch;
use ebc_graph::Graph;

const TOL: f64 = 1e-6;

fn check_family(g: Graph, label: &str) {
    // Exercise: remove a quarter of the edges (every 4th in sorted order),
    // then re-add them, verifying after every step.
    let victims: Vec<(u32, u32)> = g.sorted_edges().into_iter().step_by(4).collect();
    let mut st = BetweennessState::new(&g);
    for (i, &(u, v)) in victims.iter().enumerate() {
        st.apply(Update::remove(u, v)).unwrap();
        assert_matches_scratch(st.graph(), st.scores(), TOL, &format!("{label} rm {i}"));
    }
    for (i, &(u, v)) in victims.iter().enumerate() {
        st.apply(Update::add(u, v)).unwrap();
        assert_matches_scratch(st.graph(), st.scores(), TOL, &format!("{label} re-add {i}"));
    }
}

fn path(n: u32) -> Graph {
    Graph::from_edges((0..n - 1).map(|i| (i, i + 1)))
}

#[test]
fn deep_path() {
    check_family(path(24), "path24");
}

#[test]
fn star() {
    let g = Graph::from_edges((1..16u32).map(|leaf| (0, leaf)));
    check_family(g, "star16");
}

#[test]
fn binary_tree() {
    let g = Graph::from_edges((1..31u32).map(|v| ((v - 1) / 2, v)));
    check_family(g, "btree31");
}

#[test]
fn grid_5x5() {
    let mut edges = Vec::new();
    let idx = |r: u32, c: u32| r * 5 + c;
    for r in 0..5 {
        for c in 0..5 {
            if c + 1 < 5 {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < 5 {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    check_family(Graph::from_edges(edges), "grid5x5");
}

#[test]
fn hypercube_q4() {
    let mut edges = Vec::new();
    for v in 0..16u32 {
        for bit in 0..4 {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push((v, w));
            }
        }
    }
    check_family(Graph::from_edges(edges), "q4");
}

#[test]
fn barbell() {
    // two K5s joined by a 3-path: bridge edges dominate betweenness
    let mut edges = Vec::new();
    for i in 0..5u32 {
        for j in (i + 1)..5 {
            edges.push((i, j));
            edges.push((i + 8, j + 8));
        }
    }
    edges.extend([(4, 5), (5, 6), (6, 7), (7, 8)]);
    check_family(Graph::from_edges(edges), "barbell");
}

#[test]
fn complete_bipartite_k34() {
    let mut edges = Vec::new();
    for a in 0..3u32 {
        for b in 3..7u32 {
            edges.push((a, b));
        }
    }
    check_family(Graph::from_edges(edges), "k34");
}

#[test]
fn cycle_even_and_odd() {
    for n in [12u32, 13] {
        let g = Graph::from_edges((0..n).map(|i| (i, (i + 1) % n)));
        check_family(g, &format!("cycle{n}"));
    }
}

#[test]
fn wheel() {
    let n = 12u32;
    let mut edges: Vec<(u32, u32)> = (1..=n).map(|i| (0, i)).collect();
    edges.extend((1..=n).map(|i| (i, if i == n { 1 } else { i + 1 })));
    check_family(Graph::from_edges(edges), "wheel12");
}

#[test]
fn two_cliques_single_bridge_rewire() {
    // the bridge removal disconnects; re-adding merges — both directions of
    // the hardest structural cases, repeatedly.
    let mut edges = Vec::new();
    for i in 0..6u32 {
        for j in (i + 1)..6 {
            edges.push((i, j));
            edges.push((i + 6, j + 6));
        }
    }
    edges.push((0, 6));
    let g = Graph::from_edges(edges);
    let mut st = BetweennessState::new(&g);
    for round in 0..3 {
        st.apply(Update::remove(0, 6)).unwrap();
        assert_matches_scratch(st.graph(), st.scores(), TOL, &format!("split {round}"));
        st.apply(Update::add(2, 8)).unwrap();
        assert_matches_scratch(st.graph(), st.scores(), TOL, &format!("remerge {round}"));
        st.apply(Update::remove(2, 8)).unwrap();
        st.apply(Update::add(0, 6)).unwrap();
        assert_matches_scratch(st.graph(), st.scores(), TOL, &format!("restore {round}"));
    }
}
