//! Property-based oracle: after ANY sequence of edge additions/removals
//! (including component merges, disconnections, and new-vertex arrivals),
//! the incrementally maintained VBC/EBC must equal a fresh predecessor-free
//! Brandes recomputation on the final graph.
//!
//! This is the single most load-bearing test in the repository: it exercises
//! every case of the paper's Algorithms 1–10 under adversarial inputs.

use ebc_core::incremental::UpdateConfig;
use ebc_core::state::{BetweennessState, Update};
use ebc_core::verify::assert_matches_scratch;
use ebc_graph::Graph;
use proptest::prelude::*;

const TOL: f64 = 1e-6;

/// Deterministic scripted update: interpreted against the current graph, so
/// every generated script is valid (adds pick non-edges, removals pick
/// existing edges).
#[derive(Debug, Clone, Copy)]
enum Script {
    /// Add the k-th absent vertex pair (if any).
    Add(u64),
    /// Remove the k-th present edge (if any).
    Remove(u64),
    /// Attach a brand-new vertex to the k-th existing vertex.
    NewVertex(u64),
}

fn script_strategy() -> impl Strategy<Value = Script> {
    prop_oneof![
        3 => any::<u64>().prop_map(Script::Add),
        3 => any::<u64>().prop_map(Script::Remove),
        1 => any::<u64>().prop_map(Script::NewVertex),
    ]
}

/// Build a graph from a vertex count and an edge-selection seed list.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (
        2usize..12,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40),
    )
        .prop_map(|(n, pairs)| {
            let mut g = Graph::with_vertices(n);
            for (a, b) in pairs {
                let u = a % n as u32;
                let v = b % n as u32;
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v).unwrap();
                }
            }
            g
        })
}

fn absent_pairs(g: &Graph) -> Vec<(u32, u32)> {
    let n = g.n() as u32;
    let mut out = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                out.push((u, v));
            }
        }
    }
    out
}

fn run_script(g: Graph, script: &[Script], cfg: UpdateConfig) {
    let mut st = BetweennessState::new_with(g, cfg);
    for (step, s) in script.iter().enumerate() {
        let ctx = format!("step {step}: {s:?}");
        match *s {
            Script::Add(k) => {
                let cands = absent_pairs(st.graph());
                if cands.is_empty() {
                    continue;
                }
                let (u, v) = cands[(k % cands.len() as u64) as usize];
                st.apply(Update::add(u, v)).unwrap();
            }
            Script::Remove(k) => {
                let edges = st.graph().sorted_edges();
                if edges.is_empty() {
                    continue;
                }
                let (u, v) = edges[(k % edges.len() as u64) as usize];
                st.apply(Update::remove(u, v)).unwrap();
            }
            Script::NewVertex(k) => {
                let n = st.graph().n() as u32;
                let anchor = (k % n as u64) as u32;
                st.apply(Update::add(anchor, n)).unwrap();
            }
        }
        assert_matches_scratch(st.graph(), st.scores(), TOL, &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn incremental_matches_recompute(
        g in graph_strategy(),
        script in proptest::collection::vec(script_strategy(), 1..25),
    ) {
        run_script(g, &script, UpdateConfig::default());
    }

    #[test]
    fn incremental_matches_recompute_with_pruning(
        g in graph_strategy(),
        script in proptest::collection::vec(script_strategy(), 1..25),
    ) {
        run_script(g, &script, UpdateConfig { prune_unchanged: true, ..Default::default() });
    }

    /// Adding then removing the same edge must restore the exact scores the
    /// graph had before (up to float tolerance).
    #[test]
    fn add_remove_restores(
        g in graph_strategy(),
        k in any::<u64>(),
    ) {
        let cands = absent_pairs(&g);
        prop_assume!(!cands.is_empty());
        let (u, v) = cands[(k % cands.len() as u64) as usize];
        let before = ebc_core::brandes(&g);
        let mut st = BetweennessState::new(&g);
        st.apply(Update::add(u, v)).unwrap();
        st.apply(Update::remove(u, v)).unwrap();
        prop_assert!(st.scores().max_vbc_diff(&before) < TOL);
        prop_assert!(st.scores().max_ebc_diff(&before, st.graph()) < TOL);
    }

    /// σ bookkeeping invariant: after arbitrary single update, per-source
    /// shortest-path counts in the store match a fresh BFS.
    #[test]
    fn store_arrays_match_fresh_iteration(
        g in graph_strategy(),
        k in any::<u64>(),
        add in any::<bool>(),
    ) {
        let mut st = BetweennessState::new(&g);
        if add {
            let cands = absent_pairs(st.graph());
            prop_assume!(!cands.is_empty());
            let (u, v) = cands[(k % cands.len() as u64) as usize];
            st.apply(Update::add(u, v)).unwrap();
        } else {
            let edges = st.graph().sorted_edges();
            prop_assume!(!edges.is_empty());
            let (u, v) = edges[(k % edges.len() as u64) as usize];
            st.apply(Update::remove(u, v)).unwrap();
        }
        // Re-bootstrap a second state from the final graph: VBC/EBC and the
        // records must agree (records checked indirectly through scores of a
        // subsequent update in other tests; here compare centralities).
        let fresh = BetweennessState::new(st.graph());
        prop_assert!(st.scores().max_vbc_diff(fresh.scores()) < TOL);
        prop_assert!(st.scores().max_ebc_diff(fresh.scores(), st.graph()) < TOL);
    }
}
