//! Ablation coverage for [`UpdateConfig::prune_unchanged`].
//!
//! The kernel documentation claims exact-pruning is *bitwise-neutral*: a
//! popped vertex whose recomputed dependency is bit-identical to the stored
//! one contributes exactly nothing to any score, so cutting the ancestor
//! walk short at it cannot change a single bit of VBC or EBC — while doing
//! strictly less work. These tests pin both halves of that claim on random
//! mixed add/remove streams.

use ebc_core::incremental::UpdateConfig;
use ebc_core::state::{BetweennessState, Update};
use ebc_core::verify::assert_matches_scratch;
use ebc_gen::models::{erdos_renyi_gnm, holme_kim};
use ebc_gen::streams::{addition_stream, removal_stream};
use ebc_graph::Graph;

/// Interleaved random stream: one addition, one removal, repeating.
fn mixed_stream(g: &Graph, k: usize, seed: u64) -> Vec<Update> {
    let adds = addition_stream(g, k, seed);
    let rems = removal_stream(g, k, seed + 1);
    let mut out = Vec::with_capacity(adds.len() + rems.len());
    for i in 0..adds.len().max(rems.len()) {
        if let Some(&(u, v)) = adds.get(i) {
            out.push(Update::add(u, v));
        }
        if let Some(&(u, v)) = rems.get(i) {
            out.push(Update::remove(u, v));
        }
    }
    out
}

/// Drive the same stream through a pruned and an unpruned state, asserting
/// bit-identical scores after every update.
fn assert_prune_bitwise_neutral(g: &Graph, stream: &[Update], label: &str) {
    let mut pruned = BetweennessState::new_with(
        g.clone(),
        UpdateConfig {
            prune_unchanged: true,
            ..Default::default()
        },
    );
    let mut unpruned = BetweennessState::new_with(
        g.clone(),
        UpdateConfig {
            prune_unchanged: false,
            ..Default::default()
        },
    );
    for (step, &u) in stream.iter().enumerate() {
        pruned.apply(u).unwrap();
        unpruned.apply(u).unwrap();
        // Bitwise, not tolerance-based: Vec<f64> equality is exact.
        assert_eq!(
            pruned.scores().vbc,
            unpruned.scores().vbc,
            "{label}: VBC bits diverged at step {step} ({u:?})"
        );
        assert_eq!(
            pruned.scores().ebc,
            unpruned.scores().ebc,
            "{label}: EBC bits diverged at step {step} ({u:?})"
        );
    }
    // Both must also still agree with a recomputation from scratch.
    assert_matches_scratch(pruned.graph(), pruned.scores(), 1e-6, label);
    // The ablation is only meaningful if pruning actually skipped work.
    assert!(
        pruned.stats().popped < unpruned.stats().popped,
        "{label}: pruning popped {} vertices vs {} unpruned - nothing was pruned",
        pruned.stats().popped,
        unpruned.stats().popped,
    );
}

#[test]
fn pruning_is_bitwise_neutral_on_social_graph() {
    let g = holme_kim(64, 3, 0.5, 23);
    let stream = mixed_stream(&g, 24, 7);
    assert!(stream.len() >= 40, "stream too short: {}", stream.len());
    assert_prune_bitwise_neutral(&g, &stream, "holme-kim 64");
}

#[test]
fn pruning_is_bitwise_neutral_on_sparse_disconnecting_graph() {
    // Sparse G(n, m): removals routinely disconnect components, additions
    // merge them back - the d' = infinity paths stay bitwise-neutral too.
    let g = erdos_renyi_gnm(48, 56, 11);
    let stream = mixed_stream(&g, 28, 13);
    assert_prune_bitwise_neutral(&g, &stream, "sparse ER 48");
}

#[test]
fn pruning_is_bitwise_neutral_on_deep_path_with_chords() {
    // Deep BFS levels maximise the ancestor walks pruning cuts short.
    let mut g = Graph::with_vertices(40);
    for i in 0..39u32 {
        g.add_edge(i, i + 1).unwrap();
    }
    g.add_edge(0, 20).unwrap();
    let stream = [
        Update::add(5, 35),
        Update::remove(0, 20),
        Update::add(10, 39),
        Update::remove(19, 20),
        Update::add(0, 39),
        Update::remove(5, 35),
    ];
    assert_prune_bitwise_neutral(&g, &stream, "path with chords");
}
