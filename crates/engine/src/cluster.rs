//! The shared-nothing cluster engine (paper §5.2 and Figure 4).
//!
//! Each worker models one machine: it owns a **replica of the graph**
//! (the paper replicates `G` and `ES` to every machine via distributed
//! cache), a **private `BD` store** covering its source partition `Π_i`
//! (in memory, or its own on-disk file — "the disk access workload is
//! distributed in a balanced fashion across multiple disks"), and a
//! **partial score vector** (the map output
//! `⟨id, pbc_s(id)⟩ ∀ id, ∀ s ∈ Π_i`).
//!
//! Workers are **persistent threads** (see the private `pool` module) spawned once at
//! bootstrap and driven over channels, so the steady-state update path pays
//! one channel round-trip per worker instead of a thread spawn. The
//! coordinator keeps its own *validation replica* of the graph plus a
//! versioned [`ShardMap`] — the single ownership authority for bootstrap
//! partitioning, adoption of arriving vertices, and rebalance handoffs —
//! and never touches worker-owned state: graph mutations are validated
//! locally before dispatch (making worker-side graph errors impossible by
//! construction), ownership decisions come from the map, and post-update
//! facts such as edge-slot growth travel back in the [`ApplyReport`]
//! replies. [`ClusterEngine::rebalance`] executes the map's deterministic
//! plans through the pool's `Export`/`Import` handoff commands.
//!
//! Two reduce paths are offered:
//!
//! * [`ClusterEngine::reduce`] — the paper's reduce: fold the per-worker
//!   incremental partials, here tree-structured with workers pre-merging
//!   pairwise over channels (`t_M` of §5.3). Deterministic for a fixed
//!   worker count, but bitwise dependent on `p` because `f64` addition is
//!   not associative.
//! * [`ClusterEngine::reduce_exact`] — the partition-invariant reduction of
//!   [`ebc_core::exact`]: bitwise identical across worker counts, store
//!   backends, and the single-machine [`ebc_core::state::BetweennessState`].

use crate::pool::{ApplyEcho, Command, Reply, WorkerPool};
use crate::shardmap::{ShardMap, ShardMapError, SourceMove};
use ebc_core::api::{EbcEngine, EbcError, RebalanceOutcome, Reduced, ShardAssignment};
use ebc_core::bd::{BdError, BdStore, MemoryBdStore};
use ebc_core::exact::assemble;
use ebc_core::incremental::UpdateConfig;
use ebc_core::rankindex::ScoreDelta;
use ebc_core::state::Update;
use ebc_graph::csr::EpochGraph;
use ebc_graph::{EdgeId, EdgeOp, Graph, GraphError, VertexId};
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors from the cluster engine.
#[derive(Debug)]
pub enum EngineError {
    /// The update is invalid against the current graph (duplicate edge,
    /// missing edge, self-loop...). Rejected before dispatch; the engine
    /// stays usable.
    Graph(GraphError),
    /// A worker's store failed. The engine is poisoned from here on.
    Store(BdError),
    /// An addition referenced a vertex more than one past the maximum id.
    SparseVertex(VertexId),
    /// A handoff request violated the shard map's ownership rules.
    /// Rejected before dispatch; the engine stays usable.
    Shard(ShardMapError),
    /// A worker thread died (panic or channel loss). The engine is poisoned.
    WorkerLost(usize),
    /// The engine (or one of its workers) failed earlier; the state is no
    /// longer trustworthy and every operation answers with this error.
    Poisoned(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::SparseVertex(v) => write!(f, "vertex {v} skips ids"),
            EngineError::Shard(e) => write!(f, "shard map error: {e}"),
            EngineError::WorkerLost(w) => write!(f, "worker {w} thread lost"),
            EngineError::Poisoned(why) => write!(f, "engine poisoned: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<BdError> for EngineError {
    fn from(e: BdError) -> Self {
        EngineError::Store(e)
    }
}

impl From<ShardMapError> for EngineError {
    fn from(e: ShardMapError) -> Self {
        EngineError::Shard(e)
    }
}

impl From<EngineError> for EbcError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Graph(g) => EbcError::Graph(g),
            EngineError::Store(s) => EbcError::Store(s),
            EngineError::SparseVertex(v) => EbcError::SparseVertex(v),
            other => EbcError::Engine(other.to_string()),
        }
    }
}

/// Outcome of one [`ClusterEngine::rebalance`] call.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// The executed handoffs, in order (empty when the skew was already
    /// within the threshold).
    pub moves: Vec<SourceMove>,
    /// The effective threshold (requests below 1 are clamped up).
    pub threshold: usize,
    /// Map version after the last committed move.
    pub map_version: u64,
}

/// Timing breakdown of one parallel update (the quantities of §5.3).
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Wall-clock time of the slowest worker (the map phase critical path).
    pub map_wall: Duration,
    /// Per-worker busy times.
    pub per_worker: Vec<Duration>,
    /// Sum of all worker busy times (the "cumulative execution time" the
    /// paper compares against Brandes in Figure 6).
    pub cumulative: Duration,
    /// Worker that adopted a newly arrived vertex, if the update grew the
    /// graph (the pinned rule of [`ShardMap::adopt`]).
    pub adopter: Option<usize>,
}

/// Coordinator-side record of one dispatched, not-yet-collected update.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// Worker adopting a newly arrived vertex, if any.
    adopter: Option<usize>,
    /// Replica edge slots right after this update — what worker replies must
    /// echo, even when later updates are already dispatched.
    edge_slots: usize,
}

/// One dispatched, not-yet-collected event of a pipelined stream: a map task
/// awaiting its `p` `Applied` echoes, or a tree reduce awaiting worker 0's
/// `Merged` payload. Collection pops these in dispatch order, which is
/// exactly the order replies appear on each worker's FIFO reply channel.
enum Pending {
    Apply(InFlight),
    Reduce {
        /// Dispatch instant — the reported wall is dispatch-to-collect
        /// latency, i.e. how long the reduce rode the pipeline.
        t0: Instant,
        /// Replica shape at dispatch (the graph may grow before collection).
        n: usize,
        edge_slots: usize,
    },
}

/// A simulated shared-nothing cluster of `p` persistent workers.
///
/// Dropping the engine shuts down and joins every worker thread.
pub struct ClusterEngine<S: BdStore = MemoryBdStore> {
    pool: WorkerPool,
    /// The single writer of graph structure: validates updates, mutates the
    /// authoritative replica, and publishes frozen CSR epochs that every map
    /// task pins (workers hold `Arc` shares, not clones).
    replica: EpochGraph,
    /// The source→shard ownership authority; mirrors the workers' store
    /// membership move for move.
    map: ShardMap,
    /// Brandes single-source iterations the workers have run for this
    /// engine (bootstrap partitions plus adopted arrivals). A cluster
    /// resumed from recovered records starts at 0 — the observable witness
    /// that the restart was re-bootstrap-free.
    brandes_runs: u64,
    /// First unrecoverable failure; sticky.
    dead: Option<String>,
    /// The fast-reduce vector as of the last `take_score_delta` drain.
    /// Cluster deltas are produced by bit-diffing a fresh reduce against
    /// this cache: the values always come from the true reduce, so a rank
    /// index fed from the deltas stays bitwise equal to `scores()`.
    published_vbc: Option<Vec<f64>>,
    _store: PhantomData<fn() -> S>,
}

impl ClusterEngine<MemoryBdStore> {
    /// Bootstrap a `p`-worker cluster with in-memory stores.
    pub fn new(graph: &Graph, p: usize) -> Result<Self, EngineError> {
        Self::new_with(graph, p, UpdateConfig::default(), |_worker, n| {
            Ok(MemoryBdStore::new(n))
        })
    }

    /// Deprecated name of [`ClusterEngine::new`].
    #[deprecated(
        since = "0.1.0",
        note = "use ClusterEngine::new, or streaming_bc::Session::builder() for the \
                unified facade"
    )]
    pub fn bootstrap(graph: &Graph, p: usize) -> Result<Self, EngineError> {
        Self::new(graph, p)
    }
}

impl<S: BdStore + 'static> ClusterEngine<S> {
    /// Bootstrap with a custom per-worker store factory (e.g. one
    /// `ebc_store::DiskBdStore` file per worker, mirroring one disk per
    /// machine). Spawns the persistent pool, then runs the Brandes
    /// partitions in parallel on it.
    pub fn new_with(
        graph: &Graph,
        p: usize,
        cfg: UpdateConfig,
        mut store_factory: impl FnMut(usize, usize) -> Result<S, EngineError>,
    ) -> Result<Self, EngineError> {
        let n = graph.n();
        // the map's bootstrap layout is bit-identical to partition_ranges
        let map = ShardMap::bootstrap(n, p);
        let p = map.num_shards();
        let mut stores = Vec::with_capacity(p);
        for id in 0..p {
            stores.push(store_factory(id, n)?);
        }
        let replica = EpochGraph::new(graph.clone());
        let pool = WorkerPool::spawn(replica.pin(), cfg, stores);
        for worker in 0..p {
            let sources = map.sources_of(worker).to_vec();
            pool.send(worker, Command::Bootstrap { sources })?;
        }
        let brandes_runs = Self::collect_bootstraps(&pool)?;
        Ok(ClusterEngine {
            pool,
            replica,
            map,
            brandes_runs,
            dead: None,
            published_vbc: None,
            _store: PhantomData,
        })
    }

    /// Deprecated name of [`ClusterEngine::new_with`].
    #[deprecated(since = "0.1.0", note = "use ClusterEngine::new_with")]
    pub fn bootstrap_with(
        graph: &Graph,
        p: usize,
        cfg: UpdateConfig,
        store_factory: impl FnMut(usize, usize) -> Result<S, EngineError>,
    ) -> Result<Self, EngineError> {
        Self::new_with(graph, p, cfg, store_factory)
    }

    /// Restart a cluster from previously persisted per-worker stores
    /// **without re-running the Brandes bootstrap**: one worker is spawned
    /// per store, each rehydrating its partial scores from its own recovered
    /// `BD[·]` records (the ROADMAP's "resume a `ClusterEngine` directly
    /// from a recovered `ShardSet`" item — the facade's `Session::open`
    /// passes `ebc_store::ShardSet::open(dir).into_stores()` here).
    ///
    /// The source→shard map is rebuilt from the stores' membership lists and
    /// stamped with `map_version` (the recovered manifest version), so
    /// adoption and rebalance continue exactly where the killed incarnation
    /// stopped. Requirements checked up front: every store shaped for
    /// `graph.n()` vertices, and the union of their sources covering each
    /// vertex id exactly once. [`ClusterEngine::reduce_exact`] on the
    /// resumed engine is bitwise identical to the pre-kill value (the exact
    /// reduction depends only on the records), and
    /// [`ClusterEngine::brandes_runs`] starts at 0.
    pub fn resume(
        graph: &Graph,
        cfg: UpdateConfig,
        stores: Vec<S>,
        map_version: u64,
    ) -> Result<Self, EngineError> {
        let n = graph.n();
        if stores.is_empty() {
            return Err(EngineError::Store(BdError::Corrupt(
                "resume needs at least one store".into(),
            )));
        }
        for (k, store) in stores.iter().enumerate() {
            if store.n() != n {
                return Err(EngineError::Store(BdError::Corrupt(format!(
                    "store {k} holds records of {} vertices, graph has {n}",
                    store.n()
                ))));
            }
        }
        let owned: Vec<Vec<VertexId>> = stores.iter().map(|s| s.sources()).collect();
        if let Some(&s) = owned.iter().flatten().find(|&&s| s as usize >= n) {
            return Err(EngineError::Store(BdError::Corrupt(format!(
                "recovered source {s} outside the graph's 0..{n}"
            ))));
        }
        let total: usize = owned.iter().map(Vec::len).sum();
        if total != n {
            return Err(EngineError::Store(BdError::Corrupt(format!(
                "recovered stores own {total} sources, graph has {n}"
            ))));
        }
        let map = ShardMap::from_assignment_versioned(owned, map_version)?;
        // The CSR epoch is rebuilt from the structural snapshot's adjacency,
        // preserving its exact neighbour order — the resumed engine's
        // traversals (and hence its floating-point sums) are bitwise
        // identical to the killed incarnation's.
        let replica = EpochGraph::new(graph.clone());
        let pool = WorkerPool::spawn(replica.pin(), cfg, stores);
        for worker in 0..pool.len() {
            pool.send(worker, Command::Resume)?;
        }
        let brandes_runs = Self::collect_bootstraps(&pool)?;
        debug_assert_eq!(brandes_runs, 0, "resume must not run Brandes");
        Ok(ClusterEngine {
            pool,
            replica,
            map,
            brandes_runs,
            dead: None,
            published_vbc: None,
            _store: PhantomData,
        })
    }

    /// Collect one `Bootstrapped` reply per worker, summing the Brandes
    /// iteration counts. On any failure the first error is returned
    /// (dropping the pool joins whatever was spawned).
    fn collect_bootstraps(pool: &WorkerPool) -> Result<u64, EngineError> {
        let mut first_err = None;
        let mut runs = 0u64;
        for worker in 0..pool.len() {
            let err = match pool.recv(worker) {
                Ok(Reply::Bootstrapped(Ok(count))) => {
                    runs += count;
                    None
                }
                Ok(Reply::Bootstrapped(Err(e))) => Some(e),
                Ok(_) => Some(protocol_error(worker)),
                Err(e) => Some(e),
            };
            if let (Some(e), None) = (err, &first_err) {
                first_err = Some(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(runs),
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.pool.len()
    }

    /// Number of vertices in the replica.
    pub fn n(&self) -> usize {
        self.replica.graph().n()
    }

    /// The coordinator's authoritative replica of the evolving graph
    /// (workers pin published CSR epochs of it; nothing is cloned per
    /// worker or borrowed across threads).
    pub fn graph(&self) -> &Graph {
        self.replica.graph()
    }

    /// Per-worker owned-source counts (coordinator map; sums to `n`).
    pub fn source_counts(&self) -> &[usize] {
        self.map.counts()
    }

    /// Sum of per-worker source counts (sanity: equals current n).
    pub fn total_sources(&self) -> usize {
        self.map.total()
    }

    /// The coordinator's source→shard map (ownership, skew, version).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Brandes single-source iterations the workers have run for this
    /// engine: `n` right after a fresh bootstrap (plus one per adopted
    /// arrival since), and **0** right after [`ClusterEngine::resume`] —
    /// the counter the durable-restart suite asserts on.
    pub fn brandes_runs(&self) -> u64 {
        self.brandes_runs
    }

    fn ensure_live(&self) -> Result<(), EngineError> {
        match &self.dead {
            Some(why) => Err(EngineError::Poisoned(why.clone())),
            None => Ok(()),
        }
    }

    fn poison(&mut self, e: EngineError) -> EngineError {
        if self.dead.is_none() {
            self.dead = Some(e.to_string());
        }
        e
    }

    /// Validate one update against the coordinator replica, mutate it, and
    /// dispatch the map task to every worker. Returns the in-flight record
    /// (adopter plus the replica shape right after this update — the value
    /// worker replies must echo, even when later updates have already been
    /// dispatched). On a validation error nothing has been dispatched and
    /// the engine state is untouched.
    fn dispatch(&mut self, update: Update) -> Result<InFlight, EngineError> {
        let Update { op, u, v } = update;
        if u == v {
            return Err(EngineError::Graph(GraphError::SelfLoop(u)));
        }
        let mut adopter = None;
        let mut removed_eid: Option<EdgeId> = None;
        match op {
            EdgeOp::Add => {
                let hi = u.max(v);
                if hi as usize > self.replica.graph().n() {
                    return Err(EngineError::SparseVertex(hi));
                }
                if (hi as usize) == self.replica.graph().n() {
                    // Validate before growing so a rejected update leaves no
                    // trace; with u != v checked, an add that grows the
                    // graph cannot fail (the new endpoint has no edges yet).
                    self.replica.add_vertex();
                    match self.map.adopt(hi) {
                        Ok(k) => adopter = Some(k),
                        // unreachable by construction (hi == n is fresh);
                        // an owned id here means map and replica diverged
                        Err(e) => return Err(self.poison(EngineError::Shard(e))),
                    }
                }
                if let Err(e) = self.replica.add_edge(u, v) {
                    if adopter.is_some() {
                        // unreachable by construction; replica diverged
                        return Err(self.poison(EngineError::Graph(e)));
                    }
                    return Err(EngineError::Graph(e));
                }
            }
            EdgeOp::Remove => {
                removed_eid = Some(self.replica.remove_edge(u, v)?);
            }
        }
        // Publish the post-update epoch once; every worker pins the same
        // frozen snapshot (an `Arc` bump each, no copies).
        let view = self.replica.publish();
        for worker in 0..self.pool.len() {
            let adopt = if Some(worker) == adopter {
                Some(u.max(v))
            } else {
                None
            };
            let cmd = Command::Apply {
                update,
                removed_eid,
                adopt,
                view: Arc::clone(&view),
            };
            if let Err(e) = self.pool.send(worker, cmd) {
                return Err(self.poison(e));
            }
        }
        Ok(InFlight {
            adopter,
            edge_slots: self.replica.graph().edge_slots(),
        })
    }

    /// Collect the `p` map replies of the oldest in-flight update.
    fn collect(&mut self, inflight: InFlight) -> Result<ApplyReport, EngineError> {
        let p = self.pool.len();
        let mut per_worker = Vec::with_capacity(p);
        let mut edge_slots = None;
        let mut first_err: Option<EngineError> = None;
        for worker in 0..p {
            let echo: Result<ApplyEcho, EngineError> = match self.pool.recv(worker) {
                Ok(Reply::Applied(r)) => r,
                Ok(_) => Err(protocol_error(worker)),
                Err(e) => Err(e),
            };
            match echo {
                Ok(echo) => {
                    per_worker.push(echo.busy);
                    debug_assert!(
                        edge_slots.is_none_or(|s| s == echo.edge_slots),
                        "worker replicas diverged from each other"
                    );
                    edge_slots = Some(echo.edge_slots);
                }
                Err(e) if first_err.is_none() => first_err = Some(e),
                Err(_) => {}
            }
        }
        if let Some(e) = first_err {
            return Err(self.poison(e));
        }
        if inflight.adopter.is_some() {
            // the adopting worker ran one fresh Brandes iteration
            self.brandes_runs += 1;
        }
        // workers must echo the replica shape as of *this* update, not the
        // coordinator's current one (later updates may already be dispatched)
        debug_assert_eq!(edge_slots, Some(inflight.edge_slots));
        let map_wall = per_worker.iter().copied().max().unwrap_or_default();
        let cumulative = per_worker.iter().sum();
        Ok(ApplyReport {
            map_wall,
            per_worker,
            cumulative,
            adopter: inflight.adopter,
        })
    }

    /// Apply one update on all workers in parallel (the map phase). The
    /// slowest worker's busy time is the update's wall-clock critical path.
    pub fn apply(&mut self, update: Update) -> Result<ApplyReport, EngineError> {
        self.ensure_live()?;
        let inflight = self.dispatch(update)?;
        self.collect(inflight)
    }

    /// Apply a batch of updates, pipelining command dispatch against reply
    /// collection: while the workers chew on update `k`, updates up to
    /// `k + window` are already validated, adoption-assigned and queued on
    /// their channels, so the coordinator's bookkeeping never sits on the
    /// map-phase critical path.
    ///
    /// Updates are applied in order; on a validation error the previously
    /// dispatched prefix still completes (the engine stays consistent and
    /// usable) and the error is returned. Worker-side failures poison the
    /// engine.
    pub fn apply_stream(&mut self, updates: &[Update]) -> Result<Vec<ApplyReport>, EngineError> {
        let (reports, _, first_err) = self.stream_inner(updates, 0)?;
        match first_err {
            Some(e) => Err(e),
            None => Ok(reports),
        }
    }

    /// [`ClusterEngine::apply_stream`], but on a mid-stream validation
    /// error the reports of the applied prefix are returned alongside the
    /// error instead of being discarded — journaling layers need to know
    /// exactly which prefix became durable state. Worker-side failures
    /// still poison the engine and surface as the outer `Err`.
    pub fn apply_stream_reported(
        &mut self,
        updates: &[Update],
    ) -> Result<(Vec<ApplyReport>, Option<EngineError>), EngineError> {
        let (reports, _, first_err) = self.stream_inner(updates, 0)?;
        Ok((reports, first_err))
    }

    /// [`ClusterEngine::apply_stream`] with overlapped tree reduces: after
    /// every `reduce_every` updates a `Command::MergePartials` round is
    /// dispatched *without waiting* — workers snapshot their partials into
    /// the merge (the double buffer) and keep chewing on the already-queued
    /// map tasks of the next batch, so the reduce of batch `k` rides the
    /// pipeline alongside the map phase of batch `k+1` instead of
    /// barriering it. A trailing reduce covers the final partial batch, so
    /// the last [`Reduced`] always reflects the full stream.
    ///
    /// Each reduce observes exactly the updates dispatched before it (FIFO
    /// command order per worker), and folds partials up the same fixed
    /// pairwise tree as [`ClusterEngine::reduce`] — overlap changes *when*
    /// the fold runs, never its shape, so the summation order (and thus the
    /// bits) per observed prefix is identical to the barriered path.
    /// `Reduced::wall` here is dispatch-to-collect pipeline latency.
    pub fn apply_stream_reduced(
        &mut self,
        updates: &[Update],
        reduce_every: usize,
    ) -> Result<(Vec<ApplyReport>, Vec<Reduced>), EngineError> {
        let (reports, reduces, first_err) = self.stream_inner(updates, reduce_every.max(1))?;
        match first_err {
            Some(e) => Err(e),
            None => Ok((reports, reduces)),
        }
    }

    /// Shared pipelined loop: dispatch up to `window` events ahead of
    /// collection; `reduce_every == 0` disables interleaved reduces. The
    /// outer `Err` is an engine-poisoning worker failure; a validation
    /// error travels in the third slot with the applied prefix's reports
    /// intact (on validation errors every dispatched op completes, so
    /// `reports.len()` is exactly the applied count).
    #[allow(clippy::type_complexity)]
    fn stream_inner(
        &mut self,
        updates: &[Update],
        reduce_every: usize,
    ) -> Result<(Vec<ApplyReport>, Vec<Reduced>, Option<EngineError>), EngineError> {
        self.ensure_live()?;
        let window = (2 * self.pool.len()).max(4);
        let mut reports = Vec::with_capacity(updates.len());
        let mut reduces = Vec::new();
        let mut pending: VecDeque<Pending> = VecDeque::with_capacity(window + 1);
        let mut first_err: Option<EngineError> = None;
        let mut dispatched = 0usize;
        let mut reduced_at = 0usize;
        loop {
            let want_dispatch =
                dispatched < updates.len() && first_err.is_none() && pending.len() < window;
            if want_dispatch {
                match self.dispatch(updates[dispatched]) {
                    Ok(record) => {
                        pending.push_back(Pending::Apply(record));
                        dispatched += 1;
                        if reduce_every > 0 && dispatched.is_multiple_of(reduce_every) {
                            self.dispatch_reduce(&mut pending)?;
                            reduced_at = dispatched;
                        }
                    }
                    Err(e) => {
                        first_err = Some(e);
                    }
                }
                continue;
            }
            if reduce_every > 0
                && first_err.is_none()
                && dispatched == updates.len()
                && reduced_at < dispatched
            {
                self.dispatch_reduce(&mut pending)?;
                reduced_at = dispatched;
                continue;
            }
            let Some(event) = pending.pop_front() else {
                break;
            };
            match event {
                Pending::Apply(inflight) => match self.collect(inflight) {
                    Ok(report) => reports.push(report),
                    // Worker failure: the engine is poisoned; stop reading.
                    Err(e) => return Err(e),
                },
                Pending::Reduce { t0, n, edge_slots } => {
                    let mut scores = match self.pool.recv(0) {
                        Ok(Reply::Merged(scores)) => *scores,
                        Ok(_) => return Err(self.poison(protocol_error(0))),
                        Err(e) => return Err(self.poison(e)),
                    };
                    scores.ensure_shape(n, edge_slots);
                    reduces.push(Reduced {
                        scores,
                        wall: t0.elapsed(),
                    });
                }
            }
        }
        Ok((reports, reduces, first_err))
    }

    /// Queue one non-blocking tree reduce on all workers, recording the
    /// pending `Merged` collection with the replica shape as of dispatch.
    fn dispatch_reduce(&mut self, pending: &mut VecDeque<Pending>) -> Result<(), EngineError> {
        let t0 = Instant::now();
        let p = self.pool.len();
        for (worker, plan) in WorkerPool::merge_plans(p).into_iter().enumerate() {
            if let Err(e) = self.pool.send(worker, Command::MergePartials { plan }) {
                return Err(self.poison(e));
            }
        }
        pending.push_back(Pending::Reduce {
            t0,
            n: self.replica.graph().n(),
            edge_slots: self.replica.graph().edge_slots(),
        });
        Ok(())
    }

    /// Execute one source handoff through the worker pool: the donor
    /// exports (journal + removal inside its private store), the recipient
    /// imports, the map commits, and the donor's export journal is retired
    /// — the live rendition of the `ebc-store` `ShardSet` protocol.
    /// Ownership violations are rejected before any worker is touched;
    /// worker-side failures poison the engine (the move may be
    /// half-applied).
    fn execute_move(&mut self, mv: SourceMove) -> Result<(), EngineError> {
        let p = self.pool.len();
        if mv.from >= p || mv.to >= p || mv.from == mv.to {
            return Err(EngineError::Shard(ShardMapError::BadShard(
                mv.to.max(mv.from),
            )));
        }
        match self.map.owner_of(mv.source) {
            Some(k) if k == mv.from => {}
            _ => {
                return Err(EngineError::Shard(ShardMapError::NotOwnedBy(
                    mv.source, mv.from,
                )))
            }
        }
        let export = Command::Export {
            source: mv.source,
            tag: mv.to as u64,
        };
        if let Err(e) = self.pool.send(mv.from, export) {
            return Err(self.poison(e));
        }
        let record = match self.pool.recv(mv.from) {
            Ok(Reply::Exported(r)) => match *r {
                Ok(rec) => rec,
                Err(e) => return Err(self.poison(e)),
            },
            Ok(_) => return Err(self.poison(protocol_error(mv.from))),
            Err(e) => return Err(self.poison(e)),
        };
        let record = Box::new(record);
        if let Err(e) = self.pool.send(mv.to, Command::Import { record }) {
            return Err(self.poison(e));
        }
        match self.pool.recv(mv.to) {
            Ok(Reply::Imported(Ok(()))) => {}
            Ok(Reply::Imported(Err(e))) => return Err(self.poison(e)),
            Ok(_) => return Err(self.poison(protocol_error(mv.to))),
            Err(e) => return Err(self.poison(e)),
        }
        // map commit, then retire the donor's export journal (same order as
        // the at-rest protocol: commit before cleanup)
        if let Err(e) = self.map.apply_move(&mv) {
            return Err(self.poison(EngineError::Shard(e)));
        }
        let retire = Command::Retire { source: mv.source };
        if let Err(e) = self.pool.send(mv.from, retire) {
            return Err(self.poison(e));
        }
        match self.pool.recv(mv.from) {
            Ok(Reply::Retired(Ok(()))) => Ok(()),
            Ok(Reply::Retired(Err(e))) => Err(self.poison(e)),
            Ok(_) => Err(self.poison(protocol_error(mv.from))),
            Err(e) => Err(self.poison(e)),
        }
    }

    /// Hand one source to the given worker (an explicit, out-of-plan move —
    /// e.g. draining a machine). Scores are unaffected: the exact reduce is
    /// bitwise invariant to ownership, and the fast reduce's partial sums
    /// still cover every source exactly once.
    pub fn handoff(&mut self, source: VertexId, to: usize) -> Result<(), EngineError> {
        self.ensure_live()?;
        let from = self
            .map
            .owner_of(source)
            .ok_or(EngineError::Shard(ShardMapError::Unowned(source)))?;
        self.execute_move(SourceMove { source, from, to })
    }

    /// Restore the owned-source skew invariant: compute the map's
    /// deterministic plan for `threshold` (see
    /// [`ShardMap::plan_rebalance`]) and execute it move by move through
    /// the pool's handoff path. After success `max − min ≤ threshold`
    /// across workers, and the map version has advanced once per move.
    pub fn rebalance(&mut self, threshold: usize) -> Result<RebalanceReport, EngineError> {
        self.ensure_live()?;
        let plan = self.map.plan_rebalance(threshold);
        for &mv in &plan.moves {
            self.execute_move(mv)?;
        }
        debug_assert!(self.map.skew() <= plan.threshold);
        Ok(RebalanceReport {
            moves: plan.moves,
            threshold: plan.threshold,
            map_version: self.map.version(),
        })
    }

    /// Reduce phase (the paper's `t_M`): fold the per-worker incremental
    /// partials up a binary tree, workers pre-merging pairwise over channels
    /// so the coordinator receives one vector instead of `p`. Returns the
    /// scores together with the merge wall-clock time ([`Reduced`]).
    ///
    /// Deterministic for a fixed worker count; across different `p` the
    /// result varies in the last bits (floating-point summation order) — use
    /// [`ClusterEngine::reduce_exact`] for the partition-invariant value.
    pub fn reduce(&mut self) -> Result<Reduced, EngineError> {
        self.ensure_live()?;
        let t0 = Instant::now();
        let p = self.pool.len();
        for (worker, plan) in WorkerPool::merge_plans(p).into_iter().enumerate() {
            if let Err(e) = self.pool.send(worker, Command::MergePartials { plan }) {
                return Err(self.poison(e));
            }
        }
        let mut scores = match self.pool.recv(0) {
            Ok(Reply::Merged(scores)) => *scores,
            Ok(_) => return Err(self.poison(protocol_error(0))),
            Err(e) => return Err(self.poison(e)),
        };
        scores.ensure_shape(self.replica.graph().n(), self.replica.graph().edge_slots());
        Ok(Reduced {
            scores,
            wall: t0.elapsed(),
        })
    }

    /// Partition-invariant exact reduce: every worker derives its owned
    /// sources' contributions from the `BD` records and combines them into
    /// canonical segments of the fixed source tree; the coordinator
    /// assembles the root. Bitwise identical across worker counts, store
    /// backends, and [`ebc_core::state::BetweennessState::exact_scores`] —
    /// the oracle the consistency suite pins the engine against.
    pub fn reduce_exact(&mut self) -> Result<Reduced, EngineError> {
        self.ensure_live()?;
        let t0 = Instant::now();
        let p = self.pool.len();
        for worker in 0..p {
            if let Err(e) = self.pool.send(worker, Command::Segments) {
                return Err(self.poison(e));
            }
        }
        let mut segments = Vec::new();
        let mut first_err: Option<EngineError> = None;
        for worker in 0..p {
            let err = match self.pool.recv(worker) {
                Ok(Reply::Segments(Ok(segs))) => {
                    segments.extend(segs);
                    None
                }
                Ok(Reply::Segments(Err(e))) => Some(e),
                Ok(_) => Some(protocol_error(worker)),
                Err(e) => Some(e),
            };
            if let (Some(e), None) = (err, &first_err) {
                first_err = Some(e);
            }
        }
        if let Some(e) = first_err {
            return Err(self.poison(e));
        }
        let n = self.replica.graph().n();
        let shape = (n, self.replica.graph().edge_slots());
        let scores = assemble(segments, n, shape).ok_or_else(|| {
            self.poison(EngineError::Store(BdError::Corrupt(
                "worker segments do not tile the source range".into(),
            )))
        })?;
        Ok(Reduced {
            scores,
            wall: t0.elapsed(),
        })
    }

    /// Flush every worker's store to durable storage (no-op for memory
    /// stores) — the cluster half of the facade's checkpoint path.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        self.ensure_live()?;
        let p = self.pool.len();
        for worker in 0..p {
            if let Err(e) = self.pool.send(worker, Command::Flush) {
                return Err(self.poison(e));
            }
        }
        let mut first_err: Option<EngineError> = None;
        for worker in 0..p {
            let err = match self.pool.recv(worker) {
                Ok(Reply::Flushed(Ok(()))) => None,
                Ok(Reply::Flushed(Err(e))) => Some(e),
                Ok(_) => Some(protocol_error(worker)),
                Err(e) => Some(e),
            };
            if let (Some(e), None) = (err, &first_err) {
                first_err = Some(e);
            }
        }
        match first_err {
            Some(e) => Err(self.poison(e)),
            None => Ok(()),
        }
    }
}

impl<S: BdStore + 'static> EbcEngine for ClusterEngine<S> {
    fn graph(&self) -> &Graph {
        ClusterEngine::graph(self)
    }

    fn workers(&self) -> usize {
        self.num_workers()
    }

    fn apply(&mut self, update: Update) -> Result<(), EbcError> {
        ClusterEngine::apply(self, update)?;
        Ok(())
    }

    fn apply_stream(&mut self, updates: &[Update]) -> Result<(), EbcError> {
        ClusterEngine::apply_stream(self, updates)?;
        Ok(())
    }

    fn apply_stream_counted(&mut self, updates: &[Update]) -> (usize, Result<(), EbcError>) {
        match ClusterEngine::apply_stream_reported(self, updates) {
            Ok((reports, None)) => (reports.len(), Ok(())),
            Ok((reports, Some(e))) => (reports.len(), Err(e.into())),
            // poisoned: the count is a lower bound, but the engine is
            // unusable and the session must be reopened anyway
            Err(e) => (0, Err(e.into())),
        }
    }

    fn scores(&mut self) -> Result<Reduced, EbcError> {
        Ok(self.reduce()?)
    }

    fn take_score_delta(&mut self) -> Result<ScoreDelta, EbcError> {
        // Per-worker dirty sets cannot feed the index directly: folding
        // `new - old` into a published vector re-runs the summation in a
        // different order and drifts in the last bit. Instead diff a fresh
        // fast reduce against the previously drained one.
        let vbc = self.reduce()?.scores.vbc;
        Ok(ScoreDelta::from_diff(&mut self.published_vbc, vbc))
    }

    fn reduce_exact(&mut self) -> Result<Reduced, EbcError> {
        Ok(ClusterEngine::reduce_exact(self)?)
    }

    fn flush(&mut self) -> Result<(), EbcError> {
        Ok(ClusterEngine::flush(self)?)
    }

    fn shard_map_version(&self) -> Option<u64> {
        Some(self.map.version())
    }

    fn brandes_runs(&self) -> Option<u64> {
        Some(ClusterEngine::brandes_runs(self))
    }

    fn shard_map(&self) -> Option<ShardAssignment> {
        let assignment = (0..self.map.num_shards())
            .map(|k| self.map.sources_of(k).to_vec())
            .collect();
        Some(ShardAssignment {
            version: self.map.version(),
            assignment,
        })
    }

    fn handoff(&mut self, source: VertexId, to: usize) -> Result<RebalanceOutcome, EbcError> {
        let from = self
            .map
            .owner_of(source)
            .ok_or(EngineError::Shard(ShardMapError::Unowned(source)))?;
        ClusterEngine::handoff(self, source, to)?;
        Ok(RebalanceOutcome {
            moves: vec![(source, from, to)],
            threshold: 0,
            map_version: self.map.version(),
        })
    }

    fn rebalance(&mut self, threshold: usize) -> Result<RebalanceOutcome, EbcError> {
        let report = ClusterEngine::rebalance(self, threshold)?;
        Ok(RebalanceOutcome {
            moves: report
                .moves
                .iter()
                .map(|mv| (mv.source, mv.from, mv.to))
                .collect(),
            threshold: report.threshold,
            map_version: report.map_version,
        })
    }
}

fn protocol_error(worker: usize) -> EngineError {
    EngineError::Poisoned(format!("worker {worker} answered out of protocol"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_core::scores::Scores;
    use ebc_core::state::BetweennessState;
    use ebc_core::verify::assert_matches_scratch;
    use ebc_gen::models::holme_kim;

    #[test]
    fn cluster_matches_single_state() {
        let g = holme_kim(40, 3, 0.4, 7);
        let mut cluster = ClusterEngine::new(&g, 4).unwrap();
        let mut single = BetweennessState::new(&g);
        // bootstrap equivalence
        let scores = cluster.reduce().unwrap().scores;
        assert!(scores.max_vbc_diff(single.scores()) < 1e-9);

        let updates = [
            Update::add(0, 25),
            Update::add(3, 17),
            Update::remove(0, 25),
            Update::add(10, 30),
        ];
        for u in updates {
            cluster.apply(u).unwrap();
            single.apply(u).unwrap();
            let scores = cluster.reduce().unwrap().scores;
            assert!(
                scores.max_vbc_diff(single.scores()) < 1e-9,
                "VBC after {u:?}"
            );
            assert!(
                scores.max_ebc_diff(single.scores(), single.graph()) < 1e-9,
                "EBC after {u:?}"
            );
        }
    }

    #[test]
    fn cluster_handles_removals_that_disconnect() {
        let mut g = Graph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            g.add_edge(u, v).unwrap();
        }
        let mut cluster = ClusterEngine::new(&g, 3).unwrap();
        cluster.apply(Update::remove(2, 3)).unwrap();
        let scores = cluster.reduce().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "disconnect");
    }

    #[test]
    fn cluster_adopts_new_vertices_balanced() {
        let g = holme_kim(20, 2, 0.3, 3);
        let mut cluster = ClusterEngine::new(&g, 3).unwrap();
        assert_eq!(cluster.total_sources(), 20);
        let r1 = cluster.apply(Update::add(5, 20)).unwrap(); // new vertex 20
        let r2 = cluster.apply(Update::add(20, 21)).unwrap(); // and 21
                                                              // ranges are [7, 7, 6]: worker 2 adopts first, then worker 0
        assert_eq!(r1.adopter, Some(2));
        assert_eq!(r2.adopter, Some(0));
        assert_eq!(cluster.total_sources(), 22);
        let scores = cluster.reduce().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "growth");
    }

    #[test]
    fn single_worker_cluster_is_degenerate_case() {
        let g = holme_kim(15, 2, 0.2, 5);
        let mut cluster = ClusterEngine::new(&g, 1).unwrap();
        cluster.apply(Update::add(0, 9)).unwrap();
        let scores = cluster.reduce().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "p=1");
    }

    #[test]
    fn more_workers_than_sources() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut cluster = ClusterEngine::new(&g, 8).unwrap();
        cluster.apply(Update::add(0, 2)).unwrap();
        let scores = cluster.reduce().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "p>n");
    }

    #[test]
    fn apply_report_shapes() {
        let g = holme_kim(25, 2, 0.3, 9);
        let mut cluster = ClusterEngine::new(&g, 4).unwrap();
        let rep = cluster.apply(Update::add(0, 13)).unwrap();
        assert_eq!(rep.per_worker.len(), 4);
        assert!(rep.map_wall >= *rep.per_worker.iter().max().unwrap());
        assert!(rep.cumulative >= rep.map_wall);
        assert_eq!(rep.adopter, None);
    }

    #[test]
    fn sparse_vertex_rejected() {
        let g = holme_kim(10, 2, 0.3, 9);
        let mut cluster = ClusterEngine::new(&g, 2).unwrap();
        assert!(matches!(
            cluster.apply(Update::add(0, 99)),
            Err(EngineError::SparseVertex(99))
        ));
        // validation errors do not poison: the engine keeps working
        cluster.apply(Update::add(0, 9)).unwrap();
    }

    #[test]
    fn validation_errors_leave_engine_usable() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut cluster = ClusterEngine::new(&g, 2).unwrap();
        assert!(matches!(
            cluster.apply(Update::add(0, 1)),
            Err(EngineError::Graph(GraphError::DuplicateEdge(0, 1)))
        ));
        assert!(matches!(
            cluster.apply(Update::remove(0, 3)),
            Err(EngineError::Graph(GraphError::MissingEdge(0, 3)))
        ));
        assert!(matches!(
            cluster.apply(Update::add(2, 2)),
            Err(EngineError::Graph(GraphError::SelfLoop(2)))
        ));
        cluster.apply(Update::add(0, 2)).unwrap();
        let scores = cluster.reduce().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "after rejects");
    }

    #[test]
    fn apply_stream_matches_per_update_applies() {
        let g = holme_kim(30, 2, 0.4, 11);
        let updates = [
            Update::add(0, 17),
            Update::add(2, 29),
            Update::remove(0, 17),
            Update::add(5, 30), // grows
            Update::add(30, 31),
        ];
        let mut streamed = ClusterEngine::new(&g, 3).unwrap();
        let reports = streamed.apply_stream(&updates).unwrap();
        assert_eq!(reports.len(), updates.len());
        let mut stepped = ClusterEngine::new(&g, 3).unwrap();
        for u in updates {
            stepped.apply(u).unwrap();
        }
        // identical worker count and history => bitwise-equal partials
        let a = streamed.reduce().unwrap().scores;
        let b = stepped.reduce().unwrap().scores;
        assert_eq!(a, b);
        // and adopters recorded in stream order
        assert_eq!(reports.iter().filter_map(|r| r.adopter).count(), 2);
    }

    #[test]
    fn overlapped_stream_reduces_match_barriered_reduces() {
        let g = holme_kim(30, 2, 0.4, 11);
        let updates = [
            Update::add(0, 17),
            Update::add(2, 29),
            Update::remove(0, 17),
            Update::add(5, 30), // grows
            Update::add(30, 31),
        ];
        let mut overlapped = ClusterEngine::new(&g, 3).unwrap();
        let (reports, reduces) = overlapped.apply_stream_reduced(&updates, 2).unwrap();
        assert_eq!(reports.len(), updates.len());
        // one reduce per full batch of 2 plus the trailing partial batch
        assert_eq!(reduces.len(), 3);
        // oracle: barriered apply-then-reduce at the same prefixes must give
        // the same bits — overlap changes when the fold runs, not its shape
        let mut barrier = ClusterEngine::new(&g, 3).unwrap();
        let mut k = 0;
        for (i, u) in updates.iter().enumerate() {
            barrier.apply(*u).unwrap();
            if (i + 1) % 2 == 0 || i + 1 == updates.len() {
                let b = barrier.reduce().unwrap().scores;
                assert_eq!(
                    bits(&reduces[k].scores),
                    bits(&b),
                    "overlapped reduce {k} diverged from the barriered fold"
                );
                k += 1;
            }
        }
    }

    #[test]
    fn apply_stream_surfaces_mid_stream_validation_error() {
        let mut g = Graph::with_vertices(20);
        for i in 0..19 {
            g.add_edge(i, i + 1).unwrap();
        }
        let mut cluster = ClusterEngine::new(&g, 2).unwrap();
        let updates = [
            Update::add(0, 15),
            Update::remove(0, 15),
            Update::remove(0, 15), // now missing
            Update::add(1, 16),
        ];
        assert!(matches!(
            cluster.apply_stream(&updates),
            Err(EngineError::Graph(GraphError::MissingEdge(0, 15)))
        ));
        // prefix was applied, engine consistent and alive
        let scores = cluster.reduce().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "after stream error");
    }

    #[test]
    fn exact_reduce_matches_scratch() {
        let g = holme_kim(26, 3, 0.5, 13);
        let mut cluster = ClusterEngine::new(&g, 3).unwrap();
        cluster.apply(Update::add(0, 19)).unwrap();
        cluster.apply(Update::remove(0, 19)).unwrap();
        let exact = cluster.reduce_exact().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &exact, 1e-6, "exact reduce");
    }

    fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
        (
            s.vbc.iter().map(|x| x.to_bits()).collect(),
            s.ebc.iter().map(|x| x.to_bits()).collect(),
        )
    }

    #[test]
    fn handoff_moves_ownership_without_changing_scores() {
        let g = holme_kim(24, 3, 0.4, 17);
        let mut cluster = ClusterEngine::new(&g, 3).unwrap();
        cluster.apply(Update::add(0, 24)).unwrap(); // grows: vertex 24
        let before = cluster.reduce_exact().unwrap().scores;
        // drain worker 0 entirely onto the others
        let owned: Vec<u32> = cluster.shard_map().sources_of(0).to_vec();
        for (i, s) in owned.into_iter().enumerate() {
            cluster.handoff(s, 1 + i % 2).unwrap();
        }
        assert_eq!(cluster.source_counts()[0], 0);
        assert_eq!(cluster.total_sources(), 25);
        let after = cluster.reduce_exact().unwrap().scores;
        assert_eq!(bits(&before), bits(&after), "handoff changed the scores");
        // the cluster keeps working: updates land on the new owners
        cluster.apply(Update::add(5, 25)).unwrap();
        let exact = cluster.reduce_exact().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &exact, 1e-6, "post-handoff");
    }

    #[test]
    fn rebalance_restores_skew_and_is_score_neutral() {
        let g = holme_kim(20, 2, 0.3, 19);
        let mut cluster = ClusterEngine::new(&g, 4).unwrap();
        // skew: pile everything worker 2 and 3 own onto worker 0
        for s in cluster.shard_map().sources_of(2).to_vec() {
            cluster.handoff(s, 0).unwrap();
        }
        for s in cluster.shard_map().sources_of(3).to_vec() {
            cluster.handoff(s, 0).unwrap();
        }
        assert_eq!(cluster.shard_map().skew(), 15);
        let version_before = cluster.shard_map().version();
        let before = cluster.reduce_exact().unwrap().scores;
        let report = cluster.rebalance(1).unwrap();
        assert!(!report.moves.is_empty());
        assert!(cluster.shard_map().skew() <= 1);
        assert_eq!(
            report.map_version,
            version_before + report.moves.len() as u64
        );
        let after = cluster.reduce_exact().unwrap().scores;
        assert_eq!(bits(&before), bits(&after), "rebalance changed the scores");
        // idempotent once balanced
        assert!(cluster.rebalance(1).unwrap().moves.is_empty());
    }

    #[test]
    fn invalid_handoffs_rejected_without_poisoning() {
        let g = holme_kim(12, 2, 0.3, 23);
        let mut cluster = ClusterEngine::new(&g, 2).unwrap();
        assert!(matches!(
            cluster.handoff(99, 1),
            Err(EngineError::Shard(ShardMapError::Unowned(99)))
        ));
        assert!(matches!(
            cluster.handoff(0, 7),
            Err(EngineError::Shard(ShardMapError::BadShard(7)))
        ));
        // source 0 lives on worker 0: a self-handoff is rejected too
        assert!(matches!(
            cluster.handoff(0, 0),
            Err(EngineError::Shard(ShardMapError::BadShard(0)))
        ));
        // none of that touched a worker: the engine stays healthy
        cluster.apply(Update::add(0, 12)).unwrap();
        cluster.handoff(0, 1).unwrap();
        let exact = cluster.reduce_exact().unwrap().scores;
        assert_matches_scratch(cluster.graph(), &exact, 1e-6, "after rejects");
    }

    #[test]
    fn adoption_and_handoff_share_the_map() {
        let g = holme_kim(9, 2, 0.3, 29);
        let mut cluster = ClusterEngine::new(&g, 3).unwrap();
        // counts [3, 3, 3]; drain worker 0 (sources 0 and 2 to worker 1,
        // source 1 to worker 2) → [0, 5, 4]
        for (i, s) in (0..3u32).enumerate() {
            cluster.handoff(s, 1 + i % 2).unwrap();
        }
        assert_eq!(cluster.source_counts(), &[0, 5, 4]);
        // a new vertex must be adopted by the now-lightest worker 0
        let r = cluster.apply(Update::add(0, 9)).unwrap();
        assert_eq!(r.adopter, Some(0));
        assert_eq!(cluster.shard_map().owner_of(9), Some(0));
    }
}
