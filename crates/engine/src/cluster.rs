//! The shared-nothing cluster engine (paper §5.2 and Figure 4).
//!
//! Each worker models one machine: it owns a **replica of the graph**
//! (the paper replicates `G` and `ES` to every machine via distributed
//! cache), a **private `BD` store** covering its source partition `Π_i`
//! (in memory, or its own on-disk file — "the disk access workload is
//! distributed in a balanced fashion across multiple disks"), and a
//! **partial score vector** (the map output
//! `⟨id, pbc_s(id)⟩ ∀ id, ∀ s ∈ Π_i`). The reduce step sums partials.

use crate::partition::partition_ranges;
use ebc_core::bd::{BdError, BdStore, MemoryBdStore};
use ebc_core::brandes::{single_source_update_with, BrandesScratch};
use ebc_core::incremental::{update_source, UpdateConfig, Workspace};
use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_graph::{EdgeOp, Graph, GraphError, VertexId};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from the cluster engine.
#[derive(Debug)]
pub enum EngineError {
    /// Graph replica rejected the update.
    Graph(GraphError),
    /// A worker's store failed.
    Store(BdError),
    /// An addition referenced a vertex more than one past the maximum id.
    SparseVertex(VertexId),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::SparseVertex(v) => write!(f, "vertex {v} skips ids"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<BdError> for EngineError {
    fn from(e: BdError) -> Self {
        EngineError::Store(e)
    }
}

/// Timing breakdown of one parallel update (the quantities of §5.3).
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Wall-clock time of the slowest worker (the map phase critical path).
    pub map_wall: Duration,
    /// Per-worker busy times.
    pub per_worker: Vec<Duration>,
    /// Sum of all worker busy times (the "cumulative execution time" the
    /// paper compares against Brandes in Figure 6).
    pub cumulative: Duration,
}

struct Worker<S: BdStore> {
    id: usize,
    graph: Graph,
    store: S,
    partial: Scores,
    ws: Workspace,
    scratch: BrandesScratch,
    cfg: UpdateConfig,
}

impl<S: BdStore> Worker<S> {
    /// Bootstrap this worker's partition: one Brandes iteration per owned
    /// source, accumulating into the partial scores (step 1 of Figure 4).
    fn bootstrap(&mut self, sources: impl Iterator<Item = VertexId>) -> Result<(), EngineError> {
        for s in sources {
            let r = single_source_update_with(&self.graph, s, &mut self.partial, &mut self.scratch);
            self.store.add_source(s, r.d, r.sigma, r.delta)?;
        }
        Ok(())
    }

    /// Map task for one update: refresh own replica, then run the kernel for
    /// every owned source (skipping `dd == 0` via the cheap peek).
    fn apply(
        &mut self,
        update: Update,
        new_source: Option<VertexId>,
    ) -> Result<Duration, EngineError> {
        let t0 = Instant::now();
        let Update { op, u, v } = update;
        let removed_eid = match op {
            EdgeOp::Add => {
                let hi = u.max(v);
                if hi as usize > self.graph.n() {
                    return Err(EngineError::SparseVertex(hi));
                }
                if (hi as usize) == self.graph.n() {
                    self.graph.add_vertex();
                    self.store.grow_vertex()?;
                    self.ws.grow(self.graph.n());
                }
                self.graph.add_edge(u, v)?;
                None
            }
            EdgeOp::Remove => Some(self.graph.remove_edge(u, v)?),
        };
        self.partial
            .ensure_shape(self.graph.n(), self.graph.edge_slots());
        let graph = &self.graph;
        let partial = &mut self.partial;
        let ws = &mut self.ws;
        let cfg = &self.cfg;
        for s in self.store.sources() {
            let (a, b) = self.store.peek_pair(s, u, v)?;
            if a == b {
                ws.stats.sources_skipped += 1;
                continue;
            }
            self.store.update_with(s, &mut |view| {
                update_source(graph, s, op, u, v, view, partial, ws, cfg)
            })?;
        }
        if let Some(s_new) = new_source {
            let r =
                single_source_update_with(&self.graph, s_new, &mut self.partial, &mut self.scratch);
            self.store.add_source(s_new, r.d, r.sigma, r.delta)?;
        }
        if let Some(eid) = removed_eid {
            self.partial.ebc[eid as usize] = 0.0;
        }
        Ok(t0.elapsed())
    }
}

/// A simulated shared-nothing cluster of `p` workers.
pub struct ClusterEngine<S: BdStore = MemoryBdStore> {
    workers: Vec<Worker<S>>,
    n: usize,
    edge_slots: usize,
}

impl ClusterEngine<MemoryBdStore> {
    /// Bootstrap a `p`-worker cluster with in-memory stores.
    pub fn bootstrap(graph: &Graph, p: usize) -> Result<Self, EngineError> {
        Self::bootstrap_with(graph, p, UpdateConfig::default(), |_worker, n| {
            Ok(MemoryBdStore::new(n))
        })
    }
}

impl<S: BdStore> ClusterEngine<S> {
    /// Bootstrap with a custom per-worker store factory (e.g. one
    /// [`ebc_store::DiskBdStore`] file per worker, mirroring one disk per
    /// machine). Bootstrap runs the Brandes partitions in parallel.
    pub fn bootstrap_with(
        graph: &Graph,
        p: usize,
        cfg: UpdateConfig,
        mut store_factory: impl FnMut(usize, usize) -> Result<S, EngineError>,
    ) -> Result<Self, EngineError> {
        let n = graph.n();
        let ranges = partition_ranges(n, p);
        let mut workers = Vec::with_capacity(ranges.len());
        for (id, _) in ranges.iter().enumerate() {
            workers.push(Worker {
                id,
                graph: graph.clone(),
                store: store_factory(id, n)?,
                partial: Scores::zeros_for(graph),
                ws: Workspace::new(n),
                scratch: BrandesScratch::new(n),
                cfg: cfg.clone(),
            });
        }
        let results: Vec<Result<(), EngineError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker, range) in workers.iter_mut().zip(ranges.iter()) {
                let range = range.clone();
                handles.push(scope.spawn(move || worker.bootstrap(range)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(ClusterEngine {
            workers,
            n,
            edge_slots: graph.edge_slots(),
        })
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of vertices in the replicas.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Apply one update on all workers in parallel (the map phase). The
    /// slowest worker's busy time is the update's wall-clock critical path.
    pub fn apply(&mut self, update: Update) -> Result<ApplyReport, EngineError> {
        // New vertices: exactly one worker adopts the new source — the one
        // with the smallest partition (keeps partitions balanced over time).
        let mut new_source = None;
        if update.op == EdgeOp::Add {
            let hi = update.u.max(update.v);
            if hi as usize > self.n {
                return Err(EngineError::SparseVertex(hi));
            }
            if (hi as usize) == self.n {
                new_source = Some(hi);
                self.n += 1;
            }
        }
        let adopter = self
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.store.num_sources())
            .map(|(i, _)| i)
            .expect("at least one worker");
        let results: Vec<Result<Duration, EngineError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in self.workers.iter_mut() {
                let adopt = if worker.id == adopter {
                    new_source
                } else {
                    None
                };
                handles.push(scope.spawn(move || worker.apply(update, adopt)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut per_worker = Vec::with_capacity(results.len());
        for r in results {
            per_worker.push(r?);
        }
        self.edge_slots = self.workers[0].graph.edge_slots();
        let map_wall = per_worker.iter().copied().max().unwrap_or_default();
        let cumulative = per_worker.iter().sum();
        Ok(ApplyReport {
            map_wall,
            per_worker,
            cumulative,
        })
    }

    /// Reduce phase: sum the per-worker partial scores into global scores.
    /// Returns the scores and the merge time `t_M` of §5.3.
    pub fn reduce(&self) -> (Scores, Duration) {
        let t0 = Instant::now();
        let mut total = Scores::zeros(self.n, self.edge_slots);
        for w in &self.workers {
            total.merge_from(&w.partial);
        }
        (total, t0.elapsed())
    }

    /// A reference to some worker's graph replica (all replicas are
    /// identical).
    pub fn graph(&self) -> &Graph {
        &self.workers[0].graph
    }

    /// Sum of per-worker source counts (sanity: equals current n).
    pub fn total_sources(&self) -> usize {
        self.workers.iter().map(|w| w.store.num_sources()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_core::state::BetweennessState;
    use ebc_core::verify::assert_matches_scratch;
    use ebc_gen::models::holme_kim;

    #[test]
    fn cluster_matches_single_state() {
        let g = holme_kim(40, 3, 0.4, 7);
        let mut cluster = ClusterEngine::bootstrap(&g, 4).unwrap();
        let mut single = BetweennessState::init(&g);
        // bootstrap equivalence
        let (scores, _) = cluster.reduce();
        assert!(scores.max_vbc_diff(single.scores()) < 1e-9);

        let updates = [
            Update::add(0, 25),
            Update::add(3, 17),
            Update::remove(0, 25),
            Update::add(10, 30),
        ];
        for u in updates {
            cluster.apply(u).unwrap();
            single.apply(u).unwrap();
            let (scores, _) = cluster.reduce();
            assert!(
                scores.max_vbc_diff(single.scores()) < 1e-9,
                "VBC after {u:?}"
            );
            assert!(
                scores.max_ebc_diff(single.scores(), single.graph()) < 1e-9,
                "EBC after {u:?}"
            );
        }
    }

    #[test]
    fn cluster_handles_removals_that_disconnect() {
        let mut g = Graph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            g.add_edge(u, v).unwrap();
        }
        let mut cluster = ClusterEngine::bootstrap(&g, 3).unwrap();
        cluster.apply(Update::remove(2, 3)).unwrap();
        let (scores, _) = cluster.reduce();
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "disconnect");
    }

    #[test]
    fn cluster_adopts_new_vertices_balanced() {
        let g = holme_kim(20, 2, 0.3, 3);
        let mut cluster = ClusterEngine::bootstrap(&g, 3).unwrap();
        assert_eq!(cluster.total_sources(), 20);
        cluster.apply(Update::add(5, 20)).unwrap(); // new vertex 20
        cluster.apply(Update::add(20, 21)).unwrap(); // and 21
        assert_eq!(cluster.total_sources(), 22);
        let (scores, _) = cluster.reduce();
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "growth");
    }

    #[test]
    fn single_worker_cluster_is_degenerate_case() {
        let g = holme_kim(15, 2, 0.2, 5);
        let mut cluster = ClusterEngine::bootstrap(&g, 1).unwrap();
        cluster.apply(Update::add(0, 9)).unwrap();
        let (scores, _) = cluster.reduce();
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "p=1");
    }

    #[test]
    fn more_workers_than_sources() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut cluster = ClusterEngine::bootstrap(&g, 8).unwrap();
        cluster.apply(Update::add(0, 2)).unwrap();
        let (scores, _) = cluster.reduce();
        assert_matches_scratch(cluster.graph(), &scores, 1e-6, "p>n");
    }

    #[test]
    fn apply_report_shapes() {
        let g = holme_kim(25, 2, 0.3, 9);
        let mut cluster = ClusterEngine::bootstrap(&g, 4).unwrap();
        let rep = cluster.apply(Update::add(0, 13)).unwrap();
        assert_eq!(rep.per_worker.len(), 4);
        assert!(rep.map_wall >= *rep.per_worker.iter().max().unwrap());
        assert!(rep.cumulative >= rep.map_wall);
    }

    #[test]
    fn sparse_vertex_rejected() {
        let g = holme_kim(10, 2, 0.3, 9);
        let mut cluster = ClusterEngine::bootstrap(&g, 2).unwrap();
        assert!(matches!(
            cluster.apply(Update::add(0, 99)),
            Err(EngineError::SparseVertex(99))
        ));
    }
}
