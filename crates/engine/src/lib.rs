//! # ebc-engine
//!
//! The parallel and online embodiment of the framework (paper §5.2–§5.4).
//!
//! The paper's key observation is that the incremental computation is
//! *embarrassingly parallel over sources*: `BD[·]` is range-partitioned over
//! `p` shared-nothing machines (`Π_i`), every machine holds a replica of the
//! graph and processes each arriving update for its own sources only, and
//! partial betweenness scores are summed in a reduce step (Figure 4 shows
//! the MapReduce rendition).
//!
//! This crate reproduces that architecture with a **persistent worker
//! pool**: `p` long-lived threads are spawned at bootstrap, each owning one
//! machine's state for its whole lifetime (graph replica, private `BD`
//! store, incremental partial scores, kernel scratch), and driven over
//! per-worker command channels — so the steady-state update path costs one
//! channel round-trip per worker, not a thread spawn.
//!
//! * [`partition`] — the `Π_i` source-range math plus the
//!   [`partition::AdoptionLedger`] pinning how newly arrived vertices are
//!   assigned (smallest partition, ties to the smallest worker id);
//! * [`shardmap`] — the versioned [`shardmap::ShardMap`] generalising the
//!   static ranges into a movable source→shard assignment: bootstrap
//!   layouts bit-identical to [`partition::partition_ranges`], the pinned
//!   adoption rule, and deterministic [`shardmap::RebalancePlan`]s that
//!   restore the owned-source skew invariant via source handoffs;
//! * `pool` (private) — worker threads, the
//!   `Bootstrap`/`Apply`/`MergePartials`/`Segments`/`Export`/`Import`/
//!   `Shutdown` command protocol, poison containment, and the pairwise
//!   merge-tree schedule;
//! * [`cluster`] — [`cluster::ClusterEngine`]: validated dispatch from a
//!   coordinator replica, the pipelined [`cluster::ClusterEngine::apply_stream`]
//!   batch path, the tree-structured fast [`cluster::ClusterEngine::reduce`]
//!   (the paper's `t_M`), the partition-invariant
//!   [`cluster::ClusterEngine::reduce_exact`] oracle (bitwise identical
//!   across worker counts, store backends, and ownership layouts), and the
//!   live handoff path ([`cluster::ClusterEngine::rebalance`] /
//!   [`cluster::ClusterEngine::handoff`]);
//! * [`online`] — the online-updates experiment (§5.3, Figure 8, Table 5):
//!   replay a timestamped stream and record, per update, the inter-arrival
//!   gap, the processing time, queueing delays, and missed deadlines. Both
//!   *measured* mode (the live pool) and *modeled* mode (the paper's
//!   `t_U = t_S·n/p + t_M` projection, for worker counts beyond the local
//!   core count) are provided.

pub mod cluster;
pub mod online;
pub mod partition;
mod pool;
pub mod shard;
pub mod shardmap;

pub use cluster::{ApplyReport, ClusterEngine, EngineError, RebalanceReport};
pub use online::{simulate_modeled, simulate_online, OnlineEvent, OnlineReport};
pub use partition::{partition_ranges, AdoptionLedger};
pub use shard::ShardState;
pub use shardmap::{RebalancePlan, ShardMap, ShardMapError, SourceMove};
