//! # ebc-engine
//!
//! The parallel and online embodiment of the framework (paper §5.2–§5.4).
//!
//! The paper's key observation is that the incremental computation is
//! *embarrassingly parallel over sources*: `BD[·]` is range-partitioned over
//! `p` shared-nothing machines (`Π_i`), every machine holds a replica of the
//! graph and processes each arriving update for its own sources only, and
//! partial betweenness scores are summed in a reduce step (Figure 4 shows
//! the MapReduce rendition).
//!
//! This crate reproduces that architecture with worker threads standing in
//! for machines:
//!
//! * [`partition`] — the `Π_i` source-range math;
//! * [`cluster`] — [`cluster::ClusterEngine`]: per-worker graph replicas and
//!   private `BD` stores (in memory, or one disk file per worker), map
//!   (process update on own partition) and reduce (sum partials) phases with
//!   wall-clock instrumentation;
//! * [`online`] — the online-updates experiment (§5.3, Figure 8, Table 5):
//!   replay a timestamped stream and record, per update, the inter-arrival
//!   gap, the processing time, queueing delays, and missed deadlines. Both
//!   *measured* mode (real threads) and *modeled* mode (the paper's
//!   `t_U = t_S·n/p + t_M` projection, for worker counts beyond the local
//!   core count) are provided.

pub mod cluster;
pub mod online;
pub mod partition;

pub use cluster::{ApplyReport, ClusterEngine, EngineError};
pub use online::{simulate_modeled, simulate_online, OnlineEvent, OnlineReport};
pub use partition::partition_ranges;
