//! Online-update replay (paper §5.3, Figure 8, Table 5).
//!
//! The framework is *online* when the time to refresh betweenness after an
//! update stays below the inter-arrival gap to the next update. Two replay
//! modes are provided:
//!
//! * [`simulate_online`] — **measured**: drives a real [`ClusterEngine`]
//!   (worker threads) and measures wall-clock per update. Faithful up to the
//!   local core count.
//! * [`simulate_modeled`] — **modeled**: measures the *cumulative* per-source
//!   work on a single worker and projects the update latency for any worker
//!   count with the paper's own formula `t_U = t_S · n/p + t_M` (§5.3). This
//!   is how Table 5's 50- and 100-mapper rows are reproduced on a laptop.

use crate::cluster::{ClusterEngine, EngineError};
use ebc_core::bd::BdStore;
use ebc_core::state::{BetweennessState, StateError, Update};
use ebc_graph::EdgeStream;
use std::time::Duration;

/// Per-update record of the replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineEvent {
    /// Arrival time (seconds, stream clock).
    pub arrival: f64,
    /// Gap since the previous arrival (the deadline for this update).
    pub gap: f64,
    /// Time spent computing the update (map critical path + reduce).
    pub update_time: f64,
    /// Completion time on the stream clock, accounting for queueing behind
    /// earlier updates.
    pub completion: f64,
}

/// Outcome of an online replay (the quantities of Table 5).
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Per-update records, in stream order.
    pub events: Vec<OnlineEvent>,
    /// Number of updates whose results were not ready before the next
    /// arrival ("% missed" in Table 5 is `missed / events.len()`).
    pub missed: usize,
    /// Mean lateness of missed updates, in seconds ("avg. delay").
    pub avg_delay: f64,
}

impl OnlineReport {
    fn from_events(events: Vec<OnlineEvent>) -> Self {
        let mut missed = 0usize;
        let mut delay_sum = 0.0;
        for i in 0..events.len() {
            let deadline = if i + 1 < events.len() {
                events[i + 1].arrival
            } else {
                // last event: deadline is one mean gap after its arrival
                events[i].arrival + events[i].gap.max(f64::EPSILON)
            };
            if events[i].completion > deadline {
                missed += 1;
                delay_sum += events[i].completion - deadline;
            }
        }
        let avg_delay = if missed > 0 {
            delay_sum / missed as f64
        } else {
            0.0
        };
        OnlineReport {
            events,
            missed,
            avg_delay,
        }
    }

    /// Fraction of updates missed, in percent.
    pub fn pct_missed(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            100.0 * self.missed as f64 / self.events.len() as f64
        }
    }

    /// Mean measured update time in seconds.
    pub fn mean_update_time(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.update_time).sum::<f64>() / self.events.len() as f64
    }
}

fn fold_events(arrivals: &[(f64, f64)], update_times: &[f64]) -> Vec<OnlineEvent> {
    let mut events = Vec::with_capacity(arrivals.len());
    let mut clock = 0.0f64;
    for (&(arrival, gap), &ut) in arrivals.iter().zip(update_times) {
        let start = clock.max(arrival);
        let completion = start + ut;
        clock = completion;
        events.push(OnlineEvent {
            arrival,
            gap,
            update_time: ut,
            completion,
        });
    }
    events
}

fn arrivals_of(stream: &EdgeStream) -> Vec<(f64, f64)> {
    let gaps = stream.inter_arrival_times();
    stream
        .events()
        .iter()
        .zip(gaps)
        .map(|(e, g)| (e.time, g))
        .collect()
}

/// Measured replay: apply the stream on a live cluster, recording wall-clock
/// update latencies (map critical path + reduce).
pub fn simulate_online<S: BdStore + 'static>(
    cluster: &mut ClusterEngine<S>,
    stream: &EdgeStream,
) -> Result<OnlineReport, EngineError> {
    let arrivals = arrivals_of(stream);
    let mut update_times = Vec::with_capacity(arrivals.len());
    for ev in stream.events() {
        let rep = cluster.apply(Update {
            op: ev.op,
            u: ev.u,
            v: ev.v,
        })?;
        let merge = cluster.reduce()?.wall;
        update_times.push((rep.map_wall + merge).as_secs_f64());
    }
    Ok(OnlineReport::from_events(fold_events(
        &arrivals,
        &update_times,
    )))
}

/// Modeled replay (the paper's §5.3 projection): run the whole stream on a
/// single in-memory state, measure the *cumulative* source-processing time
/// `T_i` of each update, and report latencies `T_i / p + t_M` for the given
/// worker count `p`. `t_merge` is the measured (or assumed) reduce time.
pub fn simulate_modeled(
    state: &mut BetweennessState,
    stream: &EdgeStream,
    p: usize,
    t_merge: Duration,
) -> Result<OnlineReport, StateError> {
    let p = p.max(1) as f64;
    let arrivals = arrivals_of(stream);
    let mut update_times = Vec::with_capacity(arrivals.len());
    for ev in stream.events() {
        let t0 = std::time::Instant::now();
        state.apply(Update {
            op: ev.op,
            u: ev.u,
            v: ev.v,
        })?;
        let total = t0.elapsed().as_secs_f64();
        update_times.push(total / p + t_merge.as_secs_f64());
    }
    Ok(OnlineReport::from_events(fold_events(
        &arrivals,
        &update_times,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_events(times_and_durs: &[(f64, f64)]) -> Vec<OnlineEvent> {
        let arrivals: Vec<(f64, f64)> = times_and_durs
            .iter()
            .scan(0.0, |prev, &(t, _)| {
                let gap = t - *prev;
                *prev = t;
                Some((t, gap))
            })
            .collect();
        let durs: Vec<f64> = times_and_durs.iter().map(|&(_, d)| d).collect();
        fold_events(&arrivals, &durs)
    }

    #[test]
    fn all_on_time_when_fast() {
        let report = OnlineReport::from_events(mk_events(&[(1.0, 0.1), (2.0, 0.1), (3.0, 0.1)]));
        assert_eq!(report.missed, 0);
        assert_eq!(report.pct_missed(), 0.0);
        assert_eq!(report.avg_delay, 0.0);
    }

    #[test]
    fn slow_updates_queue_and_miss() {
        // gap is 1s, processing takes 2.5s: every update is late and
        // lateness accumulates through the queue.
        let report =
            OnlineReport::from_events(mk_events(&[(1.0, 2.5), (2.0, 2.5), (3.0, 2.5), (4.0, 2.5)]));
        assert!(report.missed >= 3, "missed = {}", report.missed);
        assert!(report.avg_delay > 1.0);
        // queueing: completion times strictly increase by 2.5 once saturated
        let c: Vec<f64> = report.events.iter().map(|e| e.completion).collect();
        assert!((c[1] - c[0] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn report_statistics() {
        let report = OnlineReport::from_events(mk_events(&[(1.0, 0.2), (2.0, 0.4)]));
        assert!((report.mean_update_time() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn measured_mode_runs_end_to_end() {
        use ebc_gen::models::holme_kim_with_order;
        use ebc_gen::streams::replay_growth;
        let (full, order) = holme_kim_with_order(30, 3, 0.3, 4);
        let (boot, tail) = replay_growth(&order, full.n(), 8, 10.0, 0.3, 5);
        let mut cluster = ClusterEngine::new(&boot, 2).unwrap();
        let report = simulate_online(&mut cluster, &tail).unwrap();
        assert_eq!(report.events.len(), 8);
        // tiny graph, 10s gaps: everything is on time
        assert_eq!(report.missed, 0);
    }

    #[test]
    fn modeled_mode_latency_decreases_with_p() {
        use ebc_core::state::BetweennessState;
        use ebc_gen::models::holme_kim_with_order;
        use ebc_gen::streams::replay_growth;
        let (full, order) = holme_kim_with_order(60, 3, 0.3, 4);
        let (boot, tail) = replay_growth(&order, full.n(), 10, 5.0, 0.3, 5);
        let mut st1 = BetweennessState::new(&boot);
        let mut st8 = BetweennessState::new(&boot);
        let r1 = simulate_modeled(&mut st1, &tail, 1, Duration::ZERO).unwrap();
        let r8 = simulate_modeled(&mut st8, &tail, 8, Duration::ZERO).unwrap();
        assert!(
            r8.mean_update_time() < r1.mean_update_time(),
            "p=8 should model faster updates: {} vs {}",
            r8.mean_update_time(),
            r1.mean_update_time()
        );
    }
}
