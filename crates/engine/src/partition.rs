//! Source-range partitioning (`Π_i`, paper Figure 4).
//!
//! The paper generates "an input for each mapper `i` that represents a
//! partition `Π_i` of the graph ... two integers that represent the first
//! and last ID of the range of sources for which the particular mapper is
//! responsible". Ranges are balanced to within one source.

use crate::shardmap::ShardMap;
use std::ops::Range;

/// Split `0..n` into `p` contiguous near-equal ranges (the first `n % p`
/// ranges get one extra source). Empty ranges are produced when `p > n`.
///
/// # Contract
///
/// `p` must be at least 1 — there is no meaningful partitioning over zero
/// workers, and silently producing one would hide a caller bug (a worker
/// pool sized from a miscomputed core count, say). Debug builds assert;
/// release builds clamp `p` up to 1 so a long-running production replay
/// degrades to the single-machine layout instead of aborting.
pub fn partition_ranges(n: usize, p: usize) -> Vec<Range<u32>> {
    debug_assert!(p > 0, "partition_ranges requires p >= 1 (got p = 0)");
    let p = p.max(1);
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(start as u32..(start + len) as u32);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Coordinator-side bookkeeping of how many sources each worker owns, and
/// the **pinned** adoption rule for vertices that arrive after bootstrap.
///
/// The paper keeps partitions balanced by handing each new source to some
/// lightly-loaded machine; this ledger pins the exact rule so replays are
/// deterministic: *the adopter is the worker with the fewest owned sources,
/// ties broken toward the smallest worker id*. Starting from
/// [`partition_ranges`] (balanced to within one) this invariant is
/// preserved forever: `max − min ≤ 1` across workers after any arrival
/// sequence.
///
/// Since the shard-map generalisation the ledger is a thin counting facade
/// over a [`ShardMap`] — adoption and rebalance share that single ownership
/// authority, and this type remains for callers that only ever adopt
/// (dense source ids `0..total`, no handoffs). It lives on the coordinator
/// so adoption decisions never read worker-owned state (stores stay private
/// to their threads).
#[derive(Debug, Clone)]
pub struct AdoptionLedger {
    map: ShardMap,
}

impl AdoptionLedger {
    /// Ledger matching `partition_ranges(n, p)` (same `p >= 1` contract).
    pub fn new(n: usize, p: usize) -> Self {
        AdoptionLedger {
            map: ShardMap::bootstrap(n, p),
        }
    }

    /// Per-worker owned-source counts.
    pub fn counts(&self) -> &[usize] {
        self.map.counts()
    }

    /// Total sources across all workers.
    pub fn total(&self) -> usize {
        self.map.total()
    }

    /// Assign one newly arrived source: smallest count wins, ties go to the
    /// smallest worker id. Returns the adopting worker and records the
    /// adoption.
    pub fn adopt(&mut self) -> usize {
        let next = self.map.total() as u32;
        self.map
            .adopt(next)
            .expect("ledger ids are dense 0..total and never collide")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_sources_exactly_once() {
        for (n, p) in [(10, 3), (100, 7), (5, 5), (3, 8), (0, 4), (1000, 1)] {
            let ranges = partition_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let mut covered = vec![false; n];
            for r in &ranges {
                for v in r.clone() {
                    assert!(!covered[v as usize], "source {v} covered twice");
                    covered[v as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "n={n} p={p}");
        }
    }

    #[test]
    fn balanced_within_one() {
        let ranges = partition_ranges(103, 10);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "partition_ranges requires p >= 1")]
    fn zero_workers_is_a_debug_contract_violation() {
        let _ = partition_ranges(4, 0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_workers_clamped_in_release() {
        // release builds degrade to the single-machine layout
        assert_eq!(partition_ranges(4, 0), vec![0..4]);
    }

    #[test]
    fn more_workers_than_sources_yields_empty_tail_ranges() {
        let ranges = partition_ranges(3, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(&ranges[..3], &[0..1, 1..2, 2..3]);
        for (k, r) in ranges.iter().enumerate().skip(3) {
            assert!(r.is_empty(), "range {k} should be empty, got {r:?}");
        }
        // degenerate all-empty case
        let ranges = partition_ranges(0, 5);
        assert!(ranges.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn ledger_over_empty_ranges_fills_the_empty_workers_first() {
        // p > n: workers 2..5 bootstrap with zero sources; the pinned rule
        // must hand arrivals to them (lowest id first) before anyone else
        let mut ledger = AdoptionLedger::new(2, 5);
        assert_eq!(ledger.counts(), &[1, 1, 0, 0, 0]);
        assert_eq!(ledger.adopt(), 2);
        assert_eq!(ledger.adopt(), 3);
        assert_eq!(ledger.adopt(), 4);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.counts(), &[2, 1, 1, 1, 1]);
        assert_eq!(ledger.total(), 6);
        // n = 0: every worker starts empty and adoption still works
        let mut ledger = AdoptionLedger::new(0, 3);
        assert_eq!(ledger.counts(), &[0, 0, 0]);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.adopt(), 1);
        assert_eq!(ledger.total(), 2);
    }

    #[test]
    fn adoption_tie_break_is_smallest_worker_id() {
        // 6 sources over 3 workers: all counts equal — the pinned rule must
        // pick worker 0, then 1, then 2, then wrap to 0 again.
        let mut ledger = AdoptionLedger::new(6, 3);
        assert_eq!(ledger.counts(), &[2, 2, 2]);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.adopt(), 1);
        assert_eq!(ledger.adopt(), 2);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.counts(), &[4, 3, 3]);
    }

    #[test]
    fn adoption_prefers_smallest_partition() {
        // 7 over 3: ranges are [3, 2, 2] — the first adopter must be 1.
        let mut ledger = AdoptionLedger::new(7, 3);
        assert_eq!(ledger.counts(), &[3, 2, 2]);
        assert_eq!(ledger.adopt(), 1);
        assert_eq!(ledger.adopt(), 2);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.total(), 10);
    }

    #[test]
    fn adoption_keeps_balance_within_one() {
        let mut ledger = AdoptionLedger::new(11, 4);
        for _ in 0..37 {
            ledger.adopt();
            let min = *ledger.counts().iter().min().unwrap();
            let max = *ledger.counts().iter().max().unwrap();
            assert!(max - min <= 1, "{:?}", ledger.counts());
        }
    }
}
