//! Source-range partitioning (`Π_i`, paper Figure 4).
//!
//! The paper generates "an input for each mapper `i` that represents a
//! partition `Π_i` of the graph ... two integers that represent the first
//! and last ID of the range of sources for which the particular mapper is
//! responsible". Ranges are balanced to within one source.

use std::ops::Range;

/// Split `0..n` into `p` contiguous near-equal ranges (the first `n % p`
/// ranges get one extra source). Empty ranges are produced when `p > n`.
pub fn partition_ranges(n: usize, p: usize) -> Vec<Range<u32>> {
    let p = p.max(1);
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(start as u32..(start + len) as u32);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Coordinator-side bookkeeping of how many sources each worker owns, and
/// the **pinned** adoption rule for vertices that arrive after bootstrap.
///
/// The paper keeps partitions balanced by handing each new source to some
/// lightly-loaded machine; this ledger pins the exact rule so replays are
/// deterministic: *the adopter is the worker with the fewest owned sources,
/// ties broken toward the smallest worker id*. Starting from
/// [`partition_ranges`] (balanced to within one) this invariant is
/// preserved forever: `max − min ≤ 1` across workers after any arrival
/// sequence.
///
/// The ledger lives on the coordinator so adoption decisions never read
/// worker-owned state (stores stay private to their threads).
#[derive(Debug, Clone)]
pub struct AdoptionLedger {
    counts: Vec<usize>,
}

impl AdoptionLedger {
    /// Ledger matching `partition_ranges(n, p)`.
    pub fn new(n: usize, p: usize) -> Self {
        AdoptionLedger {
            counts: partition_ranges(n, p).iter().map(|r| r.len()).collect(),
        }
    }

    /// Per-worker owned-source counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total sources across all workers.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Assign one newly arrived source: smallest count wins, ties go to the
    /// smallest worker id. Returns the adopting worker and records the
    /// adoption.
    pub fn adopt(&mut self) -> usize {
        let adopter = self
            .counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .expect("at least one worker");
        self.counts[adopter] += 1;
        adopter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_sources_exactly_once() {
        for (n, p) in [(10, 3), (100, 7), (5, 5), (3, 8), (0, 4), (1000, 1)] {
            let ranges = partition_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let mut covered = vec![false; n];
            for r in &ranges {
                for v in r.clone() {
                    assert!(!covered[v as usize], "source {v} covered twice");
                    covered[v as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "n={n} p={p}");
        }
    }

    #[test]
    fn balanced_within_one() {
        let ranges = partition_ranges(103, 10);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn zero_workers_clamped() {
        assert_eq!(partition_ranges(4, 0).len(), 1);
    }

    #[test]
    fn adoption_tie_break_is_smallest_worker_id() {
        // 6 sources over 3 workers: all counts equal — the pinned rule must
        // pick worker 0, then 1, then 2, then wrap to 0 again.
        let mut ledger = AdoptionLedger::new(6, 3);
        assert_eq!(ledger.counts(), &[2, 2, 2]);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.adopt(), 1);
        assert_eq!(ledger.adopt(), 2);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.counts(), &[4, 3, 3]);
    }

    #[test]
    fn adoption_prefers_smallest_partition() {
        // 7 over 3: ranges are [3, 2, 2] — the first adopter must be 1.
        let mut ledger = AdoptionLedger::new(7, 3);
        assert_eq!(ledger.counts(), &[3, 2, 2]);
        assert_eq!(ledger.adopt(), 1);
        assert_eq!(ledger.adopt(), 2);
        assert_eq!(ledger.adopt(), 0);
        assert_eq!(ledger.total(), 10);
    }

    #[test]
    fn adoption_keeps_balance_within_one() {
        let mut ledger = AdoptionLedger::new(11, 4);
        for _ in 0..37 {
            ledger.adopt();
            let min = *ledger.counts().iter().min().unwrap();
            let max = *ledger.counts().iter().max().unwrap();
            assert!(max - min <= 1, "{:?}", ledger.counts());
        }
    }
}
