//! Source-range partitioning (`Π_i`, paper Figure 4).
//!
//! The paper generates "an input for each mapper `i` that represents a
//! partition `Π_i` of the graph ... two integers that represent the first
//! and last ID of the range of sources for which the particular mapper is
//! responsible". Ranges are balanced to within one source.

use std::ops::Range;

/// Split `0..n` into `p` contiguous near-equal ranges (the first `n % p`
/// ranges get one extra source). Empty ranges are produced when `p > n`.
pub fn partition_ranges(n: usize, p: usize) -> Vec<Range<u32>> {
    let p = p.max(1);
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(start as u32..(start + len) as u32);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_sources_exactly_once() {
        for (n, p) in [(10, 3), (100, 7), (5, 5), (3, 8), (0, 4), (1000, 1)] {
            let ranges = partition_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let mut covered = vec![false; n];
            for r in &ranges {
                for v in r.clone() {
                    assert!(!covered[v as usize], "source {v} covered twice");
                    covered[v as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "n={n} p={p}");
        }
    }

    #[test]
    fn balanced_within_one() {
        let ranges = partition_ranges(103, 10);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn zero_workers_clamped() {
        assert_eq!(partition_ranges(4, 0).len(), 1);
    }
}
