//! The persistent worker pool: one long-lived OS thread per simulated
//! machine, driven over channels.
//!
//! The paper's §5 cluster keeps long-lived workers that each own a source
//! partition and answer a *stream* of updates; respawning scoped threads per
//! update (the previous embodiment) measured thread-spawn overhead instead
//! of the map-phase critical path. Here each worker thread owns its graph
//! replica, private `BD` store, incremental partial scores and kernel
//! scratch for its whole lifetime, and executes commands from its private
//! queue:
//!
//! * [`Command::Bootstrap`] — one Brandes iteration per owned source;
//! * [`Command::Apply`] — the map task for one update (plus an optional
//!   adoption of a newly arrived source);
//! * [`Command::MergePartials`] — its role in one tree-structured fast
//!   reduce: receive and fold peer partials, then forward up the tree;
//! * [`Command::Segments`] — derive the canonical exact-reduce segments of
//!   its owned sources (see [`ebc_core::exact`]);
//! * [`Command::Export`] / [`Command::Import`] — the two halves of a shard
//!   handoff: the donor serializes one owned source's `BD` record out of
//!   its private store (journaled by backends with a crash story) and the
//!   recipient installs it; [`Command::Retire`] discards the donor's export
//!   journal once the coordinator has committed the move in its shard map;
//! * [`Command::Shutdown`] — drain and exit (also triggered by channel
//!   disconnect, so dropping the pool can never leak a thread).
//!
//! **Failure containment.** A store error (or a panic caught at the command
//! boundary) poisons the worker: its partial may be half-updated, so every
//! subsequent `Apply`/`Segments` answers [`EngineError::Poisoned`]
//! immediately instead of computing — or hanging — on corrupt state.
//! Poisoned workers still participate mechanically in merge trees so peers
//! never block on a silent partner.

use crate::cluster::EngineError;
use crate::shard::ShardState;
use ebc_core::bd::{BdStore, ExportedRecord};
use ebc_core::exact::TreeSegment;
use ebc_core::incremental::UpdateConfig;
use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_graph::csr::CsrView;
use ebc_graph::{EdgeId, VertexId};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One worker's role in a tree-structured fast reduce.
#[derive(Debug, Clone)]
pub(crate) struct MergePlan {
    /// Peers whose accumulated partials this worker folds in, in this exact
    /// order (merge order is part of the deterministic contract).
    pub recv_from: Vec<usize>,
    /// Where the folded result goes: a parent worker, or (`None`, root only)
    /// back to the coordinator as a [`Reply::Merged`].
    pub send_to: Option<usize>,
}

/// Commands a worker executes from its private queue, in order.
pub(crate) enum Command {
    /// Brandes-bootstrap the given owned sources into the store. A
    /// membership list, not a range: the shard map may assign any subset
    /// (contiguous only in the `partition_ranges` bootstrap case).
    Bootstrap { sources: Vec<VertexId> },
    /// Rehydrate from the store's existing records instead of running
    /// Brandes: the partial score vector is rebuilt by summing each owned
    /// source's derived contribution ([`ebc_core::exact::source_contribution`])
    /// in ascending source order. The re-bootstrap-free restart path —
    /// replies [`Reply::Bootstrapped`] with a Brandes count of zero.
    Resume,
    /// Flush the private store's durable backing (no-op for memory stores).
    Flush,
    /// Map task for one update; `adopt` names a newly arrived vertex this
    /// worker takes into its partition.
    ///
    /// Carries the pinned post-update [`CsrView`] epoch: workers lag the
    /// coordinator under pipelining, so each map task must travel with the
    /// exact structural snapshot it is defined against (FIFO command order
    /// then guarantees every later command sees a current-or-newer view).
    /// `removed_eid` is the slot freed by a removal, computed once by the
    /// coordinator's single-writer replica — the worker no longer maintains
    /// (or clones) any mutable graph of its own.
    Apply {
        update: Update,
        removed_eid: Option<EdgeId>,
        adopt: Option<VertexId>,
        view: Arc<CsrView>,
    },
    /// Participate in one fast (partial-sum) tree reduce.
    MergePartials { plan: MergePlan },
    /// Derive the canonical exact-reduce segments of the owned sources.
    Segments,
    /// Serialize `source`'s record out of the private store and stop owning
    /// it — the donor half of a shard handoff. `tag` is journaled with the
    /// export by crash-safe backends (the coordinator passes the recipient
    /// shard id).
    Export { source: VertexId, tag: u64 },
    /// Install a record exported by a peer — the recipient half.
    Import { record: Box<ExportedRecord> },
    /// Discard the export journal left for `source`, the coordinator having
    /// committed the handoff in its shard map.
    Retire { source: VertexId },
    /// Drain and exit.
    Shutdown,
}

/// Per-update facts the coordinator needs without touching worker state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ApplyEcho {
    /// This worker's busy time for the map task.
    pub busy: Duration,
    /// Edge slots of the replica after the update — reported in the reply so
    /// the coordinator never reads a worker's replica directly.
    pub edge_slots: usize,
}

/// Worker → coordinator replies (one per command, except `MergePartials`
/// which replies only from the tree root and `Shutdown` which is silent).
pub(crate) enum Reply {
    /// Carries the number of Brandes single-source iterations the worker ran
    /// (`sources.len()` for a bootstrap, 0 for a resume) — the coordinator
    /// sums these into its re-bootstrap accounting.
    Bootstrapped(Result<u64, EngineError>),
    Applied(Result<ApplyEcho, EngineError>),
    Merged(Box<Scores>),
    Segments(Result<Vec<TreeSegment>, EngineError>),
    Exported(Box<Result<ExportedRecord, EngineError>>),
    Imported(Result<(), EngineError>),
    Retired(Result<(), EngineError>),
    Flushed(Result<(), EngineError>),
}

/// Payload on the worker-to-worker merge channels: sender id + accumulated
/// partial.
type MergeMsg = (usize, Box<Scores>);

struct WorkerThread<S: BdStore> {
    id: usize,
    /// Pinned CSR epoch this worker currently computes against — an `Arc`
    /// share of the coordinator's published snapshot, not a private clone.
    view: Arc<CsrView>,
    /// The shard compute core (store + partials + scratch) shared with the
    /// remote-node embodiment — see [`crate::shard`].
    shard: ShardState<S>,
    poisoned: bool,
    cmd_rx: Receiver<Command>,
    reply_tx: Sender<Reply>,
    merge_rx: Receiver<MergeMsg>,
    merge_tx: Vec<Sender<MergeMsg>>,
    /// Out-of-order merge payloads, queued per sender. A queue (not a
    /// single slot) because the overlapped-reduce path can have more than
    /// one merge round in flight: a fast peer may deliver its round-k+1
    /// payload while this worker is still collecting round k, and both
    /// must survive until their rounds consume them in order.
    stash: Vec<VecDeque<Box<Scores>>>,
}

impl<S: BdStore> WorkerThread<S> {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                Command::Shutdown => break,
                Command::Bootstrap { sources } => {
                    let result = self.guarded(|w| w.bootstrap(sources));
                    let _ = self.reply_tx.send(Reply::Bootstrapped(result));
                }
                Command::Resume => {
                    let result = self.guarded(|w| w.resume());
                    let _ = self.reply_tx.send(Reply::Bootstrapped(result));
                }
                Command::Flush => {
                    let result = self.guarded(|w| w.shard.flush().map_err(Into::into));
                    let _ = self.reply_tx.send(Reply::Flushed(result));
                }
                Command::Apply {
                    update,
                    removed_eid,
                    adopt,
                    view,
                } => {
                    let result = self.guarded(|w| w.apply(update, removed_eid, adopt, view));
                    let _ = self.reply_tx.send(Reply::Applied(result));
                }
                Command::MergePartials { plan } => self.merge(plan),
                Command::Segments => {
                    let result = self.guarded(|w| w.segments());
                    let _ = self.reply_tx.send(Reply::Segments(result));
                }
                Command::Export { source, tag } => {
                    let result = self.guarded(|w| w.shard.export(source, tag).map_err(Into::into));
                    let _ = self.reply_tx.send(Reply::Exported(Box::new(result)));
                }
                Command::Import { record } => {
                    let result = self.guarded(|w| w.shard.import(*record).map_err(Into::into));
                    let _ = self.reply_tx.send(Reply::Imported(result));
                }
                Command::Retire { source } => {
                    let result = self.guarded(|w| w.shard.retire(source).map_err(Into::into));
                    let _ = self.reply_tx.send(Reply::Retired(result));
                }
            }
        }
    }

    /// Run `f` with poison gating and panic containment: a poisoned worker
    /// answers immediately, a store error or panic poisons it.
    fn guarded<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        if self.poisoned {
            return Err(EngineError::Poisoned(format!(
                "worker {} previously failed",
                self.id
            )));
        }
        match catch_unwind(AssertUnwindSafe(|| f(self))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => {
                // A store error can leave the record/partial half-written;
                // graph-level errors are validated away by the coordinator,
                // so any error reaching this point taints the worker.
                self.poisoned = true;
                Err(e)
            }
            Err(_) => {
                self.poisoned = true;
                Err(EngineError::Poisoned(format!(
                    "worker {} panicked during a command",
                    self.id
                )))
            }
        }
    }

    /// Bootstrap this worker's partition: one Brandes iteration per owned
    /// source, accumulating into the partial scores (step 1 of Figure 4).
    /// Returns the Brandes iteration count.
    fn bootstrap(&mut self, sources: Vec<VertexId>) -> Result<u64, EngineError> {
        let view = Arc::clone(&self.view);
        self.shard
            .bootstrap(view.as_ref(), &sources)
            .map_err(Into::into)
    }

    /// Rehydrate the partial score vector from the store's recovered
    /// records: each owned source's contribution is derived from `BD[s]`
    /// alone and folded in ascending source order (pinned, so a restart at
    /// fixed `p` is reproducible). No Brandes iteration runs — the whole
    /// point of the durable-restart path — hence the returned count of 0.
    fn resume(&mut self) -> Result<u64, EngineError> {
        let view = Arc::clone(&self.view);
        self.shard.resume(view.as_ref()).map_err(Into::into)
    }

    /// Map task for one update: adopt the shipped view epoch, then run the
    /// kernel for every owned source (skipping `dd == 0` via the cheap peek).
    /// Structural mutation already happened on the coordinator's replica —
    /// the worker only widens its store/scratch to the view's dimensions.
    fn apply(
        &mut self,
        update: Update,
        removed_eid: Option<EdgeId>,
        adopt: Option<VertexId>,
        view: Arc<CsrView>,
    ) -> Result<ApplyEcho, EngineError> {
        let t0 = Instant::now();
        self.view = view;
        let view = Arc::clone(&self.view);
        self.shard
            .apply(view.as_ref(), update, removed_eid, adopt)?;
        Ok(ApplyEcho {
            busy: t0.elapsed(),
            edge_slots: self.view.edge_slots(),
        })
    }

    /// Tree-reduce participation. Runs even when poisoned (the values are
    /// then garbage the coordinator already knows to discard, but peers must
    /// never block waiting for this worker). Panics in the fold are caught
    /// so the send below *always* happens — the merge tree must make
    /// progress even through a broken worker, or its parent (and ultimately
    /// the coordinator and `Drop`) would block forever.
    fn merge(&mut self, plan: MergePlan) {
        let acc = match catch_unwind(AssertUnwindSafe(|| {
            let mut acc = Box::new(self.shard.partial().clone());
            for &from in &plan.recv_from {
                match self.recv_merge(from) {
                    Some(peer) => acc.merge_from(&peer),
                    None => break, // peer lost: propagate what we have
                }
            }
            acc
        })) {
            Ok(acc) => acc,
            Err(_) => {
                // garbage is fine — the coordinator only reads reduce output
                // from a healthy engine; what matters is unblocking the tree
                self.poisoned = true;
                Box::new(Scores::default())
            }
        };
        match plan.send_to {
            Some(parent) => {
                let _ = self.merge_tx[parent].send((self.id, acc));
            }
            None => {
                let _ = self.reply_tx.send(Reply::Merged(acc));
            }
        }
    }

    fn recv_merge(&mut self, from: usize) -> Option<Box<Scores>> {
        if let Some(s) = self.stash[from].pop_front() {
            return Some(s);
        }
        loop {
            match self.merge_rx.recv() {
                Ok((src, scores)) if src == from => return Some(scores),
                Ok((src, scores)) => self.stash[src].push_back(scores),
                // Defensive only: with every command panic-contained, worker
                // threads cannot die mid-protocol, and (since each worker
                // holds clones of all merge senders) this channel cannot
                // disconnect while any worker lives.
                Err(_) => return None,
            }
        }
    }

    /// Canonical exact-reduce segments of the owned sources. Derived from
    /// the store's membership list — the worker's mirror of the shard map —
    /// never from an assumed contiguous range: after handoffs the owned set
    /// can be any subset of the source ids, and
    /// [`ebc_core::exact::tree_segments_of`] guarantees the assembled root
    /// is bitwise invariant for any disjoint cover.
    fn segments(&mut self) -> Result<Vec<TreeSegment>, EngineError> {
        let view = Arc::clone(&self.view);
        self.shard.segments(view.as_ref()).map_err(Into::into)
    }
}

/// Handle to the spawned pool: per-worker command/reply channels plus the
/// join handles. Dropping the pool shuts every worker down and joins it.
pub(crate) struct WorkerPool {
    cmd_tx: Vec<Sender<Command>>,
    reply_rx: Vec<Receiver<Reply>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn one worker thread per store, all pinning the same shared CSR
    /// snapshot (no per-worker graph clones).
    pub fn spawn<S: BdStore + 'static>(
        view: Arc<CsrView>,
        cfg: UpdateConfig,
        stores: Vec<S>,
    ) -> Self {
        let p = stores.len();
        let mut merge_txs = Vec::with_capacity(p);
        let mut merge_rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel::<MergeMsg>();
            merge_txs.push(tx);
            merge_rxs.push(rx);
        }
        let mut cmd_tx = Vec::with_capacity(p);
        let mut reply_rx = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for (id, (store, merge_rx)) in stores.into_iter().zip(merge_rxs).enumerate() {
            let (ctx, crx) = channel::<Command>();
            let (rtx, rrx) = channel::<Reply>();
            cmd_tx.push(ctx);
            reply_rx.push(rrx);
            let worker = WorkerThread {
                id,
                view: Arc::clone(&view),
                shard: ShardState::new(store, view.n(), view.edge_slots(), cfg.clone()),
                poisoned: false,
                cmd_rx: crx,
                reply_tx: rtx,
                merge_rx,
                merge_tx: merge_txs.clone(),
                stash: vec![VecDeque::new(); p],
            };
            let handle = std::thread::Builder::new()
                .name(format!("ebc-worker-{id}"))
                .spawn(move || worker.run())
                .expect("spawn worker thread");
            handles.push(Some(handle));
        }
        WorkerPool {
            cmd_tx,
            reply_rx,
            handles,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.cmd_tx.len()
    }

    /// Queue a command on `worker`'s channel.
    pub fn send(&self, worker: usize, cmd: Command) -> Result<(), EngineError> {
        self.cmd_tx[worker]
            .send(cmd)
            .map_err(|_| EngineError::WorkerLost(worker))
    }

    /// Next reply from `worker` (replies arrive in command order).
    pub fn recv(&self, worker: usize) -> Result<Reply, EngineError> {
        self.reply_rx[worker]
            .recv()
            .map_err(|_| EngineError::WorkerLost(worker))
    }

    /// The merge schedule of one tree-structured fast reduce over `p`
    /// workers: in round `step`, worker `i` (a multiple of `2·step`) folds in
    /// worker `i + step`; the root (worker 0) replies to the coordinator.
    pub fn merge_plans(p: usize) -> Vec<MergePlan> {
        let mut plans: Vec<MergePlan> = (0..p)
            .map(|_| MergePlan {
                recv_from: Vec::new(),
                send_to: None,
            })
            .collect();
        let mut step = 1;
        while step < p {
            let mut i = 0;
            while i + step < p {
                plans[i].recv_from.push(i + step);
                plans[i + step].send_to = Some(i);
                i += 2 * step;
            }
            step *= 2;
        }
        plans
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.cmd_tx {
            let _ = tx.send(Command::Shutdown);
        }
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_plans_form_a_binary_tree() {
        for p in 1..=9usize {
            let plans = WorkerPool::merge_plans(p);
            assert_eq!(plans.len(), p);
            // root replies to the coordinator, everyone else sends exactly once
            assert_eq!(plans[0].send_to, None);
            for (i, plan) in plans.iter().enumerate().skip(1) {
                let parent = plan.send_to.expect("non-root sends");
                assert!(parent < i, "parent {parent} of {i} must be lower-id");
                assert!(
                    plans[parent].recv_from.contains(&i),
                    "parent {parent} must expect {i}"
                );
            }
            // every send is expected exactly once
            let expected: usize = plans.iter().map(|pl| pl.recv_from.len()).sum();
            assert_eq!(expected, p - 1);
        }
    }

    #[test]
    fn merge_plan_order_is_ascending_step() {
        let plans = WorkerPool::merge_plans(8);
        assert_eq!(plans[0].recv_from, vec![1, 2, 4]);
        assert_eq!(plans[4].recv_from, vec![5, 6]);
        assert_eq!(plans[4].send_to, Some(0));
        assert_eq!(plans[6].recv_from, vec![7]);
        assert_eq!(plans[6].send_to, Some(4));
    }
}
