//! The per-shard compute core, factored out of the worker pool so every
//! embodiment of "one machine owning a source partition" runs the same
//! code path.
//!
//! A [`ShardState`] bundles exactly the state one shard owns — its private
//! `BD` store, its incrementally maintained partial [`Scores`], and the
//! kernel scratch arena — and exposes the shard-side half of every pool
//! command as a plain method: bootstrap, resume, the per-update map task,
//! canonical exact-reduce segments, and the export/import/retire halves of
//! a handoff. The in-process `WorkerPool` threads delegate
//! here, and the remote shard nodes of `ebc-cluster` drive the *same*
//! methods from wire frames — which is what makes a replica's replay
//! bitwise identical to its leader: both sides run this code, in the same
//! op order, over structurally identical graph replicas.
//!
//! Methods are generic over [`GraphView`] because the two callers pin
//! structure differently: pool workers compute against a shared
//! [`CsrView`](ebc_graph::csr::CsrView) epoch shipped with each command,
//! while remote nodes maintain a private [`Graph`](ebc_graph::Graph)
//! replica mutated by the replicated op stream.

use ebc_core::bd::{BdResult, BdStore, ExportedRecord};
use ebc_core::brandes::single_source_update_with;
use ebc_core::exact::{source_contribution, tree_segments_of, TreeSegment};
use ebc_core::incremental::{update_source, UpdateConfig};
use ebc_core::scores::Scores;
use ebc_core::scratch::KernelScratch;
use ebc_core::state::Update;
use ebc_graph::{EdgeId, GraphView, VertexId};

/// One shard's complete compute state: private record store, accumulated
/// partial scores, and the reusable kernel arena.
pub struct ShardState<S: BdStore> {
    store: S,
    partial: Scores,
    scratch: KernelScratch,
    cfg: UpdateConfig,
}

impl<S: BdStore> ShardState<S> {
    /// Wrap `store` with zeroed partials shaped `(n, edge_slots)`.
    pub fn new(store: S, n: usize, edge_slots: usize, cfg: UpdateConfig) -> Self {
        ShardState {
            store,
            partial: Scores::zeros(n, edge_slots),
            scratch: KernelScratch::new(n),
            cfg,
        }
    }

    /// The accumulated partial scores (the shard's term of the fast
    /// reduce sum).
    pub fn partial(&self) -> &Scores {
        &self.partial
    }

    /// Read access to the record store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the record store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Unwrap the record store (e.g. to persist it at shutdown).
    pub fn into_store(self) -> S {
        self.store
    }

    /// Owned sources in the store's deterministic order.
    pub fn sources(&self) -> Vec<VertexId> {
        self.store.sources()
    }

    /// Number of owned sources.
    pub fn num_sources(&self) -> usize {
        self.store.num_sources()
    }

    /// Bootstrap the partition: one Brandes iteration per owned source,
    /// accumulated into the partial scores (step 1 of the paper's
    /// Figure 4). Returns the Brandes iteration count.
    pub fn bootstrap<G: GraphView>(&mut self, g: &G, sources: &[VertexId]) -> BdResult<u64> {
        for &s in sources {
            let r = single_source_update_with(g, s, &mut self.partial, &mut self.scratch.brandes);
            self.store.add_source(s, r.d, r.sigma, r.delta)?;
        }
        Ok(sources.len() as u64)
    }

    /// Rehydrate the partial score vector from the store's existing
    /// records: each owned source's contribution is derived from `BD[s]`
    /// alone and folded in ascending source order (pinned, so a restart is
    /// reproducible). No Brandes iteration runs — hence the returned count
    /// of 0.
    pub fn resume<G: GraphView>(&mut self, g: &G) -> BdResult<u64> {
        let mut sources = self.store.sources();
        sources.sort_unstable();
        let (n, edge_slots) = (g.n(), g.edge_slots());
        self.partial = Scores::zeros(n, edge_slots);
        let store = &mut self.store;
        let scratch = &mut self.scratch;
        for s in sources {
            let leaf = scratch.leaf_buffer(n, edge_slots);
            store.update_with(s, &mut |rec| {
                source_contribution(g, s, rec.d, rec.sigma, rec.delta, leaf);
                false
            })?;
            self.partial.merge_from(leaf);
        }
        Ok(0)
    }

    /// Map task for one update against the **post-update** view `g`: widen
    /// store/scratch/partials to the view's dimensions, run the incremental
    /// kernel for every owned source (skipping `dd == 0` via the cheap
    /// peek), Brandes-adopt `adopt` if a new source arrived here, and zero
    /// the score slot freed by a removal.
    pub fn apply<G: GraphView>(
        &mut self,
        g: &G,
        update: Update,
        removed_eid: Option<EdgeId>,
        adopt: Option<VertexId>,
    ) -> BdResult<()> {
        let Update { op, u, v } = update;
        while self.store.n() < g.n() {
            self.store.grow_vertex()?;
        }
        self.scratch.grow(g.n());
        self.partial.ensure_shape(g.n(), g.edge_slots());
        let partial = &mut self.partial;
        let cfg = &self.cfg;
        let KernelScratch { ws, sources, .. } = &mut self.scratch;
        self.store.sources_into(sources);
        let stats = self.store.update_batch(sources, u, v, &mut |s, rec| {
            update_source(g, s, op, u, v, rec, partial, ws, cfg)
        })?;
        self.scratch.ws.stats.sources_skipped += stats.skipped;
        if let Some(s_new) = adopt {
            let r =
                single_source_update_with(g, s_new, &mut self.partial, &mut self.scratch.brandes);
            self.store.add_source(s_new, r.d, r.sigma, r.delta)?;
        }
        if let Some(eid) = removed_eid {
            self.partial.ebc[eid as usize] = 0.0;
        }
        Ok(())
    }

    /// Canonical exact-reduce segments of the owned sources, derived from
    /// the store's membership list — never from an assumed contiguous
    /// range: after handoffs the owned set can be any subset, and
    /// [`tree_segments_of`] guarantees the assembled root is bitwise
    /// invariant for any disjoint cover.
    pub fn segments<G: GraphView>(&mut self, g: &G) -> BdResult<Vec<TreeSegment>> {
        let sources = self.store.sources();
        let n = g.n();
        let shape = (n, g.edge_slots());
        let store = &mut self.store;
        let mut leaf = |s: VertexId, out: &mut Scores| -> BdResult<()> {
            store.update_with(s, &mut |rec| {
                source_contribution(g, s, rec.d, rec.sigma, rec.delta, out);
                false
            })?;
            Ok(())
        };
        tree_segments_of(&sources, n, shape, &mut leaf)
    }

    /// Donor half of a handoff: serialize `source`'s record out of the
    /// store and stop owning it (`tag` travels into crash-safe backends'
    /// export journals).
    pub fn export(&mut self, source: VertexId, tag: u64) -> BdResult<ExportedRecord> {
        self.store.export_source(source, tag)
    }

    /// Recipient half of a handoff: install a record exported by a peer.
    /// The imported source's historical contribution stays in the donor's
    /// partial (the fast reduce sums over all shards); only *future*
    /// updates for it accumulate here.
    pub fn import(&mut self, record: ExportedRecord) -> BdResult<()> {
        self.store
            .add_source(record.source, record.d, record.sigma, record.delta)
    }

    /// Discard the export journal left for `source`, the handoff having
    /// committed elsewhere.
    pub fn retire(&mut self, source: VertexId) -> BdResult<()> {
        self.store.retire_export(source)
    }

    /// Flush the store's durable backing (no-op for memory stores).
    pub fn flush(&mut self) -> BdResult<()> {
        self.store.flush()
    }
}
