//! The versioned source→shard map: one ownership authority for bootstrap
//! partitioning, adoption of arriving vertices, and rebalance handoffs.
//!
//! The paper's Figure 4 framework pins each worker to a static source range
//! `Π_i`; growing past one machine's source set needs ownership that can
//! *move*. A [`ShardMap`] replaces the raw `Vec<Range<u32>>` view with an
//! explicit source→shard assignment that
//!
//! * bootstraps to the exact [`crate::partition_ranges`] layout (existing
//!   contiguous partitions are bit-identical — the map is a strict
//!   generalisation, not a new policy);
//! * adopts arriving sources under the same pinned rule the
//!   [`crate::AdoptionLedger`] enforced (fewest owned sources, ties to the
//!   lowest shard id) — the ledger is now a thin wrapper over this map;
//! * computes **deterministic rebalance plans**: when the owned-source skew
//!   `max − min` exceeds a configurable threshold, [`ShardMap::plan_rebalance`]
//!   emits the exact sequence of [`SourceMove`]s that restores the
//!   invariant (largest shard donates its highest-id source to the
//!   smallest shard, ties to the lowest shard id — every step pinned so
//!   replays are reproducible);
//! * carries a **version** that advances on every ownership change, so
//!   executors (the worker pool's `Export`/`Import` path, the at-rest
//!   `ebc-store` `ShardSet`) can correlate their commits with the map.
//!
//! The map is coordinator-side bookkeeping only: it never touches worker
//! state, and the exact-reduce segments each worker derives come from its
//! *store's* membership list (which mirrors the map move for move) through
//! [`ebc_core::exact::tree_segments_of`] — correctness never assumes
//! contiguous ownership.

use crate::partition::partition_ranges;
use ebc_graph::{FxHashMap, VertexId};
use std::fmt;

/// One source changing hands: the atom of a [`RebalancePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceMove {
    /// The source being handed over.
    pub source: VertexId,
    /// Donor shard.
    pub from: usize,
    /// Recipient shard.
    pub to: usize,
}

/// A deterministic sequence of moves restoring the skew invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalancePlan {
    /// The moves, in execution order.
    pub moves: Vec<SourceMove>,
    /// The skew threshold the plan restores (`max − min ≤ threshold`).
    pub threshold: usize,
    /// Map version the plan was computed against; executing a move through
    /// [`ShardMap::apply_move`] advances the version, so a plan is only
    /// valid against the map state it was derived from.
    pub from_version: u64,
}

impl RebalancePlan {
    /// No moves needed.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Violations of the map's ownership rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMapError {
    /// The source is already owned by a shard.
    AlreadyOwned(VertexId, usize),
    /// The source is not owned by the shard a move names as donor.
    NotOwnedBy(VertexId, usize),
    /// The source is not owned by any shard.
    Unowned(VertexId),
    /// A move names a shard id outside `0..num_shards`, or donor ==
    /// recipient.
    BadShard(usize),
}

impl fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMapError::AlreadyOwned(s, k) => {
                write!(f, "source {s} already owned by shard {k}")
            }
            ShardMapError::NotOwnedBy(s, k) => {
                write!(f, "source {s} is not owned by shard {k}")
            }
            ShardMapError::Unowned(s) => write!(f, "source {s} is not owned by any shard"),
            ShardMapError::BadShard(k) => write!(f, "shard id {k} invalid for this map"),
        }
    }
}

impl std::error::Error for ShardMapError {}

/// The versioned source→shard assignment (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Per-shard owned sources. Order within a shard is bookkeeping only
    /// (membership is what the invariants speak about).
    owned: Vec<Vec<VertexId>>,
    /// Reverse index: source → owning shard.
    owner: FxHashMap<VertexId, usize>,
    /// Per-shard owned counts, kept in lockstep with `owned` so callers can
    /// borrow them as a slice.
    counts: Vec<usize>,
    /// Advances by one on every ownership change (adopt or applied move).
    version: u64,
}

impl ShardMap {
    /// Bootstrap map for `n` sources over `p` shards: delegates to
    /// [`partition_ranges`], so the initial layout is bit-identical to the
    /// contiguous `Π_i` partitioning the engine always used.
    pub fn bootstrap(n: usize, p: usize) -> Self {
        let ranges = partition_ranges(n, p);
        let owned: Vec<Vec<VertexId>> = ranges.iter().map(|r| r.clone().collect()).collect();
        Self::from_owned(owned).expect("contiguous ranges are disjoint")
    }

    /// Rebuild a map from an explicit per-shard assignment (e.g. the
    /// at-rest `ShardSet` sidecars after a recovery). Fails if any source
    /// appears in two shards.
    pub fn from_assignment(owned: Vec<Vec<VertexId>>) -> Result<Self, ShardMapError> {
        Self::from_owned(owned)
    }

    /// [`ShardMap::from_assignment`] stamped with a recovered version, so a
    /// resumed cluster's map continues the killed incarnation's version
    /// sequence instead of restarting at 0 (the `ClusterEngine::resume`
    /// path hands the `ShardSet` manifest version here).
    pub fn from_assignment_versioned(
        owned: Vec<Vec<VertexId>>,
        version: u64,
    ) -> Result<Self, ShardMapError> {
        let mut map = Self::from_owned(owned)?;
        map.version = version;
        Ok(map)
    }

    fn from_owned(owned: Vec<Vec<VertexId>>) -> Result<Self, ShardMapError> {
        assert!(!owned.is_empty(), "a shard map needs at least one shard");
        let mut owner = FxHashMap::default();
        for (k, sources) in owned.iter().enumerate() {
            for &s in sources {
                if let Some(prev) = owner.insert(s, k) {
                    return Err(ShardMapError::AlreadyOwned(s, prev));
                }
            }
        }
        let counts = owned.iter().map(|o| o.len()).collect();
        Ok(ShardMap {
            owned,
            owner,
            counts,
            version: 0,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.owned.len()
    }

    /// Per-shard owned-source counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total owned sources across all shards.
    pub fn total(&self) -> usize {
        self.owner.len()
    }

    /// Current map version (0 at bootstrap; +1 per ownership change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Advance the version without an ownership change and return the new
    /// value. A leadership promotion is an ownership-*relevant* event — the
    /// replica set serving a shard changed even though the source→shard
    /// assignment did not — and distributed coordinators use the map
    /// version as the fencing token stale leaders are rejected by, so a
    /// promotion must be version-visible.
    pub fn bump_version(&mut self) -> u64 {
        self.version += 1;
        self.version
    }

    /// Owned-source skew: `max − min` across shards.
    pub fn skew(&self) -> usize {
        let max = self.counts.iter().max().copied().unwrap_or(0);
        let min = self.counts.iter().min().copied().unwrap_or(0);
        max - min
    }

    /// The shard owning `s`, if any.
    pub fn owner_of(&self, s: VertexId) -> Option<usize> {
        self.owner.get(&s).copied()
    }

    /// The sources shard `k` owns (bookkeeping order).
    pub fn sources_of(&self, k: usize) -> &[VertexId] {
        &self.owned[k]
    }

    /// Assign one newly arrived source under the pinned adoption rule —
    /// fewest owned sources, ties to the lowest shard id (identical to the
    /// historical `AdoptionLedger` behaviour). Returns the adopting shard.
    pub fn adopt(&mut self, s: VertexId) -> Result<usize, ShardMapError> {
        if let Some(&k) = self.owner.get(&s) {
            return Err(ShardMapError::AlreadyOwned(s, k));
        }
        let adopter = self
            .counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .expect("at least one shard");
        self.owner.insert(s, adopter);
        self.owned[adopter].push(s);
        self.counts[adopter] += 1;
        self.version += 1;
        Ok(adopter)
    }

    /// Compute the deterministic rebalance plan for `threshold` (clamped up
    /// to 1 — counts cannot be made more equal than within one): while
    /// `max − min > threshold`, the shard with the most sources (ties to
    /// the lowest id) donates its **highest-id** source to the shard with
    /// the fewest (ties to the lowest id). Pure: the map is not modified;
    /// execute the plan move by move via [`ShardMap::apply_move`] so the
    /// map only ever reflects handoffs that actually happened.
    pub fn plan_rebalance(&self, threshold: usize) -> RebalancePlan {
        let threshold = threshold.max(1);
        if self.skew() <= threshold {
            // the common idle-tick case: no simulation state to build
            return RebalancePlan {
                moves: Vec::new(),
                threshold,
                from_version: self.version,
            };
        }
        let mut counts = self.counts.clone();
        // simulation state: per-shard sorted source lists (pop = highest id)
        let mut sim: Vec<Vec<VertexId>> = self
            .owned
            .iter()
            .map(|o| {
                let mut v = o.clone();
                v.sort_unstable();
                v
            })
            .collect();
        let mut moves = Vec::new();
        loop {
            let (mut max_k, mut min_k) = (0usize, 0usize);
            for k in 1..counts.len() {
                if counts[k] > counts[max_k] {
                    max_k = k;
                }
                if counts[k] < counts[min_k] {
                    min_k = k;
                }
            }
            if counts[max_k] - counts[min_k] <= threshold {
                break;
            }
            let source = sim[max_k].pop().expect("donor owns at least one source");
            counts[max_k] -= 1;
            counts[min_k] += 1;
            sim[min_k].push(source); // sorted order irrelevant for recipients
            moves.push(SourceMove {
                source,
                from: max_k,
                to: min_k,
            });
        }
        RebalancePlan {
            moves,
            threshold,
            from_version: self.version,
        }
    }

    /// Record one executed move (adoption and rebalance share this single
    /// ownership authority). Validates that the donor really owns the
    /// source and the shard ids are in range; advances the version.
    pub fn apply_move(&mut self, mv: &SourceMove) -> Result<(), ShardMapError> {
        let p = self.owned.len();
        if mv.from >= p || mv.to >= p || mv.from == mv.to {
            return Err(ShardMapError::BadShard(mv.to.max(mv.from)));
        }
        match self.owner.get(&mv.source) {
            Some(&k) if k == mv.from => {}
            _ => return Err(ShardMapError::NotOwnedBy(mv.source, mv.from)),
        }
        let pos = self.owned[mv.from]
            .iter()
            .position(|&s| s == mv.source)
            .expect("owner index and owned lists agree");
        self.owned[mv.from].swap_remove(pos);
        self.counts[mv.from] -= 1;
        self.owned[mv.to].push(mv.source);
        self.counts[mv.to] += 1;
        self.owner.insert(mv.source, mv.to);
        self.version += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_is_exactly_once(map: &ShardMap, universe: impl Iterator<Item = u32>) {
        let mut owned_total = 0usize;
        for s in universe {
            let owners = (0..map.num_shards())
                .filter(|&k| map.sources_of(k).contains(&s))
                .count();
            assert_eq!(owners, 1, "source {s} owned {owners} times");
            assert!(map.owner_of(s).is_some());
            owned_total += 1;
        }
        assert_eq!(map.total(), owned_total);
    }

    #[test]
    fn bootstrap_matches_partition_ranges_bit_for_bit() {
        for (n, p) in [(10usize, 3usize), (103, 10), (5, 8), (0, 4), (64, 1)] {
            let map = ShardMap::bootstrap(n, p);
            let ranges = partition_ranges(n, p);
            assert_eq!(map.num_shards(), p);
            for (k, r) in ranges.iter().enumerate() {
                let expect: Vec<u32> = r.clone().collect();
                assert_eq!(map.sources_of(k), &expect[..], "n={n} p={p} shard {k}");
            }
            assert_eq!(map.version(), 0);
            assert!(map.skew() <= 1);
        }
    }

    #[test]
    fn adoption_rule_matches_the_pinned_ledger() {
        let mut map = ShardMap::bootstrap(7, 3); // counts [3, 2, 2]
        assert_eq!(map.adopt(7).unwrap(), 1);
        assert_eq!(map.adopt(8).unwrap(), 2);
        assert_eq!(map.adopt(9).unwrap(), 0);
        assert_eq!(map.counts(), &[4, 3, 3]);
        assert_eq!(map.version(), 3);
        assert!(matches!(
            map.adopt(8),
            Err(ShardMapError::AlreadyOwned(8, 2))
        ));
    }

    #[test]
    fn plan_restores_skew_deterministically() {
        let mut map = ShardMap::bootstrap(12, 3); // [4, 4, 4]
                                                  // skew it: shard 0 takes everything shard 2 owns
        for s in [8u32, 9, 10, 11] {
            map.apply_move(&SourceMove {
                source: s,
                from: 2,
                to: 0,
            })
            .unwrap();
        }
        assert_eq!(map.counts(), &[8, 4, 0]);
        assert_eq!(map.skew(), 8);
        let plan = map.plan_rebalance(1);
        // pinned: highest id from the largest shard to the smallest shard
        assert_eq!(
            plan.moves,
            vec![
                SourceMove {
                    source: 11,
                    from: 0,
                    to: 2
                },
                SourceMove {
                    source: 10,
                    from: 0,
                    to: 2
                },
                SourceMove {
                    source: 9,
                    from: 0,
                    to: 2
                },
                SourceMove {
                    source: 8,
                    from: 0,
                    to: 2
                },
            ]
        );
        // identical plan on an identical map (determinism)
        assert_eq!(map.plan_rebalance(1), plan);
        for mv in &plan.moves {
            map.apply_move(mv).unwrap();
        }
        assert_eq!(map.counts(), &[4, 4, 4]);
        assert!(map.skew() <= 1);
        assert!(map.plan_rebalance(1).is_empty());
        cover_is_exactly_once(&map, 0..12);
    }

    #[test]
    fn threshold_zero_is_clamped_to_one() {
        let map = ShardMap::bootstrap(7, 2); // [4, 3] — within one
        let plan = map.plan_rebalance(0);
        assert_eq!(plan.threshold, 1);
        assert!(plan.is_empty(), "within-one cannot be improved");
    }

    #[test]
    fn moves_are_validated() {
        let mut map = ShardMap::bootstrap(6, 2);
        assert!(matches!(
            map.apply_move(&SourceMove {
                source: 0,
                from: 1,
                to: 0
            }),
            Err(ShardMapError::NotOwnedBy(0, 1))
        ));
        assert!(matches!(
            map.apply_move(&SourceMove {
                source: 0,
                from: 0,
                to: 0
            }),
            Err(ShardMapError::BadShard(0))
        ));
        assert!(matches!(
            map.apply_move(&SourceMove {
                source: 0,
                from: 0,
                to: 7
            }),
            Err(ShardMapError::BadShard(7))
        ));
        assert_eq!(map.version(), 0, "rejected moves leave the map untouched");
    }

    #[test]
    fn from_assignment_rejects_duplicates() {
        assert!(ShardMap::from_assignment(vec![vec![0, 1], vec![1, 2]]).is_err());
        let map = ShardMap::from_assignment(vec![vec![5, 0], vec![], vec![3]]).unwrap();
        assert_eq!(map.counts(), &[2, 0, 1]);
        assert_eq!(map.owner_of(3), Some(2));
        assert_eq!(map.owner_of(4), None);
        assert_eq!(map.skew(), 2);
    }

    #[test]
    fn empty_shards_receive_before_donating_again() {
        let mut map =
            ShardMap::from_assignment(vec![vec![0, 1, 2, 3, 4], vec![], vec![5]]).unwrap();
        let plan = map.plan_rebalance(1);
        for mv in &plan.moves {
            map.apply_move(mv).unwrap();
        }
        assert!(map.skew() <= 1, "{:?}", map.counts());
        cover_is_exactly_once(&map, 0..6);
    }
}
