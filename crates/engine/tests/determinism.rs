//! Determinism contract of the pooled engine: the same stream replayed on
//! clusters of *different* worker counts yields bitwise-identical exact
//! scores, and adopter assignments for newly arrived vertices follow the
//! pinned ledger rule (smallest partition, ties to the smallest worker id)
//! — so a replay is reproducible machine-for-machine.

use ebc_core::scores::Scores;
use ebc_core::state::Update;
use ebc_engine::{AdoptionLedger, ClusterEngine};
use ebc_gen::models::holme_kim;
use ebc_gen::streams::{addition_stream, removal_stream};

fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (
        s.vbc.iter().map(|x| x.to_bits()).collect(),
        s.ebc.iter().map(|x| x.to_bits()).collect(),
    )
}

/// A stream over holme_kim(30): plain additions and removals plus four
/// vertex arrivals (ids 30..34).
fn growth_stream() -> (ebc_graph::Graph, Vec<Update>) {
    let g = holme_kim(30, 3, 0.4, 17);
    let mut updates: Vec<Update> = addition_stream(&g, 4, 3)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    for (i, anchor) in [5u32, 11, 2, 23].into_iter().enumerate() {
        updates.push(Update::add(anchor, 30 + i as u32));
    }
    updates.extend(
        removal_stream(&g, 4, 4)
            .into_iter()
            .map(|(u, v)| Update::remove(u, v)),
    );
    (g, updates)
}

fn replay(g: &ebc_graph::Graph, updates: &[Update], p: usize) -> (Vec<Option<usize>>, Scores) {
    let mut cluster = ClusterEngine::new(g, p).unwrap();
    let reports = cluster.apply_stream(updates).unwrap();
    let adopters = reports.iter().map(|r| r.adopter).collect();
    let exact = cluster.reduce_exact().unwrap().scores;
    (adopters, exact)
}

#[test]
fn different_worker_counts_reduce_to_identical_bits() {
    let (g, updates) = growth_stream();
    let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
    for p in [1usize, 2, 3, 5, 8] {
        let (_, exact) = replay(&g, &updates, p);
        match &reference {
            None => reference = Some(bits(&exact)),
            Some(r) => assert_eq!(r, &bits(&exact), "p={p} diverged bitwise"),
        }
    }
}

#[test]
fn same_worker_count_replays_are_fully_identical() {
    let (g, updates) = growth_stream();
    let (adopters_a, exact_a) = replay(&g, &updates, 4);
    let (adopters_b, exact_b) = replay(&g, &updates, 4);
    assert_eq!(
        adopters_a, adopters_b,
        "adopter assignment not deterministic"
    );
    assert_eq!(bits(&exact_a), bits(&exact_b));
    // the fast reduce is also deterministic at fixed p (fixed merge tree)
    let mut c1 = ClusterEngine::new(&g, 4).unwrap();
    let mut c2 = ClusterEngine::new(&g, 4).unwrap();
    c1.apply_stream(&updates).unwrap();
    c2.apply_stream(&updates).unwrap();
    let f1 = c1.reduce().unwrap().scores;
    let f2 = c2.reduce().unwrap().scores;
    assert_eq!(
        bits(&f1),
        bits(&f2),
        "fast reduce not deterministic at fixed p"
    );
}

#[test]
fn adopters_follow_the_pinned_ledger_rule() {
    let (g, updates) = growth_stream();
    for p in [2usize, 3, 5] {
        let (adopters, _) = replay(&g, &updates, p);
        // simulate the pinned rule next to the engine
        let mut ledger = AdoptionLedger::new(g.n(), p);
        let mut n = g.n() as u32;
        for (update, adopter) in updates.iter().zip(&adopters) {
            let grows = update.op == ebc_graph::EdgeOp::Add && update.u.max(update.v) == n;
            if grows {
                n += 1;
                assert_eq!(
                    *adopter,
                    Some(ledger.adopt()),
                    "p={p}: adopter deviated from the pinned rule for {update:?}"
                );
            } else {
                assert_eq!(*adopter, None, "p={p}: phantom adoption for {update:?}");
            }
        }
        // every new vertex was adopted: sources still cover the graph
        assert_eq!(ledger.total(), n as usize);
    }
}
