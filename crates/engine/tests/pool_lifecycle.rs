//! Lifecycle of the persistent pool: dropping a `ClusterEngine` joins every
//! worker thread (no leak, no panic) even with work still queued, and a
//! worker whose store fails is poisoned — the failure surfaces as an
//! `EngineError` on the apply that hit it and on every subsequent call,
//! never as a hang.

use ebc_core::bd::{BdError, BdResult, BdStore, MemoryBdStore, SourceFn};
use ebc_core::incremental::UpdateConfig;
use ebc_core::state::Update;
use ebc_engine::{ClusterEngine, EngineError};
use ebc_gen::models::holme_kim;
use ebc_gen::streams::addition_stream;
use ebc_graph::VertexId;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Arc;

/// Memory store with an optional failure budget (every `update_with` spends
/// one unit; a depleted budget errors) and a drop counter proving the owning
/// worker thread released it.
struct InstrumentedStore {
    inner: MemoryBdStore,
    budget: Option<Arc<AtomicIsize>>,
    drops: Arc<AtomicUsize>,
}

impl InstrumentedStore {
    fn new(n: usize, budget: Option<Arc<AtomicIsize>>, drops: Arc<AtomicUsize>) -> Self {
        InstrumentedStore {
            inner: MemoryBdStore::new(n),
            budget,
            drops,
        }
    }
}

impl Drop for InstrumentedStore {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

impl BdStore for InstrumentedStore {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn sources(&self) -> Vec<VertexId> {
        self.inner.sources()
    }
    fn num_sources(&self) -> usize {
        self.inner.num_sources()
    }
    fn peek_pair(&mut self, s: VertexId, a: VertexId, b: VertexId) -> BdResult<(u32, u32)> {
        self.inner.peek_pair(s, a, b)
    }
    fn update_with(&mut self, s: VertexId, f: SourceFn<'_>) -> BdResult<bool> {
        if let Some(budget) = &self.budget {
            if budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
                return Err(BdError::Corrupt("injected store failure".into()));
            }
        }
        self.inner.update_with(s, f)
    }
    fn grow_vertex(&mut self) -> BdResult<()> {
        self.inner.grow_vertex()
    }
    fn add_source(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
    ) -> BdResult<()> {
        self.inner.add_source(s, d, sigma, delta)
    }
    fn remove_source(&mut self, s: VertexId) -> BdResult<()> {
        self.inner.remove_source(s)
    }
}

#[test]
fn dropping_the_engine_joins_all_workers() {
    let g = holme_kim(30, 3, 0.4, 21);
    let drops = Arc::new(AtomicUsize::new(0));
    let p = 4;
    let drops_factory = drops.clone();
    let mut cluster = ClusterEngine::new_with(&g, p, UpdateConfig::default(), move |_worker, n| {
        Ok(InstrumentedStore::new(n, None, drops_factory.clone()))
    })
    .unwrap();
    let updates: Vec<Update> = addition_stream(&g, 6, 5)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    cluster.apply_stream(&updates).unwrap();
    assert_eq!(drops.load(Ordering::SeqCst), 0, "stores released early");
    drop(cluster);
    // Drop returned, so every thread was joined — and each released its store.
    assert_eq!(drops.load(Ordering::SeqCst), p, "a worker leaked its store");
}

#[test]
fn poisoned_worker_surfaces_as_engine_error_not_a_hang() {
    let g = holme_kim(30, 3, 0.4, 23);
    let drops = Arc::new(AtomicUsize::new(0));
    let p = 3;
    // worker 1 may touch records twice, then every further write fails
    let budget = Arc::new(AtomicIsize::new(2));
    let drops_factory = drops.clone();
    let budget_factory = budget.clone();
    let mut cluster = ClusterEngine::new_with(&g, p, UpdateConfig::default(), move |worker, n| {
        let budget = (worker == 1).then(|| budget_factory.clone());
        Ok(InstrumentedStore::new(n, budget, drops_factory.clone()))
    })
    .unwrap();

    let updates: Vec<Update> = addition_stream(&g, 8, 7)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    // keep applying until the injected failure fires
    let mut saw_store_error = false;
    for &u in &updates {
        match cluster.apply(u) {
            Ok(_) => {}
            Err(EngineError::Store(BdError::Corrupt(msg))) => {
                assert_eq!(msg, "injected store failure");
                saw_store_error = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_store_error, "failure budget never fired");

    // the engine is poisoned: subsequent operations answer immediately
    assert!(matches!(
        cluster.apply(Update::add(0, 29)),
        Err(EngineError::Poisoned(_))
    ));
    assert!(matches!(cluster.reduce(), Err(EngineError::Poisoned(_))));
    assert!(matches!(
        cluster.reduce_exact(),
        Err(EngineError::Poisoned(_))
    ));

    // ... and tearing it down still joins everything
    drop(cluster);
    assert_eq!(drops.load(Ordering::SeqCst), p);
}

#[test]
fn mid_stream_poison_still_tears_down_cleanly() {
    let g = holme_kim(40, 3, 0.4, 29);
    let drops = Arc::new(AtomicUsize::new(0));
    let p = 4;
    let budget = Arc::new(AtomicIsize::new(5));
    let drops_factory = drops.clone();
    let budget_factory = budget.clone();
    let mut cluster = ClusterEngine::new_with(&g, p, UpdateConfig::default(), move |worker, n| {
        let budget = (worker == 2).then(|| budget_factory.clone());
        Ok(InstrumentedStore::new(n, budget, drops_factory.clone()))
    })
    .unwrap();
    // a long pipelined stream: the failure fires while later updates are
    // already queued on the workers' channels
    let updates: Vec<Update> = addition_stream(&g, 20, 9)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    let err = cluster.apply_stream(&updates).unwrap_err();
    assert!(
        matches!(err, EngineError::Store(_)),
        "expected the injected store error, got {err}"
    );
    // dropping with commands still in flight joins every worker
    drop(cluster);
    assert_eq!(drops.load(Ordering::SeqCst), p);
}
