//! Property tests for the `Π_i` partition math and the pinned adoption
//! rule: for arbitrary `(n, p, arrival sequence)` the per-worker source
//! sets remain a disjoint cover of the source ids with `max − min ≤ 1`.

use ebc_engine::{partition_ranges, AdoptionLedger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ranges_are_a_balanced_disjoint_cover(n in 0usize..500, p in 1usize..16) {
        let ranges = partition_ranges(n, p);
        prop_assert_eq!(ranges.len(), p);
        let mut covered = vec![0u8; n];
        for r in &ranges {
            for v in r.clone() {
                covered[v as usize] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "not a disjoint cover");
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "imbalanced: {:?}", sizes);
    }

    #[test]
    fn adoption_preserves_cover_and_balance(
        n in 0usize..300,
        p in 1usize..12,
        arrivals in 0usize..60,
    ) {
        // per-worker source sets: the initial contiguous ranges...
        let ranges = partition_ranges(n, p);
        let mut owned: Vec<Vec<u32>> = ranges.iter().map(|r| r.clone().collect()).collect();
        // ...plus each arriving vertex (ids n, n+1, ...) at its adopter
        let mut ledger = AdoptionLedger::new(n, p);
        for k in 0..arrivals {
            let adopter = ledger.adopt();
            prop_assert!(adopter < p, "adopter out of range");
            owned[adopter].push((n + k) as u32);
        }
        // disjoint cover of 0..n+arrivals
        let total = n + arrivals;
        let mut covered = vec![0u8; total];
        for sources in &owned {
            for &s in sources {
                covered[s as usize] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "not a disjoint cover");
        // ledger counts mirror reality and stay balanced within one
        let sizes: Vec<usize> = owned.iter().map(|s| s.len()).collect();
        prop_assert_eq!(&sizes[..], ledger.counts());
        prop_assert_eq!(ledger.total(), total);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "imbalanced after adoption: {:?}", sizes);
    }
}
