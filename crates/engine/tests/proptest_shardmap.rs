//! Property-test battery for the shard map and its handoff machinery, over
//! random arrival / edge-update / handoff / rebalance sequences:
//!
//! 1. **exactly-once ownership** — after every operation each source is
//!    owned by exactly one shard;
//! 2. **skew invariant** — `max − min ≤ threshold` across shards after any
//!    rebalance;
//! 3. **shard-invariance oracle** — scores after any generated
//!    handoff/rebalance schedule are **bit-identical** to the single-shard
//!    [`BetweennessState`] exact reduction, on both the in-memory and the
//!    on-disk store backend.
//!
//! The vendored proptest stub derives each test's RNG seed from the test
//! name, so CI runs are reproducible by construction.

use ebc_core::state::{BetweennessState, Update};
use ebc_core::Scores;
use ebc_engine::{ClusterEngine, EngineError, ShardMap, SourceMove};
use ebc_gen::models::holme_kim;
use ebc_store::{CodecKind, DiskBdStore};
use proptest::collection;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One step of a random map history.
#[derive(Debug, Clone, Copy)]
enum MapOp {
    /// A new source arrives and is adopted under the pinned rule.
    Arrive,
    /// An explicit out-of-plan handoff (picks reduced modulo the live
    /// state, so every generated op is executable).
    Move {
        from_pick: usize,
        to_pick: usize,
        src_pick: usize,
    },
    /// Plan and execute a full rebalance at the given threshold.
    Rebalance { threshold: usize },
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        3 => Just(MapOp::Arrive),
        4 => (0usize..1024, 0usize..1024, 0usize..1024).prop_map(|(f, t, s)| MapOp::Move {
            from_pick: f,
            to_pick: t,
            src_pick: s,
        }),
        2 => (1usize..4).prop_map(|threshold| MapOp::Rebalance { threshold }),
    ]
}

fn assert_exactly_once(map: &ShardMap, universe: usize) -> Result<(), TestCaseError> {
    let mut covered = vec![0u8; universe];
    for k in 0..map.num_shards() {
        for &s in map.sources_of(k) {
            covered[s as usize] += 1;
        }
    }
    prop_assert!(
        covered.iter().all(|&c| c == 1),
        "not an exactly-once cover: {covered:?}"
    );
    prop_assert_eq!(map.total(), universe);
    Ok(())
}

// the stub's prop_assert! panics rather than returning Err, so this alias
// keeps the helper signature compatible with both implementations
type TestCaseError = ();

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Invariants (1) and (2) on the map alone, under arbitrary histories.
    #[test]
    fn ownership_exactly_once_and_skew_restored(
        n in 0usize..160,
        p in 1usize..9,
        ops in collection::vec(map_op(), 0..36),
    ) {
        let mut map = ShardMap::bootstrap(n, p);
        let mut next = n as u32;
        for op in ops {
            match op {
                MapOp::Arrive => {
                    map.adopt(next).unwrap();
                    next += 1;
                }
                MapOp::Move { from_pick, to_pick, src_pick } => {
                    let from = from_pick % p;
                    let to = to_pick % p;
                    if from == to || map.sources_of(from).is_empty() {
                        continue;
                    }
                    let owned = map.sources_of(from);
                    let source = owned[src_pick % owned.len()];
                    map.apply_move(&SourceMove { source, from, to }).unwrap();
                }
                MapOp::Rebalance { threshold } => {
                    let plan = map.plan_rebalance(threshold);
                    prop_assert_eq!(plan.from_version, map.version());
                    for mv in &plan.moves {
                        map.apply_move(mv).unwrap();
                    }
                    prop_assert!(
                        map.skew() <= threshold.max(1),
                        "skew {} > threshold {} after rebalance: {:?}",
                        map.skew(), threshold, map.counts()
                    );
                }
            }
            assert_exactly_once(&map, next as usize)?;
        }
        // whatever the history, a final rebalance restores near-balance
        let plan = map.plan_rebalance(1);
        for mv in &plan.moves {
            map.apply_move(mv).unwrap();
        }
        prop_assert!(map.skew() <= 1, "{:?}", map.counts());
        assert_exactly_once(&map, next as usize)?;
    }

    /// Rebalance plans are pure and deterministic: planning twice on the
    /// same map yields identical moves, and planning does not mutate.
    #[test]
    fn plans_are_deterministic_and_pure(
        n in 1usize..120,
        p in 2usize..8,
        scrambles in collection::vec((0usize..1024, 0usize..1024), 0..24),
        threshold in 1usize..4,
    ) {
        let mut map = ShardMap::bootstrap(n, p);
        for (from_pick, to_pick) in scrambles {
            let from = from_pick % p;
            let to = to_pick % p;
            if from == to || map.sources_of(from).is_empty() {
                continue;
            }
            let source = *map.sources_of(from).iter().max().unwrap();
            map.apply_move(&SourceMove { source, from, to }).unwrap();
        }
        let version = map.version();
        let plan_a = map.plan_rebalance(threshold);
        let plan_b = map.plan_rebalance(threshold);
        prop_assert_eq!(&plan_a, &plan_b, "planning is not deterministic");
        prop_assert_eq!(map.version(), version, "planning mutated the map");
    }
}

/// One step of a random cluster history (stream + ownership churn).
#[derive(Debug, Clone, Copy)]
enum ClusterOp {
    /// Toggle the edge between two picked vertices: add when absent,
    /// remove when present (skipping removals that would be invalid).
    Toggle { u_pick: usize, v_pick: usize },
    /// Attach a brand-new vertex to a picked existing one (adoption path).
    Grow { u_pick: usize },
    /// Hand a picked source to a picked worker.
    Handoff { src_pick: usize, to_pick: usize },
    /// Plan + execute a rebalance at threshold 1.
    Rebalance,
}

fn cluster_op() -> impl Strategy<Value = ClusterOp> {
    prop_oneof![
        4 => (0usize..1024, 0usize..1024).prop_map(|(u, v)| ClusterOp::Toggle {
            u_pick: u,
            v_pick: v,
        }),
        1 => (0usize..1024).prop_map(|u| ClusterOp::Grow { u_pick: u }),
        3 => (0usize..1024, 0usize..1024).prop_map(|(s, t)| ClusterOp::Handoff {
            src_pick: s,
            to_pick: t,
        }),
        1 => Just(ClusterOp::Rebalance),
    ]
}

fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (
        s.vbc.iter().map(|x| x.to_bits()).collect(),
        s.ebc.iter().map(|x| x.to_bits()).collect(),
    )
}

/// Drive the same random schedule through a cluster (handoffs live) and the
/// single-machine state (which has no shards to hand between); the exact
/// reductions must agree bit for bit at every comparison point.
fn run_schedule<S: ebc_core::bd::BdStore + 'static>(
    mut cluster: ClusterEngine<S>,
    single: &mut BetweennessState,
    p: usize,
    ops: &[ClusterOp],
    ctx: &str,
) {
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ClusterOp::Toggle { u_pick, v_pick } => {
                let n = cluster.n();
                let u = (u_pick % n) as u32;
                let v = (v_pick % n) as u32;
                if u == v {
                    continue;
                }
                let update = if cluster.graph().has_edge(u, v) {
                    Update::remove(u, v)
                } else {
                    Update::add(u, v)
                };
                cluster.apply(update).unwrap();
                single.apply(update).unwrap();
            }
            ClusterOp::Grow { u_pick } => {
                let n = cluster.n();
                let u = (u_pick % n) as u32;
                let update = Update::add(u, n as u32);
                cluster.apply(update).unwrap();
                single.apply(update).unwrap();
            }
            ClusterOp::Handoff { src_pick, to_pick } => {
                let total = cluster.total_sources();
                let source = (src_pick % total) as u32;
                let to = to_pick % p;
                match cluster.handoff(source, to) {
                    Ok(()) => {}
                    // self-handoffs are generated and rejected; fine
                    Err(EngineError::Shard(_)) => continue,
                    Err(other) => panic!("{ctx}: handoff failed: {other}"),
                }
            }
            ClusterOp::Rebalance => {
                let report = cluster.rebalance(1).unwrap();
                assert!(
                    cluster.shard_map().skew() <= 1,
                    "{ctx}: skew after rebalance"
                );
                // compare right after every rebalance, not just at the end
                let exact = cluster.reduce_exact().unwrap().scores;
                let oracle = single.exact_scores().unwrap();
                assert_eq!(
                    bits(&exact),
                    bits(&oracle),
                    "{ctx}: diverged after rebalance {i} ({} moves)",
                    report.moves.len()
                );
            }
        }
    }
    let exact = cluster.reduce_exact().unwrap().scores;
    let oracle = single.exact_scores().unwrap();
    assert_eq!(bits(&exact), bits(&oracle), "{ctx}: final scores diverged");
    // ownership stayed exactly-once: counts on the map sum to the sources
    assert_eq!(cluster.total_sources(), cluster.n());
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Invariant (3), the headline oracle: any handoff/rebalance schedule
    /// leaves the exact reduction bit-identical to the single-shard state,
    /// on both store backends.
    #[test]
    fn scores_are_shard_invariant_under_handoffs(
        seed in 0u64..1_000,
        p in 2usize..6,
        ops in collection::vec(cluster_op(), 1..28),
    ) {
        let g = holme_kim(22, 2, 0.35, seed);
        // memory-backed cluster
        let mut single = BetweennessState::new(&g);
        let cluster = ClusterEngine::new(&g, p).unwrap();
        run_schedule(cluster, &mut single, p, &ops, &format!("mem seed={seed} p={p}"));

        // disk-backed cluster, fresh per case
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "sbc_proptest_shardmap_{}_{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut single = BetweennessState::new(&g);
        let store_dir = dir.clone();
        let cluster = ClusterEngine::new_with(
            &g,
            p,
            ebc_core::incremental::UpdateConfig::default(),
            move |worker, n| {
                let path = store_dir.join(format!("w{worker}.bd"));
                DiskBdStore::create(path, n, CodecKind::Wide).map_err(EngineError::from)
            },
        )
        .unwrap();
        run_schedule(cluster, &mut single, p, &ops, &format!("disk seed={seed} p={p}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
