//! # ebc-gen
//!
//! Synthetic graph and update-stream generators reproducing the workloads of
//! the paper's evaluation (§6):
//!
//! * [`models`] — classic random-graph models: Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, **Holme–Kim** powerlaw-cluster (our stand-in for the
//!   Sala et al. measurement-calibrated social-graph generator used for the
//!   paper's synthetic 1k…1000k graphs — it reproduces the three properties
//!   Table 2 reports: skewed degrees, tunable clustering, small diameter),
//!   and a clique-affiliation model for co-authorship-style graphs (dblp).
//! * [`standins`] — per-dataset synthetic stand-ins for the paper's six real
//!   KONECT graphs, at configurable scale (this environment has no network
//!   access; see `DESIGN.md` §4 for the substitution argument).
//! * [`streams`] — update-stream generators: the paper's "100 random
//!   unconnected pairs" addition stream, "100 random existing edges" removal
//!   stream, timestamped replay of a growing graph, and arrival-time
//!   processes for the online experiments (Figure 8 / Table 5).
//!
//! Everything is seeded explicitly (`SmallRng`), so every experiment in the
//! repository is reproducible bit for bit.

pub mod models;
pub mod standins;
pub mod streams;

pub use models::{barabasi_albert, clique_affiliation, erdos_renyi_gnm, holme_kim, watts_strogatz};
pub use standins::{standin, synthetic_social, Standin, StandinKind};
pub use streams::{addition_stream, removal_stream, replay_growth};
