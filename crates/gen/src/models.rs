//! Random-graph models.
//!
//! All generators are deterministic in their seed and return simple
//! undirected graphs; duplicate draws are rejected or skipped, so edge counts
//! are close to (but may slightly undershoot) their nominal targets on very
//! dense parameterisations.

use ebc_graph::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform edges (capped at the
/// number of available pairs).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_vertices(n);
    if n < 2 {
        return g;
    }
    let max_m = n * (n - 1) / 2;
    let target = m.min(max_m);
    while g.m() < target {
        let u = rng.random_range(0..n) as VertexId;
        let v = rng.random_range(0..n) as VertexId;
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).unwrap();
        }
    }
    g
}

/// Barabási–Albert preferential attachment: each arriving vertex connects to
/// `m_per` existing vertices with probability proportional to degree.
/// Produces power-law degrees and vanishing clustering — the low-CC regime of
/// Table 2 (slashdot, amazon).
pub fn barabasi_albert(n: usize, m_per: usize, seed: u64) -> Graph {
    stream_preferential(n, m_per, 0.0, seed).0
}

/// Holme–Kim "powerlaw cluster" model: Barabási–Albert plus *triad
/// formation* — after each preferential link to `w`, with probability
/// `p_triad` the next link goes to a random neighbour of `w`, closing a
/// triangle. Tunable clustering with power-law degrees: our stand-in for the
/// measurement-calibrated social-graph generator of Sala et al. used by the
/// paper for its synthetic graphs.
pub fn holme_kim(n: usize, m_per: usize, p_triad: f64, seed: u64) -> Graph {
    stream_preferential(n, m_per, p_triad, seed).0
}

/// Like [`holme_kim`], but also returns the edges in arrival order — the
/// basis for timestamped evolving-graph replays (§6 "Graph updates").
pub fn holme_kim_with_order(
    n: usize,
    m_per: usize,
    p_triad: f64,
    seed: u64,
) -> (Graph, Vec<(VertexId, VertexId)>) {
    stream_preferential(n, m_per, p_triad, seed)
}

fn stream_preferential(
    n: usize,
    m_per: usize,
    p_triad: f64,
    seed: u64,
) -> (Graph, Vec<(VertexId, VertexId)>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m_per = m_per.max(1);
    let mut g = Graph::with_vertices(n);
    let mut order = Vec::new();
    if n < 2 {
        return (g, order);
    }
    // `targets` holds one entry per half-edge: sampling uniformly from it is
    // degree-proportional sampling.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m_per);
    let seed_core = (m_per + 1).min(n);
    for u in 0..seed_core as VertexId {
        for v in (u + 1)..seed_core as VertexId {
            g.add_edge(u, v).unwrap();
            order.push((u, v));
            targets.push(u);
            targets.push(v);
        }
    }
    for v in seed_core as VertexId..n as VertexId {
        let mut added = 0usize;
        let mut last_anchor: Option<VertexId> = None;
        let mut attempts = 0usize;
        while added < m_per.min(v as usize) && attempts < 50 * m_per {
            attempts += 1;
            // triad formation: link to a neighbour of the previous anchor
            let candidate = if let Some(anchor) = last_anchor.filter(|_| rng.random_bool(p_triad)) {
                g.neighbors(anchor).choose(&mut rng).map(|h| h.to)
            } else {
                targets.choose(&mut rng).copied()
            };
            let Some(w) = candidate else { break };
            if w == v || g.has_edge(v, w) {
                continue;
            }
            g.add_edge(v, w).unwrap();
            order.push((v, w));
            targets.push(v);
            targets.push(w);
            last_anchor = Some(w);
            added += 1;
        }
        if added == 0 {
            // never strand a vertex: fall back to a uniform partner
            loop {
                let w = rng.random_range(0..v) as VertexId;
                if !g.has_edge(v, w) {
                    g.add_edge(v, w).unwrap();
                    order.push((v, w));
                    targets.push(v);
                    targets.push(w);
                    break;
                }
            }
        }
    }
    (g, order)
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbours per
/// side... rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_vertices(n);
    if n < 3 {
        return g;
    }
    let k = k.max(1).min((n - 1) / 2);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            let _ = g.add_edge(u as VertexId, v as VertexId);
        }
    }
    // rewiring pass
    let edges = g.sorted_edges();
    for (u, v) in edges {
        if rng.random_bool(beta) {
            let w = rng.random_range(0..n) as VertexId;
            if w != u && !g.has_edge(u, w) && g.degree(v) > 1 {
                g.remove_edge(u, v).unwrap();
                g.add_edge(u, w).unwrap();
            }
        }
    }
    g
}

/// Clique-affiliation model for collaboration networks: `groups` hyperedges
/// ("papers") of size 2–`max_group`, members drawn preferentially by prior
/// membership; every group becomes a clique. Produces the very high
/// clustering of co-authorship graphs (dblp row of Table 2, CC ≈ 0.65).
pub fn clique_affiliation(n: usize, groups: usize, max_group: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::with_vertices(n);
    if n < 2 {
        return g;
    }
    let max_group = max_group.max(2);
    let mut history: Vec<Vec<VertexId>> = Vec::new();
    for _ in 0..groups {
        // Repeat collaborations dominate real co-authorship: with high
        // probability a "paper" reuses a previous author group, swapping in
        // one new member. This keeps each author's neighbourhood nearly a
        // clique (local CC ≈ 1), matching dblp's CC ≈ 0.65.
        let mut members: Vec<VertexId> = if !history.is_empty() && rng.random_bool(0.45) {
            let prev = &history[rng.random_range(0..history.len())];
            let mut m = prev.clone();
            if m.len() > 2 && rng.random_bool(0.5) {
                let drop = rng.random_range(0..m.len());
                m.swap_remove(drop);
            }
            for _ in 0..8 {
                let cand = rng.random_range(0..n) as VertexId;
                if !m.contains(&cand) {
                    if m.len() < max_group {
                        m.push(cand);
                    }
                    break;
                }
            }
            m
        } else {
            // fresh paper: small group of uniform authors
            let size = 2 + (rng.random::<f64>().powi(2) * (max_group - 1) as f64) as usize;
            let mut m = Vec::with_capacity(size);
            while m.len() < size.min(n) {
                let cand = rng.random_range(0..n) as VertexId;
                if !m.contains(&cand) {
                    m.push(cand);
                }
            }
            m
        };
        members.sort_unstable();
        members.dedup();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if !g.has_edge(members[i], members[j]) {
                    g.add_edge(members[i], members[j]).unwrap();
                }
            }
        }
        history.push(members);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graph::stats::average_clustering;
    use ebc_graph::traversal::is_connected;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 120, 7);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 120);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = erdos_renyi_gnm(5, 1000, 7);
        assert_eq!(g.m(), 10);
    }

    #[test]
    fn gnm_deterministic_in_seed() {
        let a = erdos_renyi_gnm(40, 80, 42);
        let b = erdos_renyi_gnm(40, 80, 42);
        let c = erdos_renyi_gnm(40, 80, 43);
        assert_eq!(a.sorted_edges(), b.sorted_edges());
        assert_ne!(a.sorted_edges(), c.sorted_edges());
    }

    #[test]
    fn ba_grows_connected_with_expected_density() {
        let g = barabasi_albert(300, 3, 1);
        assert!(is_connected(&g), "BA graphs are connected by construction");
        // roughly m_per edges per vertex beyond the seed core
        assert!(
            g.m() >= 3 * (300 - 4) && g.m() <= 3 * 300 + 10,
            "m = {}",
            g.m()
        );
    }

    #[test]
    fn ba_has_degree_skew() {
        let g = barabasi_albert(500, 2, 3);
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg > 20,
            "preferential attachment should create hubs, max={max_deg}"
        );
    }

    #[test]
    fn holme_kim_raises_clustering() {
        let plain = barabasi_albert(400, 4, 11);
        let clustered = holme_kim(400, 4, 0.8, 11);
        let cc_plain = average_clustering(&plain);
        let cc_clustered = average_clustering(&clustered);
        assert!(
            cc_clustered > 2.0 * cc_plain,
            "triad formation should raise CC: {cc_plain} vs {cc_clustered}"
        );
        assert!(cc_clustered > 0.15, "cc = {cc_clustered}");
    }

    #[test]
    fn holme_kim_connected() {
        let g = holme_kim(200, 3, 0.5, 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn holme_kim_order_replays_to_same_graph() {
        let (g, order) = holme_kim_with_order(120, 3, 0.4, 9);
        assert_eq!(order.len(), g.m());
        let replayed = Graph::from_edges(order.iter().copied());
        assert_eq!(replayed.sorted_edges(), g.sorted_edges());
    }

    #[test]
    fn watts_strogatz_degree_regular_before_rewiring() {
        let g = watts_strogatz(60, 3, 0.0, 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6);
        }
        assert!(average_clustering(&g) > 0.5);
    }

    #[test]
    fn watts_strogatz_rewiring_reduces_clustering() {
        let lattice = watts_strogatz(200, 3, 0.0, 2);
        let rewired = watts_strogatz(200, 3, 0.6, 2);
        assert!(average_clustering(&rewired) < average_clustering(&lattice));
    }

    #[test]
    fn clique_affiliation_high_clustering() {
        let g = clique_affiliation(300, 220, 5, 13);
        let cc = average_clustering(&g);
        assert!(
            cc > 0.4,
            "affiliation graphs should be highly clustered, cc={cc}"
        );
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(erdos_renyi_gnm(0, 10, 1).n(), 0);
        assert_eq!(barabasi_albert(1, 3, 1).m(), 0);
        assert_eq!(watts_strogatz(2, 2, 0.5, 1).n(), 2);
        assert_eq!(clique_affiliation(1, 5, 4, 1).m(), 0);
    }
}
