//! Synthetic stand-ins for the paper's datasets (Table 2).
//!
//! The paper evaluates on six KONECT graphs plus four synthetic graphs from a
//! measurement-calibrated social-graph generator. Neither is downloadable in
//! this environment, so each dataset is replaced by a generated graph that
//! matches the *structural properties Table 2 reports and §6.1 reasons
//! about*: vertex/edge counts (at a configurable scale), degree skew,
//! clustering regime, and diameter regime. The substitution argument lives in
//! `DESIGN.md` §4.
//!
//! | paper dataset | stand-in model | why |
//! |---|---|---|
//! | synthetic 1k…1000k | Holme–Kim (m=6, p≈0.8) | AD ≈ 11.8, CC ≈ 0.2 as in Table 2 |
//! | wikielections | Holme–Kim (m=14, p≈0.40) | dense, moderately clustered |
//! | slashdot | Barabási–Albert (m=2) | CC ≈ 0.006, reply network has no triangles |
//! | facebook | Holme–Kim (m=13, p≈0.70) | CC ≈ 0.148 friendship graph |
//! | epinions | Holme–Kim (m=6, p≈0.45) | CC ≈ 0.081 trust graph |
//! | dblp | clique affiliation | co-authorship = overlapping cliques, CC ≈ 0.65 |
//! | amazon | Barabási–Albert (m=2) | CC ≈ 0.0004, sparse high-diameter |

use crate::models;
use ebc_graph::traversal::largest_connected_component;
use ebc_graph::{Graph, VertexId};

/// The datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandinKind {
    /// Synthetic social graph with `n` vertices (the 1k/10k/100k/1000k rows).
    Synthetic(usize),
    /// Wikipedia adminship elections (7.1k vertices).
    WikiElections,
    /// Slashdot reply network (51k vertices).
    Slashdot,
    /// Facebook friendship graph (63k vertices).
    Facebook,
    /// Epinions trust network (119k vertices).
    Epinions,
    /// DBLP co-authorship (1.1M vertices).
    Dblp,
    /// Amazon co-ratings (2.1M vertices).
    Amazon,
}

impl StandinKind {
    /// Canonical dataset name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            StandinKind::Synthetic(n) => format!("{}k", n / 1000),
            StandinKind::WikiElections => "wikielections".into(),
            StandinKind::Slashdot => "slashdot".into(),
            StandinKind::Facebook => "facebook".into(),
            StandinKind::Epinions => "epinions".into(),
            StandinKind::Dblp => "dblp".into(),
            StandinKind::Amazon => "amazon".into(),
        }
    }

    /// Paper-scale vertex count (Table 2, LCC column).
    pub fn paper_n(&self) -> usize {
        match self {
            StandinKind::Synthetic(n) => *n,
            StandinKind::WikiElections => 7_066,
            StandinKind::Slashdot => 51_082,
            StandinKind::Facebook => 63_392,
            StandinKind::Epinions => 119_130,
            StandinKind::Dblp => 1_105_171,
            StandinKind::Amazon => 2_146_057,
        }
    }

    /// Paper-scale edge count (Table 2, LCC column).
    pub fn paper_m(&self) -> usize {
        match self {
            StandinKind::Synthetic(n) => match n {
                1_000 => 5_895,
                10_000 => 58_539,
                100_000 => 587_970,
                1_000_000 => 5_896_878,
                other => other * 6, // AD ≈ 11.8
            },
            StandinKind::WikiElections => 100_780,
            StandinKind::Slashdot => 117_377,
            StandinKind::Facebook => 816_885,
            StandinKind::Epinions => 704_571,
            StandinKind::Dblp => 4_835_099,
            StandinKind::Amazon => 5_743_145,
        }
    }
}

/// A generated dataset: the largest connected component of the model output
/// (matching the paper, which restricts every dataset to its LCC), plus the
/// edge arrival order restricted to that component for timestamped replays.
#[derive(Debug, Clone)]
pub struct Standin {
    /// Which dataset this stands in for.
    pub kind: StandinKind,
    /// Dataset name.
    pub name: String,
    /// The graph (largest connected component, dense ids).
    pub graph: Graph,
    /// Edge arrival order (preferential-attachment growth order where the
    /// model defines one; deterministic shuffle otherwise).
    pub arrival_order: Vec<(VertexId, VertexId)>,
}

/// Generate the stand-in for `kind` scaled down by `scale` (vertex count is
/// `paper_n / scale`; edge density is preserved). `scale = 1` reproduces
/// paper-scale sizes — be aware the 1M-vertex rows need several GiB.
pub fn standin(kind: StandinKind, scale: usize, seed: u64) -> Standin {
    let scale = scale.max(1);
    let n = (kind.paper_n() / scale).max(16);
    let m_per = ((kind.paper_m() as f64 / kind.paper_n() as f64).round() as usize).max(1);
    let (raw, order) = match kind {
        StandinKind::Synthetic(_) => models::holme_kim_with_order(n, m_per, 0.80, seed),
        StandinKind::WikiElections => models::holme_kim_with_order(n, m_per, 0.40, seed),
        StandinKind::Slashdot => models::holme_kim_with_order(n, m_per.max(2), 0.0, seed),
        StandinKind::Facebook => models::holme_kim_with_order(n, m_per, 0.70, seed),
        StandinKind::Epinions => models::holme_kim_with_order(n, m_per, 0.45, seed),
        StandinKind::Dblp => {
            // clique affiliation has no canonical growth order: derive one by
            // sorting edges by smaller endpoint (authors arrive over time).
            let g = models::clique_affiliation(n, (n as f64 * 0.9) as usize, 6, seed);
            let mut order = g.sorted_edges();
            order.sort_by_key(|&(u, v)| (u.max(v), u.min(v)));
            (g, order)
        }
        StandinKind::Amazon => models::holme_kim_with_order(n, m_per.max(2), 0.0, seed),
    };
    let (lcc, map) = largest_connected_component(&raw);
    let arrival_order: Vec<(VertexId, VertexId)> = order
        .iter()
        .filter_map(|&(u, v)| match (map[u as usize], map[v as usize]) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        })
        .collect();
    Standin {
        kind,
        name: kind.name(),
        graph: lcc,
        arrival_order,
    }
}

/// The paper's synthetic social graph at `n` vertices (Table 2 rows 1k…1000k).
pub fn synthetic_social(n: usize, seed: u64) -> Standin {
    standin(StandinKind::Synthetic(n), 1, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebc_graph::stats::average_clustering;
    use ebc_graph::traversal::is_connected;

    #[test]
    fn synthetic_1k_matches_table2_regime() {
        let s = synthetic_social(1000, 1);
        assert!(is_connected(&s.graph));
        let ad = s.graph.average_degree();
        assert!(
            (9.0..15.0).contains(&ad),
            "avg degree {ad} should be near 11.8"
        );
        let cc = average_clustering(&s.graph);
        assert!(
            (0.1..0.45).contains(&cc),
            "clustering {cc} should be near 0.2"
        );
    }

    #[test]
    fn scaled_standins_have_proportional_sizes() {
        let fb = standin(StandinKind::Facebook, 64, 2);
        let expected_n = 63_392 / 64;
        assert!(
            (fb.graph.n() as f64) > 0.9 * expected_n as f64,
            "LCC should keep most vertices: {} vs {expected_n}",
            fb.graph.n()
        );
        // density preserved: AD near paper's 2m/n ≈ 25.8
        let ad = fb.graph.average_degree();
        assert!((18.0..32.0).contains(&ad), "facebook avg degree {ad}");
    }

    #[test]
    fn clustering_regimes_ordered_like_paper() {
        // slashdot (CC .006) << epinions (.081) < facebook (.148) << dblp (.648)
        let sd = standin(StandinKind::Slashdot, 128, 3);
        let ep = standin(StandinKind::Epinions, 128, 3);
        let fb = standin(StandinKind::Facebook, 128, 3);
        let db = standin(StandinKind::Dblp, 512, 3);
        let (c_sd, c_ep, c_fb, c_db) = (
            average_clustering(&sd.graph),
            average_clustering(&ep.graph),
            average_clustering(&fb.graph),
            average_clustering(&db.graph),
        );
        assert!(c_sd < c_ep, "slashdot {c_sd} < epinions {c_ep}");
        assert!(c_ep < c_fb, "epinions {c_ep} < facebook {c_fb}");
        assert!(c_fb < c_db, "facebook {c_fb} < dblp {c_db}");
        assert!(c_db > 0.4, "dblp stand-in must be highly clustered: {c_db}");
    }

    #[test]
    fn arrival_order_covers_lcc_edges() {
        let s = standin(StandinKind::WikiElections, 32, 4);
        // growth models: every LCC edge appears exactly once in the order
        assert_eq!(s.arrival_order.len(), s.graph.m());
        let rebuilt = Graph::from_edges(s.arrival_order.iter().copied());
        assert_eq!(rebuilt.sorted_edges(), s.graph.sorted_edges());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(StandinKind::Synthetic(10_000).name(), "10k");
        assert_eq!(StandinKind::Dblp.name(), "dblp");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = standin(StandinKind::Epinions, 256, 9);
        let b = standin(StandinKind::Epinions, 256, 9);
        assert_eq!(a.graph.sorted_edges(), b.graph.sorted_edges());
    }
}
