//! Update-stream generators (the paper's §6 "Graph updates" workloads).

use ebc_graph::{EdgeEvent, EdgeOp, EdgeStream, Graph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's addition workload: `k` random **unconnected** vertex pairs of
/// `g`, to be added one by one. Pairs are distinct within the stream.
pub fn addition_stream(g: &Graph, k: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = g.n();
    let mut out = Vec::with_capacity(k);
    if n < 2 {
        return out;
    }
    let mut picked = std::collections::HashSet::new();
    let max_new = n * (n - 1) / 2 - g.m();
    let k = k.min(max_new);
    let mut guard = 0usize;
    while out.len() < k && guard < 1000 * (k + 1) {
        guard += 1;
        let u = rng.random_range(0..n) as VertexId;
        let v = rng.random_range(0..n) as VertexId;
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if picked.insert(key) {
            out.push(key);
        }
    }
    out
}

/// The paper's removal workload: `k` distinct random **existing** edges.
pub fn removal_stream(g: &Graph, k: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = g.sorted_edges();
    let k = k.min(edges.len());
    // partial Fisher-Yates: draw k distinct edges
    for i in 0..k {
        let j = rng.random_range(i..edges.len());
        edges.swap(i, j);
    }
    edges.truncate(k);
    edges
}

/// Replay a grown graph as a timestamped addition stream with log-normal
/// inter-arrival gaps (heavy-tailed, matching the bursty arrivals visible in
/// the paper's Figure 8): `mean_gap` seconds on average, `sigma` controlling
/// burstiness.
///
/// Returns `(bootstrap_graph, tail_stream)`: the graph with all but the last
/// `tail` edges applied, plus the timestamped final `tail` edges — the exact
/// protocol the paper uses for its online experiments ("for real graphs we
/// replay \[edges\] in order", keeping the last 100 as the live stream).
pub fn replay_growth(
    arrival_order: &[(VertexId, VertexId)],
    n: usize,
    tail: usize,
    mean_gap: f64,
    sigma: f64,
    seed: u64,
) -> (Graph, EdgeStream) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tail = tail.min(arrival_order.len());
    let split = arrival_order.len() - tail;
    let mut g = Graph::with_vertices(n);
    for &(u, v) in &arrival_order[..split] {
        g.ensure_vertex(u.max(v));
        let _ = g.add_edge(u, v);
    }
    // log-normal gaps with E[gap] = mean_gap:  exp(mu + sigma Z), with
    // mu = ln(mean) - sigma^2/2.
    let mu = mean_gap.max(f64::MIN_POSITIVE).ln() - sigma * sigma / 2.0;
    let mut t = 0.0;
    let mut events = Vec::with_capacity(tail);
    for &(u, v) in &arrival_order[split..] {
        let z = standard_normal(&mut rng);
        t += (mu + sigma * z).exp();
        events.push(EdgeEvent {
            time: t,
            op: EdgeOp::Add,
            u,
            v,
        });
    }
    (g, EdgeStream::from_events(events))
}

/// Attach synthetic timestamps (log-normal gaps) to an untimestamped update
/// list.
pub fn with_lognormal_times(
    updates: &[(EdgeOp, VertexId, VertexId)],
    mean_gap: f64,
    sigma: f64,
    seed: u64,
) -> EdgeStream {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mu = mean_gap.max(f64::MIN_POSITIVE).ln() - sigma * sigma / 2.0;
    let mut t = 0.0;
    let events = updates
        .iter()
        .map(|&(op, u, v)| {
            t += (mu + sigma * standard_normal(&mut rng)).exp();
            EdgeEvent { time: t, op, u, v }
        })
        .collect();
    EdgeStream::from_events(events)
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{erdos_renyi_gnm, holme_kim_with_order};

    #[test]
    fn additions_are_absent_distinct_pairs() {
        let g = erdos_renyi_gnm(40, 100, 3);
        let adds = addition_stream(&g, 30, 4);
        assert_eq!(adds.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in adds {
            assert!(u != v);
            assert!(!g.has_edge(u, v), "({u},{v}) already present");
            assert!(seen.insert((u, v)), "duplicate pair in stream");
        }
    }

    #[test]
    fn additions_capped_by_available_pairs() {
        let g = erdos_renyi_gnm(4, 5, 1); // 6 pairs possible, 5 taken
        let adds = addition_stream(&g, 10, 2);
        assert_eq!(adds.len(), 1);
    }

    #[test]
    fn removals_are_distinct_existing_edges() {
        let g = erdos_renyi_gnm(30, 60, 5);
        let rems = removal_stream(&g, 25, 6);
        assert_eq!(rems.len(), 25);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in rems {
            assert!(g.has_edge(u, v));
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn removals_capped_at_m() {
        let g = erdos_renyi_gnm(10, 9, 5);
        assert_eq!(removal_stream(&g, 100, 1).len(), 9);
    }

    #[test]
    fn replay_growth_splits_bootstrap_and_tail() {
        let (full, order) = holme_kim_with_order(80, 3, 0.3, 8);
        let (boot, tail) = replay_growth(&order, full.n(), 10, 2.0, 0.5, 9);
        assert_eq!(tail.len(), 10);
        assert_eq!(boot.m() + 10, full.m());
        // applying the tail reconstructs the full graph
        let mut g = boot.clone();
        tail.apply_all(&mut g).unwrap();
        assert_eq!(g.sorted_edges(), full.sorted_edges());
        // timestamps strictly increasing and positive
        let times: Vec<f64> = tail.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times[0] > 0.0);
    }

    #[test]
    fn lognormal_times_mean_roughly_matches() {
        let updates: Vec<_> = (0..2000u32).map(|i| (EdgeOp::Add, i, i + 1)).collect();
        let s = with_lognormal_times(&updates, 3.0, 0.8, 11);
        let gaps = s.inter_arrival_times();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - 3.0).abs() < 0.5,
            "mean gap {mean} should be close to 3.0"
        );
    }

    #[test]
    fn streams_deterministic_in_seed() {
        let g = erdos_renyi_gnm(30, 60, 5);
        assert_eq!(addition_stream(&g, 10, 7), addition_stream(&g, 10, 7));
        assert_ne!(addition_stream(&g, 10, 7), addition_stream(&g, 10, 8));
        assert_eq!(removal_stream(&g, 10, 7), removal_stream(&g, 10, 7));
    }
}
