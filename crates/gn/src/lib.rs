//! # ebc-gn
//!
//! The paper's use case (§6.3, Figure 9): **Girvan–Newman community
//! detection** powered by incrementally maintained edge betweenness.
//!
//! Girvan–Newman iteratively removes the edge with the highest betweenness;
//! the connected components that emerge form a hierarchical community
//! decomposition. The method was abandoned in practice because each removal
//! classically requires recomputing all-pairs edge betweenness (`O(nm)` per
//! removal). The framework turns each removal into an incremental update of
//! the existing scores, which §6.3 reports as an order-of-magnitude speedup.
//!
//! Two drivers are provided:
//!
//! * [`girvan_newman_incremental`] — our method: bootstrap once, then each
//!   peeled edge is a streamed removal;
//! * [`girvan_newman_recompute`] — the classic baseline recomputing Brandes
//!   after every removal (the denominator of Figure 9's speedup).

use ebc_core::brandes::brandes;
use ebc_core::state::{BetweennessState, Update};
use ebc_graph::traversal::connected_components;
use ebc_graph::{EdgeKey, Graph};

/// One step of the dendrogram: the edge removed and the component count
/// after its removal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeelStep {
    /// The removed edge.
    pub edge: EdgeKey,
    /// Its edge betweenness at removal time.
    pub score: f64,
    /// Number of connected components after the removal.
    pub components: usize,
    /// Modularity of the partition after the removal (computed against the
    /// *original* graph, the standard Girvan–Newman practice).
    pub modularity: f64,
}

/// Result of a (possibly partial) Girvan–Newman run.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Peeling steps in removal order.
    pub steps: Vec<PeelStep>,
    /// The partition with the highest modularity seen: component labels per
    /// vertex, from the step where the maximum was attained.
    pub best_partition: Vec<u32>,
    /// Modularity of `best_partition`.
    pub best_modularity: f64,
}

/// Newman–Girvan modularity `Q = Σ_c (e_c/m − (d_c/2m)²)` of `labels` against
/// the original graph `g0`.
pub fn modularity(g0: &Graph, labels: &[u32]) -> f64 {
    let m = g0.m() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |x| x as usize + 1);
    let mut internal = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    for (key, _) in g0.edges() {
        let (u, v) = key.endpoints();
        let (cu, cv) = (labels[u as usize] as usize, labels[v as usize] as usize);
        degree[cu] += 1.0;
        degree[cv] += 1.0;
        if cu == cv {
            internal[cu] += 1.0;
        }
    }
    (0..k)
        .map(|c| internal[c] / m - (degree[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Run Girvan–Newman with **incremental** betweenness maintenance (our
/// method), peeling at most `max_removals` edges (use `usize::MAX` to peel
/// to an empty graph).
pub fn girvan_newman_incremental(g: &Graph, max_removals: usize) -> Dendrogram {
    let g0 = g.clone();
    let mut state = BetweennessState::new(g);
    let mut steps = Vec::new();
    let mut best_partition: Vec<u32> = vec![0; g.n()];
    let mut best_modularity = f64::NEG_INFINITY;
    for _ in 0..max_removals.min(g.m()) {
        let Some((key, score)) = state.scores().top_edge(state.graph()) else {
            break;
        };
        let (u, v) = key.endpoints();
        state.apply(Update::remove(u, v)).expect("edge exists");
        let (labels, components) = connected_components(state.graph());
        let q = modularity(&g0, &labels);
        if q > best_modularity {
            best_modularity = q;
            best_partition = labels;
        }
        steps.push(PeelStep {
            edge: key,
            score,
            components,
            modularity: q,
        });
    }
    if !best_modularity.is_finite() {
        best_modularity = modularity(&g0, &best_partition);
    }
    Dendrogram {
        steps,
        best_partition,
        best_modularity,
    }
}

/// Run Girvan–Newman with the classic **recompute-from-scratch** baseline:
/// full Brandes after every removal (Figure 9's comparison point).
pub fn girvan_newman_recompute(g: &Graph, max_removals: usize) -> Dendrogram {
    let g0 = g.clone();
    let mut g = g.clone();
    let mut steps = Vec::new();
    let mut best_partition: Vec<u32> = vec![0; g.n()];
    let mut best_modularity = f64::NEG_INFINITY;
    let mut scores = brandes(&g);
    for _ in 0..max_removals.min(g0.m()) {
        let Some((key, score)) = scores.top_edge(&g) else {
            break;
        };
        let (u, v) = key.endpoints();
        g.remove_edge(u, v).expect("edge exists");
        let (labels, components) = connected_components(&g);
        let q = modularity(&g0, &labels);
        if q > best_modularity {
            best_modularity = q;
            best_partition = labels;
        }
        steps.push(PeelStep {
            edge: key,
            score,
            components,
            modularity: q,
        });
        if g.m() == 0 {
            break;
        }
        scores = brandes(&g);
    }
    if !best_modularity.is_finite() {
        best_modularity = modularity(&g0, &best_partition);
    }
    Dendrogram {
        steps,
        best_partition,
        best_modularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by a single bridge — the canonical GN example.
    fn two_triangles() -> Graph {
        let mut g = Graph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(u, v).unwrap();
        }
        g
    }

    #[test]
    fn bridge_is_peeled_first() {
        let g = two_triangles();
        let dg = girvan_newman_incremental(&g, 1);
        assert_eq!(
            dg.steps[0].edge,
            EdgeKey::new(2, 3),
            "bridge has top betweenness"
        );
        assert_eq!(dg.steps[0].components, 2);
    }

    #[test]
    fn best_partition_matches_planted_communities() {
        let g = two_triangles();
        let dg = girvan_newman_incremental(&g, usize::MAX);
        let p = &dg.best_partition;
        assert_eq!(p[0], p[1]);
        assert_eq!(p[1], p[2]);
        assert_eq!(p[3], p[4]);
        assert_eq!(p[4], p[5]);
        assert_ne!(p[0], p[3]);
        assert!(dg.best_modularity > 0.3, "q = {}", dg.best_modularity);
    }

    #[test]
    fn incremental_and_recompute_agree() {
        let g = two_triangles();
        let a = girvan_newman_incremental(&g, usize::MAX);
        let b = girvan_newman_recompute(&g, usize::MAX);
        assert_eq!(a.steps.len(), b.steps.len());
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.edge, sb.edge, "peel order must match");
            assert_eq!(sa.components, sb.components);
            assert!((sa.modularity - sb.modularity).abs() < 1e-9);
        }
    }

    #[test]
    fn full_peel_empties_graph() {
        let g = two_triangles();
        let dg = girvan_newman_incremental(&g, usize::MAX);
        assert_eq!(dg.steps.len(), 7);
        // component count is non-decreasing along the peel
        for w in dg.steps.windows(2) {
            assert!(w[1].components >= w[0].components);
        }
        assert_eq!(dg.steps.last().unwrap().components, 6);
    }

    #[test]
    fn modularity_of_trivial_partitions() {
        let g = two_triangles();
        // everything in one community: Q = 0 by definition
        let one = vec![0u32; 6];
        assert!((modularity(&g, &one) - 0.0).abs() < 1e-12);
        // singletons: negative
        let singletons: Vec<u32> = (0..6).collect();
        assert!(modularity(&g, &singletons) < 0.0);
    }

    #[test]
    fn respects_removal_budget() {
        let g = two_triangles();
        let dg = girvan_newman_incremental(&g, 3);
        assert_eq!(dg.steps.len(), 3);
    }

    #[test]
    fn empty_graph_yields_empty_dendrogram() {
        let g = Graph::with_vertices(4);
        let dg = girvan_newman_incremental(&g, usize::MAX);
        assert!(dg.steps.is_empty());
    }
}
