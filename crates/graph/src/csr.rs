//! Flat CSR adjacency snapshots behind an epoch publish scheme.
//!
//! The incremental kernel (§3 of the paper) spends almost all of its time in
//! truncated BFS sweeps: `for h in neighbors(v)` over frontier vertices. The
//! mutable [`Graph`] stores adjacency as `Vec<Vec<Half>>` — one heap
//! allocation per vertex, so a frontier scan chases a pointer per vertex and
//! the prefetcher never sees a run longer than one degree. [`CsrView`] packs
//! every adjacency segment into a single `halves: Vec<Half>` slab indexed by
//! `offsets: Vec<u32>`, so a BFS level walks monotonically increasing
//! addresses in one allocation.
//!
//! # Epoch protocol
//!
//! [`EpochGraph`] is the single-writer façade: the coordinator owns it,
//! mutates the authoritative [`Graph`] through it, and each mutation is also
//! recorded as a `DeltaOp`. Nothing observable changes until
//! [`EpochGraph::publish`] folds the pending delta into the current
//! [`CsrView`] and bumps the epoch. Readers call [`EpochGraph::pin`] to grab
//! an `Arc<CsrView>`; a pinned view is frozen — `publish` uses
//! [`Arc::make_mut`], so while any reader still holds the old epoch the
//! writer patches a private clone (copy-on-write, O(m)), and once all pins are
//! dropped patches are applied in place (O(delta)).
//!
//! # Bitwise contract
//!
//! The dependency-accumulation phase pulls contributions from DAG successors
//! *in adjacency order*, so floating-point sums are only reproducible if the
//! CSR neighbour order is exactly the `Vec<Vec<Half>>` order — including the
//! `swap_remove` reordering that [`Graph::remove_edge`] performs. Every patch
//! op therefore mirrors the corresponding `Graph` mutation half-for-half:
//! additions append, removals position-scan and swap with the segment tail.
//! The unit tests below assert slice equality (order included) against the
//! mutable graph after randomized histories.

use crate::graph::{EdgeId, Graph, GraphError, Half, VertexId};
use std::sync::Arc;

/// Read-only view of a graph's structure, implemented by both the mutable
/// [`Graph`] and the frozen [`CsrView`].
///
/// The incremental/Brandes kernels are generic over this trait so the same
/// code runs on the legacy `Vec<Vec<Half>>` path (the oracle) and the flat
/// CSR hot path. Neighbour order is part of the contract: both impls must
/// yield identical `&[Half]` slices for the same logical graph state.
pub trait GraphView {
    /// Number of vertices (ids are dense `0..n`).
    fn n(&self) -> usize;

    /// Width of the edge-slot space (max assigned `EdgeId` + 1, including
    /// free slots), i.e. the required length of an `ebc` score array.
    fn edge_slots(&self) -> usize;

    /// Adjacency of `v`, in insertion order as maintained by the mutable
    /// graph's add/remove history.
    fn neighbors(&self, v: VertexId) -> &[Half];

    /// Visit every live edge once as `(a, b, eid)` with `a < b`.
    ///
    /// Visit *order* is implementation-defined (hash-map order for `Graph`,
    /// segment-scan order for `CsrView`); callers must only perform
    /// order-independent per-edge work (e.g. `out.ebc[eid] = c` assignments).
    fn for_each_edge<F: FnMut(VertexId, VertexId, EdgeId)>(&self, f: F);
}

impl GraphView for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn edge_slots(&self) -> usize {
        Graph::edge_slots(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[Half] {
        Graph::neighbors(self, v)
    }

    fn for_each_edge<F: FnMut(VertexId, VertexId, EdgeId)>(&self, mut f: F) {
        for (key, eid) in self.edges() {
            let (a, b) = key.endpoints();
            f(a, b, eid);
        }
    }
}

/// Per-vertex headroom reserved when (re)packing a segment, so a few edge
/// additions after a build patch in place instead of relocating.
#[inline]
fn packed_cap(len: usize) -> usize {
    len + (len >> 3) + 2
}

/// Flat, frozen CSR adjacency snapshot.
///
/// `halves` holds every adjacency segment back to back; vertex `v`'s
/// neighbours live at `halves[offsets[v]..offsets[v] + lens[v]]`, with
/// `caps[v] - lens[v]` slack slots of headroom behind them. Segments whose
/// headroom is exhausted are relocated to the tail (leaving a dead gap that
/// `CsrView::maybe_compact` reclaims once gaps dominate), so `offsets` is
/// not necessarily monotone after heavy churn — but every *scan* is still one
/// contiguous slice per vertex in a single allocation.
#[derive(Debug, Clone)]
pub struct CsrView {
    offsets: Vec<u32>,
    lens: Vec<u32>,
    caps: Vec<u32>,
    halves: Vec<Half>,
    edge_slots: u32,
    /// Dead capacity stranded by relocated segments.
    waste: u32,
    epoch: u64,
}

const FILLER: Half = Half { to: 0, eid: 0 };

impl CsrView {
    /// Pack a fresh snapshot of `g` (epoch 0), preserving adjacency order.
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n);
        let mut lens = Vec::with_capacity(n);
        let mut caps = Vec::with_capacity(n);
        let total: usize = (0..n)
            .map(|v| packed_cap(g.neighbors(v as VertexId).len()))
            .sum();
        let mut halves = Vec::with_capacity(total);
        for v in 0..n {
            let seg = g.neighbors(v as VertexId);
            let cap = packed_cap(seg.len());
            offsets.push(halves.len() as u32);
            lens.push(seg.len() as u32);
            caps.push(cap as u32);
            halves.extend_from_slice(seg);
            halves.resize(halves.len() + (cap - seg.len()), FILLER);
        }
        CsrView {
            offsets,
            lens,
            caps,
            halves,
            edge_slots: g.edge_slots() as u32,
            waste: 0,
            epoch: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len()
    }

    /// Edge-slot width (see [`GraphView::edge_slots`]).
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.edge_slots as usize
    }

    /// Number of live (undirected) edges.
    pub fn m(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum::<usize>() / 2
    }

    /// Epoch this snapshot was published at (0 for a fresh build).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adjacency of `v`, identical (order included) to the mutable graph's
    /// `neighbors(v)` at this epoch.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Half] {
        let off = self.offsets[v as usize] as usize;
        let len = self.lens[v as usize] as usize;
        &self.halves[off..off + len]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.lens[v as usize] as usize
    }

    /// Bytes resident in the slab (diagnostics).
    pub fn resident_bytes(&self) -> usize {
        self.halves.len() * std::mem::size_of::<Half>()
            + (self.offsets.len() + self.lens.len() + self.caps.len()) * 4
    }

    fn push_vertex(&mut self) {
        // Zero-capacity segment; the first edge addition relocates it.
        self.offsets.push(self.halves.len() as u32);
        self.lens.push(0);
        self.caps.push(0);
    }

    /// Append one adjacency half, relocating the segment to the slab tail
    /// when its headroom is exhausted (order preserved).
    fn add_half(&mut self, v: VertexId, h: Half) {
        let vi = v as usize;
        let len = self.lens[vi] as usize;
        if len == self.caps[vi] as usize {
            let new_cap = packed_cap(len).max(2 * len);
            let start = self.offsets[vi] as usize;
            self.waste += self.caps[vi];
            self.offsets[vi] = self.halves.len() as u32;
            self.caps[vi] = new_cap as u32;
            self.halves.extend_from_within(start..start + len);
            self.halves
                .resize(self.halves.len() + (new_cap - len), FILLER);
        }
        let off = self.offsets[vi] as usize;
        self.halves[off + len] = h;
        self.lens[vi] += 1;
    }

    /// Remove the half pointing at `to`, mirroring `Graph::remove_edge`'s
    /// position-scan + `swap_remove` (the tail half takes the vacated slot).
    fn remove_half(&mut self, v: VertexId, to: VertexId) {
        let vi = v as usize;
        let off = self.offsets[vi] as usize;
        let len = self.lens[vi] as usize;
        let seg = &mut self.halves[off..off + len];
        let pos = seg
            .iter()
            .position(|h| h.to == to)
            .expect("CSR delta references a half absent from the segment");
        seg[pos] = seg[len - 1];
        self.lens[vi] -= 1;
    }

    /// Repack the slab when relocation gaps dominate live+headroom capacity.
    fn maybe_compact(&mut self) {
        if (self.waste as usize) <= self.halves.len() / 2 || self.halves.len() < 64 {
            return;
        }
        let total: usize = self.lens.iter().map(|&l| packed_cap(l as usize)).sum();
        let mut packed = Vec::with_capacity(total);
        for vi in 0..self.offsets.len() {
            let off = self.offsets[vi] as usize;
            let len = self.lens[vi] as usize;
            let cap = packed_cap(len);
            self.offsets[vi] = packed.len() as u32;
            self.caps[vi] = cap as u32;
            packed.extend_from_slice(&self.halves[off..off + len]);
            packed.resize(packed.len() + (cap - len), FILLER);
        }
        self.halves = packed;
        self.waste = 0;
    }
}

impl GraphView for CsrView {
    #[inline]
    fn n(&self) -> usize {
        CsrView::n(self)
    }

    #[inline]
    fn edge_slots(&self) -> usize {
        CsrView::edge_slots(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[Half] {
        CsrView::neighbors(self, v)
    }

    fn for_each_edge<F: FnMut(VertexId, VertexId, EdgeId)>(&self, mut f: F) {
        for v in 0..self.offsets.len() as VertexId {
            for h in self.neighbors(v) {
                if v < h.to {
                    f(v, h.to, h.eid);
                }
            }
        }
    }
}

/// One structural mutation buffered between publishes.
#[derive(Debug, Clone, Copy)]
enum DeltaOp {
    AddVertex,
    AddEdge {
        u: VertexId,
        v: VertexId,
        eid: EdgeId,
    },
    RemoveEdge {
        u: VertexId,
        v: VertexId,
    },
}

/// Single-writer graph with epoch-published CSR snapshots.
///
/// Owns the authoritative mutable [`Graph`]; every mutation goes through this
/// façade and is buffered as a delta. [`EpochGraph::publish`] folds the delta
/// into the shared [`CsrView`] and hands back the new pin. See the module
/// docs for the copy-on-write semantics when readers hold old epochs.
#[derive(Debug)]
pub struct EpochGraph {
    graph: Graph,
    current: Arc<CsrView>,
    pending: Vec<DeltaOp>,
    epoch: u64,
}

impl EpochGraph {
    /// Wrap `graph`, building the epoch-0 snapshot from its current state.
    pub fn new(graph: Graph) -> Self {
        let current = Arc::new(CsrView::build(&graph));
        EpochGraph {
            graph,
            current,
            pending: Vec::new(),
            epoch: 0,
        }
    }

    /// The authoritative mutable graph (read-only access).
    ///
    /// This always reflects *all* mutations, including ones not yet
    /// published to the CSR side.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Epoch of the last publish.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pin the current published snapshot. May lag the graph if mutations
    /// are pending; call [`EpochGraph::publish`] first for an up-to-date pin.
    #[inline]
    pub fn pin(&self) -> Arc<CsrView> {
        Arc::clone(&self.current)
    }

    /// Append a fresh vertex (id `n`). Mirrors [`Graph::add_vertex`].
    pub fn add_vertex(&mut self) -> VertexId {
        self.pending.push(DeltaOp::AddVertex);
        self.graph.add_vertex()
    }

    /// Insert edge `(u, v)`. Mirrors [`Graph::add_edge`]; the assigned slot
    /// id is recorded in the delta so the CSR patch reuses it.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        let eid = self.graph.add_edge(u, v)?;
        self.pending.push(DeltaOp::AddEdge { u, v, eid });
        Ok(eid)
    }

    /// Remove edge `(u, v)`, returning its freed slot id. Mirrors
    /// [`Graph::remove_edge`] including the `swap_remove` adjacency reorder.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        let eid = self.graph.remove_edge(u, v)?;
        self.pending.push(DeltaOp::RemoveEdge { u, v });
        Ok(eid)
    }

    /// Fold pending mutations into the published snapshot and return the new
    /// pin. No-op (returns the current pin) when nothing is pending.
    ///
    /// Cost: O(delta) amortized when no reader pins an older epoch, O(m)
    /// copy-on-write when one does — the frozen-epoch guarantee is paid for
    /// by the writer, never by readers.
    pub fn publish(&mut self) -> Arc<CsrView> {
        if self.pending.is_empty() {
            return self.pin();
        }
        self.epoch += 1;
        let view = Arc::make_mut(&mut self.current);
        for op in self.pending.drain(..) {
            match op {
                DeltaOp::AddVertex => view.push_vertex(),
                DeltaOp::AddEdge { u, v, eid } => {
                    view.add_half(u, Half { to: v, eid });
                    view.add_half(v, Half { to: u, eid });
                }
                DeltaOp::RemoveEdge { u, v } => {
                    view.remove_half(u, v);
                    view.remove_half(v, u);
                }
            }
        }
        view.edge_slots = self.graph.edge_slots() as u32;
        view.epoch = self.epoch;
        view.maybe_compact();
        self.pin()
    }

    /// Consume the façade, returning the authoritative graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the equivalence tests are reproducible.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound as u64) as usize
        }
    }

    fn assert_view_matches(view: &CsrView, g: &Graph) {
        assert_eq!(view.n(), g.n(), "vertex count");
        assert_eq!(CsrView::edge_slots(view), g.edge_slots(), "edge slots");
        assert_eq!(view.m(), g.m(), "edge count");
        for v in 0..g.n() as VertexId {
            assert_eq!(
                CsrView::neighbors(view, v),
                g.neighbors(v),
                "adjacency order of v{v} diverged"
            );
        }
        let mut from_view: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
        GraphView::for_each_edge(view, |a, b, e| from_view.push((a, b, e)));
        let mut from_graph: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
        GraphView::for_each_edge(g, |a, b, e| from_graph.push((a, b, e)));
        from_view.sort_unstable();
        from_graph.sort_unstable();
        assert_eq!(from_view, from_graph, "edge sets diverged");
    }

    #[test]
    fn build_matches_graph() {
        let g = Graph::from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let view = CsrView::build(&g);
        assert_view_matches(&view, &g);
        assert_eq!(view.epoch(), 0);
    }

    #[test]
    fn build_after_removals_preserves_swap_remove_order() {
        let mut g = Graph::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]);
        g.remove_edge(0, 2).unwrap();
        // adj[0] is now [1, 4, 3] via swap_remove — order must survive.
        let view = CsrView::build(&g);
        assert_view_matches(&view, &g);
    }

    #[test]
    fn publish_folds_pending_delta() {
        let mut eg = EpochGraph::new(Graph::from_edges([(0, 1), (1, 2)]));
        let v = eg.add_vertex();
        eg.add_edge(v, 0).unwrap();
        eg.remove_edge(1, 2).unwrap();
        eg.add_edge(1, 2).unwrap(); // recycles the freed slot
        let view = eg.publish();
        assert_eq!(view.epoch(), 1);
        assert_view_matches(&view, eg.graph());
        // Publishing with no pending ops returns the same snapshot.
        let again = eg.publish();
        assert_eq!(again.epoch(), 1);
        assert!(Arc::ptr_eq(&view, &again));
    }

    #[test]
    fn pinned_epoch_stays_frozen_across_publishes() {
        let mut eg = EpochGraph::new(Graph::from_edges([(0, 1), (1, 2), (2, 0)]));
        let pinned = eg.publish();
        let before: Vec<Vec<Half>> = (0..pinned.n() as VertexId)
            .map(|v| CsrView::neighbors(&pinned, v).to_vec())
            .collect();
        eg.remove_edge(2, 0).unwrap();
        eg.add_edge(0, 2).unwrap();
        let fresh = eg.publish();
        // The old pin still shows the epoch it was taken at, bit for bit.
        for v in 0..pinned.n() as VertexId {
            assert_eq!(CsrView::neighbors(&pinned, v), &before[v as usize][..]);
        }
        assert!(!Arc::ptr_eq(&pinned, &fresh));
        assert_view_matches(&fresh, eg.graph());
    }

    #[test]
    fn randomized_history_stays_equivalent() {
        let mut rng = Rng(0x9e3779b97f4a7c15);
        let mut eg = EpochGraph::new(Graph::with_vertices(6));
        for round in 0..400 {
            let n = eg.graph().n();
            match rng.below(10) {
                0 => {
                    eg.add_vertex();
                }
                1..=5 => {
                    let u = rng.below(n) as VertexId;
                    let v = rng.below(n) as VertexId;
                    if u != v && !eg.graph().has_edge(u, v) {
                        eg.add_edge(u, v).unwrap();
                    }
                }
                _ => {
                    let edges = eg.graph().sorted_edges();
                    if !edges.is_empty() {
                        let (u, v) = edges[rng.below(edges.len())];
                        eg.remove_edge(u, v).unwrap();
                    }
                }
            }
            // Publish on a stride so several ops batch into one delta fold.
            if round % 3 == 0 {
                let view = eg.publish();
                assert_view_matches(&view, eg.graph());
            }
        }
        let view = eg.publish();
        assert_view_matches(&view, eg.graph());
    }

    #[test]
    fn relocation_and_compaction_preserve_segments() {
        // Grow one hub far past its headroom to force repeated relocation,
        // then churn to trigger compaction.
        let mut eg = EpochGraph::new(Graph::with_vertices(1));
        for _ in 0..128 {
            let v = eg.add_vertex();
            eg.add_edge(0, v).unwrap();
            let view = eg.publish();
            assert_view_matches(&view, eg.graph());
        }
        for v in 1..100 {
            eg.remove_edge(0, v).unwrap();
        }
        for v in 1..100 {
            eg.add_edge(0, v).unwrap();
        }
        let view = eg.publish();
        assert_view_matches(&view, eg.graph());
    }
}
