//! Directed simple graph.
//!
//! The paper's framework "can also work on directed graphs by following
//! outlinks in the search phase and inlinks in the backtracking phase"
//! (§3). This type provides the directed substrate: dense vertex ids, both
//! out- and in-adjacency, and stable edge slots exactly like the undirected
//! [`Graph`](crate::Graph).

use crate::fxhash::FxHashMap;
use crate::graph::{EdgeId, GraphError, Half, VertexId};
use std::fmt;

/// Directed edge key: source in the high half, target in the low half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcKey(pub u64);

impl ArcKey {
    /// Key for the arc `u -> v`.
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        ArcKey(((u as u64) << 32) | v as u64)
    }

    /// The `(from, to)` endpoints.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (
            (self.0 >> 32) as VertexId,
            (self.0 & 0xffff_ffff) as VertexId,
        )
    }
}

impl fmt::Display for ArcKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (u, v) = self.endpoints();
        write!(f, "({u}->{v})")
    }
}

/// A dynamic, directed, simple graph with dense ids and stable arc slots.
#[derive(Clone, Default)]
pub struct DiGraph {
    out_adj: Vec<Vec<Half>>,
    in_adj: Vec<Vec<Half>>,
    index: FxHashMap<ArcKey, EdgeId>,
    slots: Vec<Option<ArcKey>>,
    free: Vec<EdgeId>,
}

impl DiGraph {
    /// Empty directed graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Directed graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            ..Default::default()
        }
    }

    /// Build from arcs, growing the vertex set and skipping duplicates and
    /// self-loops.
    pub fn from_arcs<I: IntoIterator<Item = (VertexId, VertexId)>>(arcs: I) -> Self {
        let mut g = DiGraph::new();
        for (u, v) in arcs {
            if u == v {
                continue;
            }
            g.ensure_vertex(u.max(v));
            let _ = g.add_arc(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of arcs.
    #[inline]
    pub fn m(&self) -> usize {
        self.index.len()
    }

    /// Number of arc slots ever allocated.
    #[inline]
    pub fn arc_slots(&self) -> usize {
        self.slots.len()
    }

    /// Ensure vertices `0..=v` exist.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if (v as usize) >= self.out_adj.len() {
            self.out_adj.resize(v as usize + 1, Vec::new());
            self.in_adj.resize(v as usize + 1, Vec::new());
        }
    }

    /// Add a vertex and return its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        (self.out_adj.len() - 1) as VertexId
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.out_adj.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    /// Add the arc `u -> v`.
    pub fn add_arc(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let key = ArcKey::new(u, v);
        if self.index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let eid = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(key);
                id
            }
            None => {
                self.slots.push(Some(key));
                (self.slots.len() - 1) as EdgeId
            }
        };
        self.index.insert(key, eid);
        self.out_adj[u as usize].push(Half { to: v, eid });
        self.in_adj[v as usize].push(Half { to: u, eid });
        Ok(eid)
    }

    /// Remove the arc `u -> v`.
    pub fn remove_arc(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let key = ArcKey::new(u, v);
        let eid = match self.index.remove(&key) {
            Some(eid) => eid,
            None => return Err(GraphError::MissingEdge(u, v)),
        };
        self.slots[eid as usize] = None;
        self.free.push(eid);
        let pos = self.out_adj[u as usize]
            .iter()
            .position(|h| h.to == v)
            .expect("in sync");
        self.out_adj[u as usize].swap_remove(pos);
        let pos = self.in_adj[v as usize]
            .iter()
            .position(|h| h.to == u)
            .expect("in sync");
        self.in_adj[v as usize].swap_remove(pos);
        Ok(eid)
    }

    /// True if the arc `u -> v` exists.
    #[inline]
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.index.contains_key(&ArcKey::new(u, v))
    }

    /// Out-neighbour halves of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[Half] {
        &self.out_adj[v as usize]
    }

    /// In-neighbour halves of `v` (`Half::to` is the arc's source).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[Half] {
        &self.in_adj[v as usize]
    }

    /// Out-degree.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v as usize].len()
    }

    /// In-degree.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v as usize].len()
    }

    /// Iterator over vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.out_adj.len() as VertexId
    }

    /// Iterator over arcs as `(key, slot)`.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcKey, EdgeId)> + '_ {
        self.index.iter().map(|(k, v)| (*k, *v))
    }

    /// Slot of the arc `u -> v`, if present.
    pub fn arc_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.index.get(&ArcKey::new(u, v)).copied()
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiGraph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_are_directed() {
        let mut g = DiGraph::with_vertices(3);
        g.add_arc(0, 1).unwrap();
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.in_degree(0), 0);
        // antiparallel arc is a distinct edge
        g.add_arc(1, 0).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn remove_updates_both_adjacencies() {
        let mut g = DiGraph::with_vertices(3);
        g.add_arc(0, 1).unwrap();
        g.add_arc(0, 2).unwrap();
        g.remove_arc(0, 1).unwrap();
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(1), 0);
        assert!(g.has_arc(0, 2));
    }

    #[test]
    fn slots_recycled() {
        let mut g = DiGraph::with_vertices(3);
        let e = g.add_arc(0, 1).unwrap();
        g.remove_arc(0, 1).unwrap();
        let e2 = g.add_arc(1, 2).unwrap();
        assert_eq!(e, e2);
        assert_eq!(g.arc_slots(), 1);
    }

    #[test]
    fn errors_match_undirected_semantics() {
        let mut g = DiGraph::with_vertices(2);
        assert_eq!(g.add_arc(0, 0), Err(GraphError::SelfLoop(0)));
        assert_eq!(g.add_arc(0, 9), Err(GraphError::UnknownVertex(9)));
        g.add_arc(0, 1).unwrap();
        assert_eq!(g.add_arc(0, 1), Err(GraphError::DuplicateEdge(0, 1)));
        assert_eq!(g.remove_arc(1, 0), Err(GraphError::MissingEdge(1, 0)));
    }

    #[test]
    fn from_arcs_builder() {
        let g = DiGraph::from_arcs([(0, 1), (1, 2), (2, 0), (0, 1), (1, 1)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn arc_key_display() {
        assert_eq!(ArcKey::new(3, 5).to_string(), "(3->5)");
        assert_eq!(ArcKey::new(3, 5).endpoints(), (3, 5));
    }
}
