//! Minimal Fx-style hasher for integer-keyed maps.
//!
//! The hot maps in this workspace are keyed by `u32` vertex ids or `u64`
//! canonical edge keys. The std SipHash hasher dominates profile time for
//! such keys, so we use the rustc Fx multiply-xor construction (public
//! domain; the same algorithm as the `rustc-hash` crate) rather than pulling
//! in another dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc Fx hasher: fast, non-cryptographic, excellent for small integer
/// keys. Do not use where HashDoS resistance matters.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Sanity: the hasher is not constant.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1024u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert!(seen.len() > 1000, "hash collided too much: {}", seen.len());
    }

    #[test]
    fn write_bytes_matches_chunked_words() {
        let mut a = FxHasher::default();
        a.write(&1234567890123u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(1234567890123);
        assert_eq!(a.finish(), b.finish());
    }
}
