//! Dynamic undirected simple graph with dense `u32` vertex ids and stable
//! edge slots.
//!
//! Every edge is assigned a dense *edge slot* (`EdgeId`) that stays fixed for
//! the lifetime of the edge and is recycled after removal. Edge betweenness
//! scores can therefore be kept in a flat `Vec<f64>` indexed by slot instead
//! of a hash map — the dependency-accumulation inner loop touches one edge
//! score per scanned neighbour, so this is the hottest index in the whole
//! framework.

use crate::fxhash::FxHashMap;
use std::fmt;

/// Dense vertex identifier. The framework's per-source state (`BD[s]`) is a
/// set of flat arrays indexed by this id, mirroring the paper's columnar
/// on-disk layout (§5.1) where the vertex id is implied by array position.
pub type VertexId = u32;

/// Dense, recycled edge-slot identifier (index into score arrays).
pub type EdgeId = u32;

/// Canonical undirected edge key: the two endpoints packed into a `u64` with
/// the smaller id in the high half. Order-insensitive identity of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeKey(pub u64);

impl EdgeKey {
    /// Build the canonical key for the edge `{u, v}` (order-insensitive).
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        EdgeKey(((lo as u64) << 32) | hi as u64)
    }

    /// The endpoints `(min, max)` of this edge.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (
            (self.0 >> 32) as VertexId,
            (self.0 & 0xffff_ffff) as VertexId,
        )
    }
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (u, v) = self.endpoints();
        write!(f, "({u},{v})")
    }
}

/// One directed half of an undirected edge as stored in an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Half {
    /// Target vertex.
    pub to: VertexId,
    /// Edge slot shared by both halves.
    pub eid: EdgeId,
}

/// Errors raised by graph mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// Self-loops carry no shortest paths and are rejected (σ(s,t|e)=0 for
    /// any loop, so they never affect betweenness).
    SelfLoop(VertexId),
    /// An endpoint is not a vertex of the graph.
    UnknownVertex(VertexId),
    /// The edge to remove does not exist.
    MissingEdge(VertexId, VertexId),
    /// The edge to add already exists (simple graph).
    DuplicateEdge(VertexId, VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v}"),
            GraphError::UnknownVertex(v) => write!(f, "vertex {v} does not exist"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u},{v}) does not exist"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u},{v}) already exists"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A dynamic, undirected, simple graph.
///
/// Vertices are dense `0..n` indices; adding a vertex extends the range.
/// Adjacency lists preserve insertion order except after removals, which use
/// `swap_remove` (O(deg) lookup, O(1) splice). Edge existence is tracked in a
/// hash map from canonical [`EdgeKey`]s to slots, so streaming updates
/// validate in O(1).
#[derive(Clone, Default)]
pub struct Graph {
    pub(crate) adj: Vec<Vec<Half>>,
    pub(crate) index: FxHashMap<EdgeKey, EdgeId>,
    /// Slot -> key; `None` for free slots.
    pub(crate) slots: Vec<Option<EdgeKey>>,
    pub(crate) free: Vec<EdgeId>,
}

impl Graph {
    /// Empty graph with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Graph with `n` isolated vertices `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            ..Default::default()
        }
    }

    /// Build from an iterator of edges, growing the vertex set on demand and
    /// skipping duplicates and self-loops (convenient for generated input).
    pub fn from_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(edges: I) -> Self {
        let mut g = Graph::new();
        for (u, v) in edges {
            if u == v {
                continue;
            }
            g.ensure_vertex(u.max(v));
            let _ = g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.index.len()
    }

    /// Number of edge slots ever allocated (score arrays must be this long).
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.slots.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add a new isolated vertex and return its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as VertexId
    }

    /// Ensure vertices `0..=v` exist (used when ingesting edge lists).
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if (v as usize) >= self.adj.len() {
            self.adj.resize(v as usize + 1, Vec::new());
        }
    }

    #[inline]
    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(v))
        }
    }

    /// Add the undirected edge `{u, v}`; returns its slot.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let key = EdgeKey::new(u, v);
        if self.index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let eid = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(key);
                id
            }
            None => {
                self.slots.push(Some(key));
                (self.slots.len() - 1) as EdgeId
            }
        };
        self.index.insert(key, eid);
        self.adj[u as usize].push(Half { to: v, eid });
        self.adj[v as usize].push(Half { to: u, eid });
        Ok(eid)
    }

    /// Remove the undirected edge `{u, v}`; returns the freed slot.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let key = EdgeKey::new(u, v);
        let eid = match self.index.remove(&key) {
            Some(eid) => eid,
            None => return Err(GraphError::MissingEdge(u, v)),
        };
        self.slots[eid as usize] = None;
        self.free.push(eid);
        let pos = self.adj[u as usize]
            .iter()
            .position(|h| h.to == v)
            .expect("adjacency in sync");
        self.adj[u as usize].swap_remove(pos);
        let pos = self.adj[v as usize]
            .iter()
            .position(|h| h.to == u)
            .expect("adjacency in sync");
        self.adj[v as usize].swap_remove(pos);
        Ok(eid)
    }

    /// True if the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.index.contains_key(&EdgeKey::new(u, v))
    }

    /// Slot of the edge `{u, v}`, if present.
    #[inline]
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.index.get(&EdgeKey::new(u, v)).copied()
    }

    /// Key stored in `slot`, if the slot is live.
    #[inline]
    pub fn edge_key(&self, slot: EdgeId) -> Option<EdgeKey> {
        self.slots.get(slot as usize).copied().flatten()
    }

    /// Neighbour halves of `v` (arbitrary but deterministic order).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Half] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.adj.len() as VertexId
    }

    /// Iterator over live edges as `(key, slot)` pairs (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = (EdgeKey, EdgeId)> + '_ {
        self.index.iter().map(|(k, v)| (*k, *v))
    }

    /// All edges as canonical `(min, max)` pairs, sorted — deterministic order
    /// for reproducible experiments and tests.
    pub fn sorted_edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut es: Vec<_> = self.index.keys().map(|k| k.endpoints()).collect();
        es.sort_unstable();
        es
    }

    /// Average degree `2m/n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_is_canonical() {
        assert_eq!(EdgeKey::new(3, 7), EdgeKey::new(7, 3));
        assert_eq!(EdgeKey::new(3, 7).endpoints(), (3, 7));
        assert_eq!(EdgeKey::new(7, 3).endpoints(), (3, 7));
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        g.remove_edge(0, 1).unwrap();
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.neighbors(1)[0].to, 2);
    }

    #[test]
    fn edge_slots_are_recycled() {
        let mut g = Graph::with_vertices(4);
        let e01 = g.add_edge(0, 1).unwrap();
        let e12 = g.add_edge(1, 2).unwrap();
        assert_ne!(e01, e12);
        g.remove_edge(0, 1).unwrap();
        let e23 = g.add_edge(2, 3).unwrap();
        assert_eq!(e23, e01, "freed slot should be reused");
        assert_eq!(g.edge_slots(), 2);
        assert_eq!(g.edge_key(e23), Some(EdgeKey::new(2, 3)));
    }

    #[test]
    fn edge_id_lookup() {
        let mut g = Graph::with_vertices(3);
        let e = g.add_edge(0, 2).unwrap();
        assert_eq!(g.edge_id(2, 0), Some(e));
        assert_eq!(g.edge_id(0, 1), None);
        assert_eq!(g.edge_key(e), Some(EdgeKey::new(0, 2)));
        g.remove_edge(0, 2).unwrap();
        assert_eq!(g.edge_key(e), None);
    }

    #[test]
    fn halves_share_slot() {
        let mut g = Graph::with_vertices(2);
        let e = g.add_edge(0, 1).unwrap();
        assert_eq!(g.neighbors(0)[0].eid, e);
        assert_eq!(g.neighbors(1)[0].eid, e);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = Graph::with_vertices(2);
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge(1, 0)));
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::with_vertices(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut g = Graph::with_vertices(2);
        assert_eq!(g.add_edge(0, 5), Err(GraphError::UnknownVertex(5)));
        assert_eq!(g.remove_edge(0, 5), Err(GraphError::UnknownVertex(5)));
    }

    #[test]
    fn missing_edge_removal_rejected() {
        let mut g = Graph::with_vertices(3);
        assert_eq!(g.remove_edge(0, 1), Err(GraphError::MissingEdge(0, 1)));
    }

    #[test]
    fn ensure_vertex_grows() {
        let mut g = Graph::new();
        g.ensure_vertex(9);
        assert_eq!(g.n(), 10);
        g.ensure_vertex(3); // no shrink
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn add_vertex_returns_fresh_id() {
        let mut g = Graph::with_vertices(2);
        assert_eq!(g.add_vertex(), 2);
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn from_edges_builder() {
        let g = Graph::from_edges([(0, 1), (1, 2), (1, 1), (2, 1), (4, 0)]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 3); // self-loop and duplicate skipped
        assert!(g.has_edge(4, 0));
    }

    #[test]
    fn sorted_edges_deterministic() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(2, 3).unwrap();
        g.add_edge(1, 0).unwrap();
        assert_eq!(g.sorted_edges(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn average_degree() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert_eq!(Graph::new().average_degree(), 0.0);
    }
}
