//! Plain-text edge-list I/O.
//!
//! Formats supported, one edge per line, `#`-prefixed comments ignored:
//!
//! * `u v` — untimestamped edge
//! * `u v t` — edge with arrival timestamp (KONECT-style), producing an
//!   [`EdgeStream`] ordered by `t`
//!
//! All readers are buffered per the workspace I/O guidelines.

use crate::graph::{Graph, VertexId};
use crate::stream::{EdgeEvent, EdgeStream};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an untimestamped edge list into a graph. Duplicate edges and
/// self-loops are silently skipped (KONECT dumps contain both).
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut g = Graph::new();
    let buf = BufReader::new(reader);
    let mut line_buf = String::new();
    let mut r = buf;
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        if r.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (
                parse_vertex(a, lineno, line)?,
                parse_vertex(b, lineno, line)?,
            ),
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: line.to_string(),
                })
            }
        };
        if u == v {
            continue;
        }
        g.ensure_vertex(u.max(v));
        let _ = g.add_edge(u, v); // ignore duplicates
    }
    Ok(g)
}

/// Parse a timestamped edge list (`u v t` per line) into an addition stream.
pub fn read_timestamped_edge_list<R: Read>(reader: R) -> Result<EdgeStream, IoError> {
    let mut events = Vec::new();
    let mut r = BufReader::new(reader);
    let mut line_buf = String::new();
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        if r.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        match (it.next(), it.next(), it.next()) {
            (Some(a), Some(b), Some(t)) => {
                let u = parse_vertex(a, lineno, line)?;
                let v = parse_vertex(b, lineno, line)?;
                let time: f64 = t.parse().map_err(|_| IoError::Parse {
                    line: lineno,
                    content: line.to_string(),
                })?;
                if u != v {
                    events.push(EdgeEvent::add(time, u, v));
                }
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: line.to_string(),
                })
            }
        }
    }
    Ok(EdgeStream::from_events(events))
}

fn parse_vertex(tok: &str, line: usize, content: &str) -> Result<VertexId, IoError> {
    tok.parse().map_err(|_| IoError::Parse {
        line,
        content: content.to_string(),
    })
}

/// Write a graph as a sorted `u v` edge list (deterministic output).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# n={} m={}", g.n(), g.m())?;
    for (u, v) in g.sorted_edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Load a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Save a graph to a file path.
pub fn save_graph<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        let text = "# comment\n0 1\n1 2\n\n% other comment\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn parse_skips_duplicates_and_loops() {
        let text = "0 1\n1 0\n1 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.n(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("0\n".as_bytes()).is_err());
    }

    #[test]
    fn timestamped_roundtrip() {
        let text = "0 1 10.5\n1 2 3.25\n";
        let s = read_timestamped_edge_list(text.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        // sorted by time
        assert_eq!(s.events()[0].time, 3.25);
        assert_eq!(s.events()[1].u, 0);
    }

    #[test]
    fn write_then_read() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 3).unwrap();
        g.add_edge(1, 2).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.sorted_edges(), g.sorted_edges());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ebc_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1).unwrap();
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.m(), 1);
        std::fs::remove_file(path).ok();
    }
}
