//! # ebc-graph
//!
//! Dynamic undirected graph substrate used by the streaming betweenness
//! centrality framework (Kourtellis et al., ICDE 2016).
//!
//! The paper's reference implementation relies on the JUNG Java library for
//! "basic graph operations and maintenance" (§6). This crate is the Rust
//! equivalent, purpose-built for the access patterns of the framework:
//!
//! * vertex ids are dense `u32` indices, so per-source state can live in flat
//!   arrays (the paper's `BD[s]` columnar layout requires this);
//! * adjacency lists support O(deg) edge insertion/removal and cache-friendly
//!   in-order neighbour scans (the predecessor-free backtracking phase scans
//!   *all* neighbours of a vertex and filters by level, §3);
//! * edges have a canonical 64-bit key so edge betweenness scores can be kept
//!   in a flat hash map;
//! * graph statistics needed to reproduce Table 2 (average degree, clustering
//!   coefficient, effective diameter, largest connected component) are
//!   implemented here;
//! * timestamped edge streams ([`stream::EdgeStream`]) model the paper's
//!   evolving-graph input (§5.3, Figure 8);
//! * checksummed structural [`snapshot`]s persist slot assignment, free-list
//!   order and adjacency order, so a durable session restart continues the
//!   exact graph state (not merely the edge set).

pub mod csr;
pub mod digraph;
pub mod fxhash;
pub mod graph;
pub mod io;
pub mod snapshot;
pub mod stats;
pub mod stream;
pub mod traversal;

pub use csr::{CsrView, EpochGraph, GraphView};
pub use digraph::{ArcKey, DiGraph};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use graph::{EdgeId, EdgeKey, Graph, GraphError, Half, VertexId};
pub use snapshot::SnapshotError;
pub use stats::GraphStats;
pub use stream::{EdgeEvent, EdgeOp, EdgeStream};

/// Distance sentinel for unreachable vertices.
///
/// The framework stores distances in fixed-width unsigned integers; `u32::MAX`
/// marks "not reachable from this source" both in memory and on disk.
pub const UNREACHABLE: u32 = u32::MAX;
