//! Structural graph snapshots: byte-exact persistence of the *whole*
//! dynamic-graph state, not just the edge set.
//!
//! The plain edge-list format of [`crate::io`] loses three things a
//! restarted betweenness session cannot live without:
//!
//! * **edge-slot assignment** — edge scores live in flat arrays indexed by
//!   [`EdgeId`], and slots are recycled after removals, so the slot a live
//!   edge occupies depends on the full mutation history;
//! * **free-slot stack order** — the next added edge pops the most recently
//!   freed slot; restoring the stack in a different order would assign
//!   future edges different ids than the original process would have;
//! * **adjacency order** — BFS and the update kernel accumulate `f64`
//!   dependencies in neighbour-list order (swap-remove scrambled, not
//!   sorted), so two graphs with identical edge sets but different list
//!   orders produce last-bit-different scores.
//!
//! A snapshot serializes all three, checksummed, so a reloaded graph is a
//! *bitwise continuation* of the saved one: every future update applies to
//! the same slots, walks neighbours in the same order, and rounds the same
//! way. This is the graph half of a durable session manifest (the `BD[·]`
//! records are the store's half).
//!
//! Format (all integers little-endian): magic `EBCGSNP1`, `n: u64`,
//! `slot_count: u64`, one `u64` per slot (the packed [`EdgeKey`], or
//! `u64::MAX` for a free slot), `free_len: u64` + one `u32` per free-stack
//! entry (bottom to top), then per vertex a `u32` degree + `(to: u32,
//! eid: u32)` halves in list order, and a closing FNV-1a-64 checksum of
//! everything before it.

use crate::graph::{EdgeId, EdgeKey, Graph, Half};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EBCGSNP1";
/// Marker for a free slot in the serialized slot table.
const FREE_SLOT: u64 = u64::MAX;

/// Errors from snapshot encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not a valid snapshot (bad magic, truncation, checksum
    /// mismatch, or internally inconsistent structure).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// 64-bit FNV-1a — the checksum sealing structural snapshots. Also the
/// canonical implementation the store layer re-exports for its journals,
/// shard manifests, and (via the facade) session manifests, so every layer
/// agrees on the same function.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated snapshot"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

impl Graph {
    /// Serialize the full structural state (see the module docs) into bytes.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 12 * self.slots.len() + 8 * self.n());
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.n() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        for slot in &self.slots {
            let packed = match slot {
                Some(key) => key.0,
                None => FREE_SLOT,
            };
            buf.extend_from_slice(&packed.to_le_bytes());
        }
        buf.extend_from_slice(&(self.free.len() as u64).to_le_bytes());
        for &eid in &self.free {
            buf.extend_from_slice(&eid.to_le_bytes());
        }
        for halves in &self.adj {
            buf.extend_from_slice(&(halves.len() as u32).to_le_bytes());
            for h in halves {
                buf.extend_from_slice(&h.to.to_le_bytes());
                buf.extend_from_slice(&h.eid.to_le_bytes());
            }
        }
        let ck = fnv1a64(&buf);
        buf.extend_from_slice(&ck.to_le_bytes());
        buf
    }

    /// Rebuild a graph from [`Graph::snapshot_bytes`] output, validating the
    /// checksum and full structural consistency (slot table, free stack and
    /// adjacency lists must agree). The result is a bitwise continuation of
    /// the snapshotted graph: identical future slot assignment and
    /// neighbour iteration order.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad snapshot magic"));
        }
        let (body, ck_bytes) = bytes.split_at(bytes.len() - 8);
        let ck = u64::from_le_bytes(ck_bytes.try_into().expect("8"));
        if ck != fnv1a64(body) {
            return Err(corrupt("snapshot checksum mismatch"));
        }
        let mut cur = Cursor {
            buf: body,
            pos: MAGIC.len(),
        };
        let n = cur.u64()? as usize;
        let slot_count = cur.u64()? as usize;
        let mut slots: Vec<Option<EdgeKey>> = Vec::with_capacity(slot_count);
        let mut index = crate::fxhash::FxHashMap::default();
        for eid in 0..slot_count {
            let packed = cur.u64()?;
            if packed == FREE_SLOT {
                slots.push(None);
                continue;
            }
            let key = EdgeKey(packed);
            let (u, v) = key.endpoints();
            if u == v || (v as usize) >= n {
                return Err(corrupt(format!("slot {eid} holds invalid edge {key}")));
            }
            if index.insert(key, eid as EdgeId).is_some() {
                return Err(corrupt(format!("edge {key} occupies two slots")));
            }
            slots.push(Some(key));
        }
        let free_len = cur.u64()? as usize;
        let mut free = Vec::with_capacity(free_len);
        let mut freed = vec![false; slot_count];
        for _ in 0..free_len {
            let eid = cur.u32()?;
            let slot = slots
                .get(eid as usize)
                .ok_or_else(|| corrupt(format!("free stack names slot {eid} of {slot_count}")))?;
            if slot.is_some() || std::mem::replace(&mut freed[eid as usize], true) {
                return Err(corrupt(format!(
                    "free stack entry {eid} is not a free slot"
                )));
            }
            free.push(eid);
        }
        if free.len() != slot_count - index.len() {
            return Err(corrupt("free stack does not cover the free slots"));
        }
        let mut adj: Vec<Vec<Half>> = Vec::with_capacity(n);
        let mut half_counts = vec![0u32; slot_count];
        for u in 0..n as u32 {
            let deg = cur.u32()? as usize;
            let mut halves = Vec::with_capacity(deg);
            for _ in 0..deg {
                let to = cur.u32()?;
                let eid = cur.u32()?;
                let expected =
                    slots.get(eid as usize).copied().flatten().ok_or_else(|| {
                        corrupt(format!("adjacency of {u} names dead slot {eid}"))
                    })?;
                if expected != EdgeKey::new(u, to) {
                    return Err(corrupt(format!(
                        "adjacency of {u} maps slot {eid} to {to}, slot holds {expected}"
                    )));
                }
                half_counts[eid as usize] += 1;
                halves.push(Half { to, eid });
            }
            adj.push(halves);
        }
        if cur.pos != body.len() {
            return Err(corrupt("trailing bytes after adjacency lists"));
        }
        for (eid, slot) in slots.iter().enumerate() {
            let want = if slot.is_some() { 2 } else { 0 };
            if half_counts[eid] != want {
                return Err(corrupt(format!(
                    "slot {eid} appears in {} adjacency halves, expected {want}",
                    half_counts[eid]
                )));
            }
        }
        Ok(Graph {
            adj,
            index,
            slots,
            free,
        })
    }

    /// Write a snapshot to `writer`.
    pub fn write_snapshot<W: Write>(&self, mut writer: W) -> Result<(), SnapshotError> {
        writer.write_all(&self.snapshot_bytes())?;
        Ok(())
    }

    /// Read a snapshot from `reader` (consumes to EOF).
    pub fn read_snapshot<R: Read>(mut reader: R) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Self::from_snapshot_bytes(&bytes)
    }

    /// Save a snapshot to `path` atomically (temp file + rename).
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.snapshot_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a snapshot from `path`.
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&std::fs::read(path)?)
    }

    /// True when `other` is structurally identical: same adjacency lists in
    /// the same order, same slot table, same free stack — the equality a
    /// snapshot round-trip guarantees (stronger than equal edge sets).
    pub fn structural_eq(&self, other: &Graph) -> bool {
        self.adj == other.adj && self.slots == other.slots && self.free == other.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph with non-trivial history: removals recycled slots and
    /// swap-remove scrambled adjacency order.
    fn scrambled() -> Graph {
        let mut g = Graph::with_vertices(6);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (4, 5)] {
            g.add_edge(u, v).unwrap();
        }
        g.remove_edge(0, 2).unwrap();
        g.remove_edge(3, 4).unwrap();
        g.add_edge(1, 5).unwrap(); // reuses a freed slot
        g
    }

    #[test]
    fn roundtrip_is_structural_identity() {
        let g = scrambled();
        let g2 = Graph::from_snapshot_bytes(&g.snapshot_bytes()).unwrap();
        assert!(g.structural_eq(&g2));
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.edge_slots(), g2.edge_slots());
        for u in g.vertices() {
            assert_eq!(g.neighbors(u), g2.neighbors(u), "adjacency order of {u}");
        }
    }

    #[test]
    fn restored_graph_continues_slot_recycling_identically() {
        let mut a = scrambled();
        let mut b = Graph::from_snapshot_bytes(&a.snapshot_bytes()).unwrap();
        // identical futures: removals free the same slots, additions pop
        // the same recycled ids
        assert_eq!(a.remove_edge(0, 1).unwrap(), b.remove_edge(0, 1).unwrap());
        assert_eq!(a.add_edge(2, 5).unwrap(), b.add_edge(2, 5).unwrap());
        assert_eq!(a.add_edge(0, 4).unwrap(), b.add_edge(0, 4).unwrap());
        assert!(a.structural_eq(&b));
    }

    #[test]
    fn empty_and_isolated_graphs_roundtrip() {
        for g in [Graph::new(), Graph::with_vertices(5)] {
            let g2 = Graph::from_snapshot_bytes(&g.snapshot_bytes()).unwrap();
            assert!(g.structural_eq(&g2));
        }
    }

    #[test]
    fn corruption_detected() {
        let g = scrambled();
        let good = g.snapshot_bytes();
        // flipped byte anywhere fails the checksum
        let mut bad = good.clone();
        bad[MAGIC.len() + 3] ^= 0x40;
        assert!(matches!(
            Graph::from_snapshot_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        // truncation
        assert!(Graph::from_snapshot_bytes(&good[..good.len() - 9]).is_err());
        // bad magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Graph::from_snapshot_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn inconsistent_structures_rejected() {
        // a snapshot whose free stack omits a free slot: build by editing a
        // valid graph's internals through a crafted byte stream is fiddly;
        // instead corrupt a clone's fields directly and serialize
        let mut g = scrambled();
        g.free.clear(); // free slots exist but the stack says none
        let bytes = g.snapshot_bytes();
        assert!(matches!(
            Graph::from_snapshot_bytes(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ebc_graph_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{}.snap", std::process::id()));
        let g = scrambled();
        g.save_snapshot(&path).unwrap();
        let g2 = Graph::load_snapshot(&path).unwrap();
        assert!(g.structural_eq(&g2));
        std::fs::remove_file(path).ok();
    }
}
