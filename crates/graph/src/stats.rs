//! Graph statistics used by Table 2 of the paper: average degree, clustering
//! coefficient, and effective diameter.

use crate::graph::{Graph, VertexId};
use crate::traversal::distance_histogram;

/// Summary statistics for a graph, matching the columns of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Average degree `2m/n` (paper column "AD").
    pub avg_degree: f64,
    /// Average local clustering coefficient (paper column "CC").
    pub clustering_coefficient: f64,
    /// 90th-percentile effective diameter (paper column "ED"), estimated from
    /// BFS over a sample of sources with linear interpolation.
    pub effective_diameter: f64,
}

impl GraphStats {
    /// Compute stats using at most `diameter_samples` BFS sources (pass
    /// `usize::MAX` for an exact computation on small graphs).
    pub fn compute(g: &Graph, diameter_samples: usize) -> Self {
        GraphStats {
            n: g.n(),
            m: g.m(),
            avg_degree: g.average_degree(),
            clustering_coefficient: average_clustering(g),
            effective_diameter: effective_diameter(g, diameter_samples),
        }
    }
}

/// Local clustering coefficient of a single vertex: the fraction of pairs of
/// neighbours that are themselves connected (0 for degree < 2).
pub fn local_clustering(g: &Graph, v: VertexId) -> f64 {
    let nbrs = g.neighbors(v);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(nbrs[i].to, nbrs[j].to) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average local clustering coefficient over all vertices (Watts–Strogatz
/// definition, the one KONECT reports in the paper's Table 2).
pub fn average_clustering(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    let total: f64 = g.vertices().map(|v| local_clustering(g, v)).sum();
    total / g.n() as f64
}

/// 90th-percentile effective diameter with linear interpolation, estimated
/// from BFS distance histograms of up to `samples` evenly spaced sources.
///
/// For a connected graph and `samples >= n` this is exact. The paper's ED
/// column comes from KONECT, which uses the same percentile definition.
pub fn effective_diameter(g: &Graph, samples: usize) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    let step = (g.n() / samples.min(g.n()).max(1)).max(1);
    let mut hist: Vec<u64> = Vec::new();
    let mut sampled = 0usize;
    for v in (0..g.n()).step_by(step) {
        let h = distance_histogram(g, v as VertexId);
        if h.len() > hist.len() {
            hist.resize(h.len(), 0);
        }
        for (d, c) in h.iter().enumerate() {
            hist[d] += *c as u64;
        }
        sampled += 1;
        if sampled >= samples {
            break;
        }
    }
    // hist[0] counts the sources themselves; effective diameter considers
    // distances between distinct pairs, so drop distance 0.
    if hist.len() <= 1 {
        return 0.0;
    }
    let total: u64 = hist[1..].iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = 0.9 * total as f64;
    let mut cum = 0u64;
    for (d, &c) in hist.iter().enumerate().skip(1) {
        let prev = cum as f64;
        cum += c;
        if cum as f64 >= target {
            // Interpolate within level d: fraction of the level needed.
            let need = target - prev;
            let frac = if c == 0 { 0.0 } else { need / c as f64 };
            return (d - 1) as f64 + frac;
        }
    }
    (hist.len() - 1) as f64
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Degree assortativity (Pearson correlation of endpoint degrees over all
/// edges). Social graphs are typically assortative (> 0), technological and
/// preferential-attachment graphs disassortative (< 0) — one of the §6.1
/// structural axes. Returns 0 for graphs without two edges or with constant
/// degrees.
pub fn degree_assortativity(g: &Graph) -> f64 {
    if g.m() < 2 {
        return 0.0;
    }
    // Pearson over the multiset of ordered edge endpoint pairs (each edge
    // contributes both (du,dv) and (dv,du), making the estimator symmetric).
    let mut sx = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut cnt = 0.0;
    for (key, _) in g.edges() {
        let (u, v) = key.endpoints();
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        for (a, b) in [(du, dv), (dv, du)] {
            sx += a;
            sxx += a * a;
            sxy += a * b;
            cnt += 1.0;
        }
    }
    let mean = sx / cnt;
    let var = sxx / cnt - mean * mean;
    if var <= 0.0 {
        return 0.0;
    }
    (sxy / cnt - mean * mean) / var
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn local_clustering_values() {
        let g = triangle_plus_tail();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, 1) - 1.0).abs() < 1e-12);
        // vertex 2 has neighbours {0,1,3}; only (0,1) connected => 1/3
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn average_clustering_value() {
        let g = triangle_plus_tail();
        let expect = (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0;
        assert!((average_clustering(&g) - expect).abs() < 1e-12);
    }

    #[test]
    fn clique_clustering_is_one() {
        let mut g = Graph::with_vertices(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j).unwrap();
            }
        }
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effective_diameter_clique_is_under_one() {
        let mut g = Graph::with_vertices(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j).unwrap();
            }
        }
        let ed = effective_diameter(&g, usize::MAX);
        assert!(ed <= 1.0 && ed > 0.0, "ed = {ed}");
    }

    #[test]
    fn effective_diameter_path_reasonable() {
        let mut g = Graph::with_vertices(11);
        for i in 0..10u32 {
            g.add_edge(i, i + 1).unwrap();
        }
        let ed = effective_diameter(&g, usize::MAX);
        // longest distance is 10; the 90th percentile must be below that but
        // well above half of it.
        assert!(ed > 5.0 && ed <= 10.0, "ed = {ed}");
    }

    #[test]
    fn stats_bundle() {
        let g = triangle_plus_tail();
        let s = GraphStats::compute(&g, usize::MAX);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 4);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert!(s.effective_diameter > 0.0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&Graph::new(), 8);
        assert_eq!(s.n, 0);
        assert_eq!(s.effective_diameter, 0.0);
        assert_eq!(s.clustering_coefficient, 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle_plus_tail();
        // degrees: 2, 2, 3, 1
        assert_eq!(degree_histogram(&g), vec![0, 1, 2, 1]);
        assert!(degree_histogram(&Graph::new()).is_empty());
    }

    #[test]
    fn star_is_disassortative() {
        let mut g = Graph::with_vertices(6);
        for leaf in 1..6 {
            g.add_edge(0, leaf).unwrap();
        }
        assert!(
            degree_assortativity(&g) < -0.9,
            "hub-leaf edges anti-correlate degrees: {}",
            degree_assortativity(&g)
        );
    }

    #[test]
    fn regular_graph_assortativity_is_degenerate_zero() {
        let mut g = Graph::with_vertices(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4).unwrap();
        }
        assert_eq!(degree_assortativity(&g), 0.0); // constant degree => var 0
    }

    #[test]
    fn two_matched_stars_are_assortative_relative_to_star() {
        // edges between same-degree endpoints push assortativity up
        let mut g = Graph::with_vertices(8);
        // two hubs with 2 leaves each, hubs joined
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(4, 5).unwrap();
        g.add_edge(4, 6).unwrap();
        g.add_edge(0, 4).unwrap();
        let a = degree_assortativity(&g);
        let mut star = Graph::with_vertices(6);
        for leaf in 1..6 {
            star.add_edge(0, leaf).unwrap();
        }
        assert!(a > degree_assortativity(&star));
    }
}
