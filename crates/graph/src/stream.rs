//! Timestamped edge-update streams: the paper's evolving-graph input model.
//!
//! The framework (Figure 1) consumes "a stream of edges `ES` to be
//! added/removed ... seen as a stream of updates, i.e. one by one" (§3). For
//! the online experiments (§5.3, Figure 8, Table 5) every update carries an
//! arrival timestamp, and the system is *online* when the time to refresh
//! betweenness is below the inter-arrival gap.

use crate::graph::{Graph, GraphError, VertexId};
use serde::{Deserialize, Serialize};

/// Kind of graph update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeOp {
    /// Insert a (possibly component-merging) edge; may reference a brand-new
    /// vertex id one past the current maximum.
    Add,
    /// Delete an existing edge; may disconnect a component.
    Remove,
}

/// One timestamped update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeEvent {
    /// Arrival time in seconds (monotone non-decreasing within a stream).
    pub time: f64,
    /// Add or remove.
    pub op: EdgeOp,
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
}

impl EdgeEvent {
    /// Convenience constructor for an addition.
    pub fn add(time: f64, u: VertexId, v: VertexId) -> Self {
        EdgeEvent {
            time,
            op: EdgeOp::Add,
            u,
            v,
        }
    }

    /// Convenience constructor for a removal.
    pub fn remove(time: f64, u: VertexId, v: VertexId) -> Self {
        EdgeEvent {
            time,
            op: EdgeOp::Remove,
            u,
            v,
        }
    }
}

/// An ordered stream of edge updates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeStream {
    events: Vec<EdgeEvent>,
}

impl EdgeStream {
    /// Empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from events, sorting by timestamp (stable, so same-time events
    /// keep their relative order).
    pub fn from_events(mut events: Vec<EdgeEvent>) -> Self {
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite timestamps"));
        EdgeStream { events }
    }

    /// Append an event; must not go back in time.
    pub fn push(&mut self, ev: EdgeEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.time <= ev.time),
            "stream timestamps must be non-decreasing"
        );
        self.events.push(ev);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Borrow the events in order.
    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }

    /// Inter-arrival gaps `t_i − t_{i−1}` (the first event's gap is measured
    /// from time 0). These are the quantities plotted in Figure 8.
    pub fn inter_arrival_times(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.events
            .iter()
            .map(|e| {
                let gap = e.time - prev;
                prev = e.time;
                gap
            })
            .collect()
    }

    /// Mean update rate `F = 1/t_I` in events per second (§5.3); `None` for
    /// streams spanning zero time.
    pub fn mean_rate(&self) -> Option<f64> {
        let span = self.events.last()?.time - self.events.first()?.time;
        if span <= 0.0 {
            None
        } else {
            Some((self.events.len() - 1) as f64 / span)
        }
    }

    /// Apply every event to `g` in order, growing the vertex set on demand
    /// for additions. Returns the number of events applied.
    pub fn apply_all(&self, g: &mut Graph) -> Result<usize, GraphError> {
        for ev in &self.events {
            match ev.op {
                EdgeOp::Add => {
                    g.ensure_vertex(ev.u.max(ev.v));
                    g.add_edge(ev.u, ev.v)?;
                }
                EdgeOp::Remove => {
                    g.remove_edge(ev.u, ev.v)?;
                }
            }
        }
        Ok(self.events.len())
    }

    /// Split into `(prefix, suffix)` at index `k` — e.g. "replay all but the
    /// last 100 edges, then stream the final 100" as §6 does for real graphs.
    pub fn split_at(&self, k: usize) -> (EdgeStream, EdgeStream) {
        let k = k.min(self.events.len());
        (
            EdgeStream {
                events: self.events[..k].to_vec(),
            },
            EdgeStream {
                events: self.events[k..].to_vec(),
            },
        )
    }
}

impl FromIterator<EdgeEvent> for EdgeStream {
    fn from_iter<I: IntoIterator<Item = EdgeEvent>>(iter: I) -> Self {
        EdgeStream::from_events(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_events_sorts() {
        let s = EdgeStream::from_events(vec![EdgeEvent::add(2.0, 0, 1), EdgeEvent::add(1.0, 1, 2)]);
        assert_eq!(s.events()[0].time, 1.0);
        assert_eq!(s.events()[1].time, 2.0);
    }

    #[test]
    fn inter_arrival() {
        let s = EdgeStream::from_events(vec![
            EdgeEvent::add(1.0, 0, 1),
            EdgeEvent::add(4.0, 1, 2),
            EdgeEvent::add(6.0, 2, 3),
        ]);
        assert_eq!(s.inter_arrival_times(), vec![1.0, 3.0, 2.0]);
        let rate = s.mean_rate().unwrap();
        assert!((rate - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn apply_all_grows_graph() {
        let s = EdgeStream::from_events(vec![
            EdgeEvent::add(0.0, 0, 1),
            EdgeEvent::add(1.0, 1, 5),
            EdgeEvent::remove(2.0, 0, 1),
        ]);
        let mut g = Graph::new();
        s.apply_all(&mut g).unwrap();
        assert_eq!(g.n(), 6);
        assert!(g.has_edge(1, 5));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn apply_all_surfaces_errors() {
        let s = EdgeStream::from_events(vec![EdgeEvent::remove(0.0, 0, 1)]);
        let mut g = Graph::with_vertices(2);
        assert!(s.apply_all(&mut g).is_err());
    }

    #[test]
    fn split_prefix_suffix() {
        let s: EdgeStream = (0..10)
            .map(|i| EdgeEvent::add(i as f64, i, i + 1))
            .collect();
        let (head, tail) = s.split_at(7);
        assert_eq!(head.len(), 7);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.events()[0].u, 7);
        let (all, none) = s.split_at(100);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn mean_rate_degenerate() {
        let s = EdgeStream::from_events(vec![EdgeEvent::add(1.0, 0, 1)]);
        assert!(s.mean_rate().is_none());
        assert!(EdgeStream::new().mean_rate().is_none());
    }
}
