//! Breadth-first traversals and connectivity utilities.

use crate::graph::{Graph, VertexId};
use crate::UNREACHABLE;
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable vertices get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for w in g.neighbors(v).iter().map(|h| h.to) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected component label for every vertex (labels are `0..k` in order of
/// first discovery) together with the number of components.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut label = vec![UNREACHABLE; g.n()];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in g.vertices() {
        if label[s as usize] != UNREACHABLE {
            continue;
        }
        label[s as usize] = next;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for w in g.neighbors(v).iter().map(|h| h.to) {
                if label[w as usize] == UNREACHABLE {
                    label[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Extract the largest connected component as a new graph with dense ids.
///
/// Returns the LCC and the mapping `old id -> new id` (`None` for vertices
/// outside the LCC). Table 2 of the paper reports all datasets restricted to
/// their LCC; experiments do the same.
pub fn largest_connected_component(g: &Graph) -> (Graph, Vec<Option<VertexId>>) {
    let (label, k) = connected_components(g);
    if k == 0 {
        return (Graph::new(), Vec::new());
    }
    let mut sizes = vec![0usize; k];
    for &l in &label {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("k > 0");
    let mut map = vec![None; g.n()];
    let mut next = 0u32;
    for v in g.vertices() {
        if label[v as usize] == best {
            map[v as usize] = Some(next);
            next += 1;
        }
    }
    let mut lcc = Graph::with_vertices(next as usize);
    for (u, v) in g.sorted_edges() {
        if let (Some(nu), Some(nv)) = (map[u as usize], map[v as usize]) {
            lcc.add_edge(nu, nv).expect("deduped edges");
        }
    }
    (lcc, map)
}

/// True if the whole graph is a single connected component (empty graphs and
/// single vertices count as connected).
pub fn is_connected(g: &Graph) -> bool {
    let (_, k) = connected_components(g);
    k <= 1
}

/// Eccentricity-style distance histogram from one source: `hist[d]` = number
/// of vertices at distance `d`. Used by effective-diameter estimation.
pub fn distance_histogram(g: &Graph, source: VertexId) -> Vec<usize> {
    let dist = bfs_distances(g, source);
    let mut hist = Vec::new();
    for d in dist {
        if d == UNREACHABLE {
            continue;
        }
        let d = d as usize;
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i as u32, i as u32 + 1).unwrap();
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = path_graph(3);
        g.add_vertex();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn components_counted() {
        let mut g = Graph::with_vertices(6);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 4).unwrap();
        let (label, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[2], label[3]);
        assert_eq!(label[3], label[4]);
        assert_ne!(label[0], label[2]);
        assert_ne!(label[2], label[5]);
    }

    #[test]
    fn lcc_extraction() {
        let mut g = Graph::with_vertices(7);
        // component A: 0-1-2 (3 vertices), component B: 3-4-5-6 (4 vertices)
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(3, 4).unwrap();
        g.add_edge(4, 5).unwrap();
        g.add_edge(5, 6).unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.n(), 4);
        assert_eq!(lcc.m(), 3);
        assert!(map[0].is_none());
        assert!(map[3].is_some());
        assert!(is_connected(&lcc));
    }

    #[test]
    fn lcc_of_empty() {
        let (lcc, map) = largest_connected_component(&Graph::new());
        assert_eq!(lcc.n(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn connectivity_predicate() {
        assert!(is_connected(&path_graph(4)));
        assert!(is_connected(&Graph::new()));
        let mut g = path_graph(2);
        g.add_vertex();
        assert!(!is_connected(&g));
    }

    #[test]
    fn histogram_counts_levels() {
        let g = path_graph(4);
        assert_eq!(distance_histogram(&g, 0), vec![1, 1, 1, 1]);
        assert_eq!(distance_histogram(&g, 1), vec![1, 2, 1]);
    }
}
