//! Command execution: route a parsed [`Command`] to the snapshot read
//! path or the writer task, and render the response line.
//!
//! Runs on the connection's reader thread. Reads (`ping`, `scores`,
//! `top_k`, `stats`) answer from the latest published [`Snapshot`] without
//! ever touching the engine; everything else becomes a `Job` on the
//! bounded writer queue — the submit can block (that is the backpressure)
//! but the reply always arrives because the writer answers every job it
//! dequeues, and a disconnected queue maps to a `shutting_down` error.

use super::{parser, Command, Request, WireError};
use crate::engine::{MoveReport, ServeError};
use crate::json::{obj, Value};
use crate::server::{Job, Shared, Snapshot, Subscription};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Everything a connection needs to execute commands.
pub(crate) struct ConnCtx {
    pub(crate) shared: Arc<Shared>,
    /// This connection's outbound line queue (responses + events).
    pub(crate) out: SyncSender<String>,
    /// Job-sender clone taken at accept time; `None` once the server
    /// started draining.
    pub(crate) jobs: Option<SyncSender<Job>>,
}

impl ConnCtx {
    /// Execute one raw request line, sending the response (and any
    /// subscription ack) through the outbound queue. Returns `false` when
    /// the connection should close (outbound queue gone).
    pub(crate) fn handle_line(&mut self, line: &str) -> bool {
        if line.trim().is_empty() {
            return true; // blank keep-alive lines are fine
        }
        let response = match parser::parse_request(line) {
            Ok(req) => self.dispatch(req),
            Err(err) => Some(wire_error_response(Value::Null, &err)),
        };
        match response {
            Some(line) => self.out.send(line).is_ok(),
            // the writer task already delivered the line (subscribe ack)
            None => true,
        }
    }

    /// Render a transport-level frame problem (oversized, not UTF-8) as a
    /// structured error. The connection survives.
    pub(crate) fn handle_bad_frame(&mut self, err: WireError) -> bool {
        self.out
            .send(wire_error_response(Value::Null, &err))
            .is_ok()
    }

    /// Returns the response line to send, or `None` when the writer task
    /// already enqueued it (the subscribe ack travels with the job so the
    /// client never sees a pushed event before its ack).
    fn dispatch(&mut self, req: Request) -> Option<String> {
        let Request { id, cmd } = req;
        // a degraded server (unresumable session directory) answers every
        // command except ping with its typed opening error
        if let Some(err) = &self.shared.unavailable {
            if !matches!(cmd, Command::Ping) {
                return Some(engine_error_response(id, err));
            }
        }
        Some(match cmd {
            Command::Ping => ok_response(id, [("pong", Value::Bool(true))].into()),
            Command::Scores => {
                let snap = self.snapshot();
                ok_response(
                    id,
                    vec![
                        ("seq", Value::from(snap.seq)),
                        ("epoch", Value::from(snap.epoch)),
                        (
                            "vbc",
                            Value::Arr(snap.index.scores_iter().map(Value::Num).collect()),
                        ),
                    ],
                )
            }
            Command::TopK { k } => {
                // O(k + log n) walk of the published index — no re-sort
                let snap = self.snapshot();
                ok_response(
                    id,
                    vec![
                        ("seq", Value::from(snap.seq)),
                        ("epoch", Value::from(snap.epoch)),
                        ("top", top_array(&snap.index.top_entries(k))),
                    ],
                )
            }
            Command::RankOf { v } => {
                let snap = self.snapshot();
                match snap.index.rank_of(v) {
                    Some(rank) => ok_response(
                        id,
                        vec![
                            ("seq", Value::from(snap.seq)),
                            ("epoch", Value::from(snap.epoch)),
                            ("v", Value::from(v as u64)),
                            ("rank", Value::from(rank)),
                            (
                                "percentile",
                                Value::Num(snap.index.percentile(v).unwrap_or(0.0)),
                            ),
                            ("score", Value::Num(snap.index.score(v).unwrap_or(f64::NAN))),
                        ],
                    ),
                    None => engine_error_response(
                        id,
                        &ServeError::Invalid(format!("vertex {v} is not indexed")),
                    ),
                }
            }
            Command::Stats => {
                let snap = self.snapshot();
                let shared = &self.shared;
                let mut fields = vec![
                    ("seq", Value::from(snap.seq)),
                    ("epoch", Value::from(snap.epoch)),
                    ("n", Value::from(snap.info.n)),
                    ("m", Value::from(snap.info.m)),
                    ("workers", Value::from(snap.info.workers)),
                    ("backend", Value::from(snap.info.backend.clone())),
                    (
                        "connections",
                        Value::from(shared.connections.load(Ordering::SeqCst)),
                    ),
                    (
                        "subscribers",
                        Value::from(shared.subscribers.load(Ordering::SeqCst)),
                    ),
                    (
                        "accepted",
                        Value::from(shared.accepted.load(Ordering::SeqCst)),
                    ),
                ];
                if let Some(v) = snap.info.map_version {
                    fields.push(("map_version", Value::from(v)));
                }
                if let Some(v) = snap.info.live_wal_bytes {
                    fields.push(("live_wal_bytes", Value::from(v)));
                }
                if let Some(v) = snap.info.sealed_history_bytes {
                    fields.push(("sealed_history_bytes", Value::from(v)));
                }
                if let Some(v) = snap.info.last_compaction_seq {
                    fields.push(("last_compaction_seq", Value::from(v)));
                }
                ok_response(id, fields)
            }
            Command::Apply { updates } => {
                let applied = updates.len();
                match self.roundtrip(|reply| Job::Apply { updates, reply }) {
                    Ok((first, last)) => ok_response(
                        id,
                        vec![
                            ("applied", Value::from(applied)),
                            ("seq_first", Value::from(first)),
                            ("seq_last", Value::from(last)),
                        ],
                    ),
                    Err(err) => engine_error_response(id, &err),
                }
            }
            Command::ReduceExact => match self.roundtrip(|reply| Job::ReduceExact { reply }) {
                Ok((vbc, ebc, wall)) => ok_response(
                    id,
                    vec![
                        ("vbc", float_array(&vbc)),
                        ("ebc", float_array(&ebc)),
                        ("wall_us", Value::from(wall.as_micros() as u64)),
                    ],
                ),
                Err(err) => engine_error_response(id, &err),
            },
            Command::Checkpoint => match self.roundtrip(|reply| Job::Checkpoint { reply }) {
                Ok(()) => ok_response(id, vec![("checkpointed", Value::Bool(true))]),
                Err(err) => engine_error_response(id, &err),
            },
            Command::Handoff { source, to } => {
                match self.roundtrip(|reply| Job::Handoff { source, to, reply }) {
                    Ok(report) => ok_response(id, move_fields(&report)),
                    Err(err) => engine_error_response(id, &err),
                }
            }
            Command::Rebalance { threshold } => {
                match self.roundtrip(|reply| Job::Rebalance { threshold, reply }) {
                    Ok(report) => ok_response(id, move_fields(&report)),
                    Err(err) => engine_error_response(id, &err),
                }
            }
            Command::Subscribe { k } => {
                let sub = Subscription {
                    k,
                    out: self.out.clone(),
                    last: Vec::new(),
                };
                let ack = ok_response(
                    id.clone(),
                    vec![("subscribed", Value::from("top_k")), ("k", Value::from(k))],
                );
                match self.roundtrip(|reply| Job::Subscribe { sub, ack, reply }) {
                    Ok(()) => return None, // ack sent by the writer task
                    Err(err) => engine_error_response(id, &err),
                }
            }
            Command::Shutdown => {
                self.shared.trigger_shutdown();
                ok_response(id, vec![("draining", Value::Bool(true))])
            }
        })
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.shared.snapshot.read().expect("snapshot lock"))
    }

    /// Submit a job to the writer task and wait for its reply. Blocking on
    /// a full queue is the designed backpressure; a gone writer (drain
    /// finished) maps to `ShuttingDown`.
    fn roundtrip<T>(
        &mut self,
        job: impl FnOnce(SyncSender<Result<T, ServeError>>) -> Job,
    ) -> Result<T, ServeError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.jobs = None;
            return Err(ServeError::ShuttingDown);
        }
        let sender = match &self.jobs {
            Some(s) => s,
            None => return Err(ServeError::ShuttingDown),
        };
        let (reply_tx, reply_rx): (_, Receiver<Result<T, ServeError>>) = sync_channel(1);
        if sender.send(job(reply_tx)).is_err() {
            self.jobs = None;
            return Err(ServeError::ShuttingDown);
        }
        match reply_rx.recv() {
            Ok(result) => result,
            // the writer dropped the reply without answering: it aborted
            // or panicked; nothing trustworthy remains
            Err(_) => Err(ServeError::Engine("writer task is gone".into())),
        }
    }
}

/// `{"id":...,"ok":true, ...fields}`
fn ok_response(id: Value, fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("id", id), ("ok", Value::Bool(true))];
    pairs.extend(fields);
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_json()
}

/// `{"id":...,"ok":false,"error":{"kind":...,"message":...}}`
fn wire_error_response(id: Value, err: &WireError) -> String {
    obj([
        ("id", id),
        ("ok", Value::Bool(false)),
        (
            "error",
            obj([
                ("kind", Value::from(err.kind)),
                ("message", Value::from(err.message.clone())),
            ]),
        ),
    ])
    .to_json()
}

/// Engine-side errors carry their typed fields — `records_ahead` ships the
/// same census `SessionError::RecordsAhead` exposes to library callers.
fn engine_error_response(id: Value, err: &ServeError) -> String {
    let mut detail = vec![
        ("kind", Value::from(err.kind())),
        ("message", Value::from(err.to_string())),
    ];
    if let ServeError::RecordsAhead {
        manifest_map_version,
        store_version,
        manifest_sources,
        record_sources,
    } = err
    {
        detail.push(("manifest_map_version", Value::from(*manifest_map_version)));
        detail.push(("store_version", Value::from(*store_version)));
        detail.push(("manifest_sources", Value::from(*manifest_sources)));
        detail.push(("record_sources", Value::from(*record_sources)));
    }
    if let ServeError::HistoryGap {
        missing_first,
        missing_last,
    } = err
    {
        detail.push(("missing_first", Value::from(*missing_first)));
        detail.push(("missing_last", Value::from(*missing_last)));
    }
    obj([
        ("id", id),
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::Obj(
                detail
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

/// The pushed `top_k` event line (see the subscription docs in
/// [`crate::server`]).
pub(crate) fn top_k_event(
    seq: u64,
    epoch: u64,
    entries: &[(u32, f64)],
    entered: &[u32],
    left: &[u32],
) -> String {
    obj([
        ("event", Value::from("top_k")),
        ("seq", Value::from(seq)),
        ("epoch", Value::from(epoch)),
        ("top", top_array(entries)),
        (
            "entered",
            Value::Arr(entered.iter().map(|&v| Value::from(v as u64)).collect()),
        ),
        (
            "left",
            Value::Arr(left.iter().map(|&v| Value::from(v as u64)).collect()),
        ),
    ])
    .to_json()
}

fn float_array(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
}

fn top_array(entries: &[(u32, f64)]) -> Value {
    Value::Arr(
        entries
            .iter()
            .map(|&(v, s)| Value::Arr(vec![Value::from(v as u64), Value::Num(s)]))
            .collect(),
    )
}

fn move_fields(report: &MoveReport) -> Vec<(&'static str, Value)> {
    vec![
        (
            "moves",
            Value::Arr(
                report
                    .moves
                    .iter()
                    .map(|&(s, from, to)| {
                        Value::Arr(vec![
                            Value::from(s as u64),
                            Value::from(from),
                            Value::from(to),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("map_version", Value::from(report.map_version)),
    ]
}
