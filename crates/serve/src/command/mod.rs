//! Protocol commands: the typed request surface, split — like sneldb's
//! `command/{parser,handlers}` — into [`parser`] (wire → [`Command`],
//! transport-agnostic, fuzzable in isolation) and [`handlers`] (the
//! per-connection dispatch that routes a parsed command to the snapshot
//! read path or the single writer task).

pub mod handlers;
pub mod parser;

use crate::json::Value;
use ebc_core::state::Update;

/// Every command a client can issue. DESIGN.md §11 is the wire reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe; answered locally, works even on a degraded server.
    Ping,
    /// Apply updates in order, atomically acknowledged after the engine
    /// (and its checkpoint policy) made them durable.
    Apply {
        /// The parsed updates, in wire order.
        updates: Vec<Update>,
    },
    /// Snapshot read of the maintained vertex scores.
    Scores,
    /// Snapshot read of the current top-`k` ranking.
    TopK {
        /// How many vertices to rank.
        k: usize,
    },
    /// Snapshot read of one vertex's rank (1 = most central) and
    /// percentile under the ranking tie rule.
    RankOf {
        /// Vertex to look up.
        v: u32,
    },
    /// The partition-invariant exact reduction (runs on the writer task).
    ReduceExact,
    /// Flush stores and rewrite the durable manifest now.
    Checkpoint,
    /// Hand ownership of one source to another worker.
    Handoff {
        /// Source vertex to move.
        source: u32,
        /// Destination worker index.
        to: usize,
    },
    /// Restore the owned-source skew invariant.
    Rebalance {
        /// Allowed `max − min` owned-source skew.
        threshold: usize,
    },
    /// Server / engine counters.
    Stats,
    /// Start streaming top-`k` delta events after every applied batch.
    Subscribe {
        /// Ranking size to watch.
        k: usize,
    },
    /// Drain in-flight work, checkpoint, and exit.
    Shutdown,
}

/// A parsed request: the echoed correlation `id` plus the command.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation value, echoed verbatim in the response
    /// (`Value::Null` when absent).
    pub id: Value,
    /// The command itself.
    pub cmd: Command,
}

/// A structured protocol-level failure (the request never reached the
/// engine). `kind` is the machine-readable discriminant on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable discriminant: `"parse"`, `"protocol"` or
    /// `"unsupported_backend"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A malformed-JSON error.
    pub fn parse(message: impl Into<String>) -> Self {
        WireError {
            kind: "parse",
            message: message.into(),
        }
    }

    /// A well-formed-JSON but invalid-request error.
    pub fn protocol(message: impl Into<String>) -> Self {
        WireError {
            kind: "protocol",
            message: message.into(),
        }
    }
}
