//! Wire → [`Command`]: one JSON object per line, strictly validated.
//!
//! The parser is a pure function of the line text so the round-trip
//! proptest can drive it with adversarial input without a socket in sight.
//! Every failure is a typed [`WireError`] — malformed input never panics
//! and never reaches the engine.

use super::{Command, Request, WireError};
use crate::json::{self, Value};
use ebc_core::state::Update;

/// Largest accepted batch in one `apply` request. A guard, not a protocol
/// limit: bigger streams are chunked by the client, and the bound keeps one
/// hostile request from ballooning the writer queue's memory.
pub const MAX_BATCH: usize = 100_000;

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = json::parse(line).map_err(|e| WireError::parse(format!("malformed JSON: {e}")))?;
    let Value::Obj(_) = &value else {
        return Err(WireError::protocol("request must be a JSON object"));
    };
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let cmd_name = value
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::protocol("missing string field `cmd`"))?;

    // The backend selector is part of the schema from day one so the
    // Bergamini et al. approximation tier can slot in as a mode rather
    // than a breaking change; today only the exact engine exists.
    match value.get("backend").map(|b| b.as_str()) {
        None => {}
        Some(Some("exact")) => {}
        Some(Some(other)) => {
            return Err(WireError {
                kind: "unsupported_backend",
                message: format!(
                    "backend {other:?} is not available (only \"exact\"; \
                     \"approx\" is reserved for the approximation tier)"
                ),
            });
        }
        Some(None) => return Err(WireError::protocol("`backend` must be a string")),
    }

    let cmd = match cmd_name {
        "ping" => Command::Ping,
        "apply" => Command::Apply {
            updates: parse_updates(&value)?,
        },
        "scores" => Command::Scores,
        "top_k" => Command::TopK {
            k: required_usize(&value, "k")?,
        },
        "rank_of" => Command::RankOf {
            v: required_u32(&value, "v")?,
        },
        "reduce_exact" => Command::ReduceExact,
        "checkpoint" => Command::Checkpoint,
        "handoff" => Command::Handoff {
            source: required_u32(&value, "source")?,
            to: required_usize(&value, "to")?,
        },
        "rebalance" => Command::Rebalance {
            threshold: required_usize(&value, "threshold")?,
        },
        "stats" => Command::Stats,
        "subscribe" => {
            match value.get("what").and_then(Value::as_str) {
                Some("top_k") => {}
                Some(other) => {
                    return Err(WireError::protocol(format!(
                        "unknown subscription {other:?} (only \"top_k\")"
                    )))
                }
                None => return Err(WireError::protocol("subscribe needs `what`: \"top_k\"")),
            }
            Command::Subscribe {
                k: required_usize(&value, "k")?,
            }
        }
        "shutdown" => Command::Shutdown,
        other => return Err(WireError::protocol(format!("unknown command {other:?}"))),
    };
    Ok(Request { id, cmd })
}

fn required_usize(v: &Value, key: &str) -> Result<usize, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::protocol(format!("missing field `{key}`")))?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| WireError::protocol(format!("`{key}` must be a non-negative integer")))
}

fn required_u32(v: &Value, key: &str) -> Result<u32, WireError> {
    let x = required_usize(v, key)?;
    u32::try_from(x).map_err(|_| WireError::protocol(format!("`{key}` exceeds u32")))
}

/// `apply` carries either one `update` triple or an `updates` array of
/// triples; a triple is `[op, u, v]` with `op` ∈ {"add", "+", "remove",
/// "-"}.
fn parse_updates(v: &Value) -> Result<Vec<Update>, WireError> {
    let items: Vec<&Value> = match (v.get("update"), v.get("updates")) {
        (Some(single), None) => vec![single],
        (None, Some(batch)) => {
            let arr = batch
                .as_arr()
                .ok_or_else(|| WireError::protocol("`updates` must be an array"))?;
            arr.iter().collect()
        }
        (Some(_), Some(_)) => {
            return Err(WireError::protocol(
                "give either `update` or `updates`, not both",
            ))
        }
        (None, None) => {
            return Err(WireError::protocol(
                "apply needs `update` [op,u,v] or `updates` [[op,u,v],...]",
            ))
        }
    };
    if items.is_empty() {
        return Err(WireError::protocol("`updates` must not be empty"));
    }
    if items.len() > MAX_BATCH {
        return Err(WireError::protocol(format!(
            "batch of {} exceeds the per-request limit of {MAX_BATCH}",
            items.len()
        )));
    }
    items.into_iter().map(parse_triple).collect()
}

fn parse_triple(item: &Value) -> Result<Update, WireError> {
    let triple = item
        .as_arr()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| WireError::protocol("an update is a triple [op, u, v]"))?;
    let op = triple[0]
        .as_str()
        .ok_or_else(|| WireError::protocol("update op must be a string"))?;
    let coord = |v: &Value, name: &str| {
        v.as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| WireError::protocol(format!("update {name} must be a u32 vertex id")))
    };
    let u = coord(&triple[1], "u")?;
    let v2 = coord(&triple[2], "v")?;
    match op {
        "add" | "+" => Ok(Update::add(u, v2)),
        "remove" | "-" => Ok(Update::remove(u, v2)),
        other => Err(WireError::protocol(format!(
            "unknown update op {other:?} (use \"add\"/\"+\" or \"remove\"/\"-\")"
        ))),
    }
}

/// Encode an update for the wire — the inverse of the triple parser, used
/// by clients (the bench harness, the test battery) and by the round-trip
/// proptest.
pub fn encode_update(u: &Update) -> Value {
    let op = match u.op {
        ebc_graph::EdgeOp::Add => "add",
        ebc_graph::EdgeOp::Remove => "remove",
    };
    Value::Arr(vec![
        Value::from(op),
        Value::from(u.u as u64),
        Value::from(u.v as u64),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    #[test]
    fn parses_the_full_command_set() {
        let cases = [
            (r#"{"cmd":"ping"}"#, Command::Ping),
            (
                r#"{"cmd":"apply","updates":[["add",1,2],["-",0,2]]}"#,
                Command::Apply {
                    updates: vec![Update::add(1, 2), Update::remove(0, 2)],
                },
            ),
            (
                r#"{"cmd":"apply","update":["+",3,4]}"#,
                Command::Apply {
                    updates: vec![Update::add(3, 4)],
                },
            ),
            (r#"{"cmd":"scores"}"#, Command::Scores),
            (r#"{"cmd":"top_k","k":7}"#, Command::TopK { k: 7 }),
            (r#"{"cmd":"rank_of","v":9}"#, Command::RankOf { v: 9 }),
            (r#"{"cmd":"reduce_exact"}"#, Command::ReduceExact),
            (r#"{"cmd":"checkpoint"}"#, Command::Checkpoint),
            (
                r#"{"cmd":"handoff","source":5,"to":2}"#,
                Command::Handoff { source: 5, to: 2 },
            ),
            (
                r#"{"cmd":"rebalance","threshold":1}"#,
                Command::Rebalance { threshold: 1 },
            ),
            (r#"{"cmd":"stats"}"#, Command::Stats),
            (
                r#"{"cmd":"subscribe","what":"top_k","k":3}"#,
                Command::Subscribe { k: 3 },
            ),
            (r#"{"cmd":"shutdown"}"#, Command::Shutdown),
        ];
        for (line, want) in cases {
            let req = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            assert_eq!(req.cmd, want, "{line}");
            assert_eq!(req.id, Value::Null);
        }
    }

    #[test]
    fn echoes_the_id() {
        let req = parse_request(r#"{"id":42,"cmd":"ping"}"#).unwrap();
        assert_eq!(req.id, Value::Num(42.0));
        let req = parse_request(r#"{"id":"abc","cmd":"ping"}"#).unwrap();
        assert_eq!(req.id, Value::Str("abc".into()));
    }

    #[test]
    fn backend_field_is_validated() {
        assert!(parse_request(r#"{"cmd":"scores","backend":"exact"}"#).is_ok());
        let err = parse_request(r#"{"cmd":"scores","backend":"approx"}"#).unwrap_err();
        assert_eq!(err.kind, "unsupported_backend");
        let err = parse_request(r#"{"cmd":"scores","backend":7}"#).unwrap_err();
        assert_eq!(err.kind, "protocol");
    }

    #[test]
    fn malformed_input_is_typed_not_fatal() {
        for (line, kind) in [
            ("", "parse"),
            ("{", "parse"),
            ("[1,2]", "protocol"),
            (r#"{"cmd":"nope"}"#, "protocol"),
            (r#"{"cmd":7}"#, "protocol"),
            (r#"{"cmd":"top_k"}"#, "protocol"),
            (r#"{"cmd":"top_k","k":-1}"#, "protocol"),
            (r#"{"cmd":"top_k","k":1.5}"#, "protocol"),
            (r#"{"cmd":"rank_of"}"#, "protocol"),
            (r#"{"cmd":"rank_of","v":4294967296}"#, "protocol"),
            (r#"{"cmd":"apply"}"#, "protocol"),
            (r#"{"cmd":"apply","updates":[]}"#, "protocol"),
            (r#"{"cmd":"apply","updates":[["add",1]]}"#, "protocol"),
            (r#"{"cmd":"apply","updates":[["mul",1,2]]}"#, "protocol"),
            (
                r#"{"cmd":"apply","updates":[["add",1,4294967296]]}"#,
                "protocol",
            ),
            (r#"{"cmd":"subscribe","k":3}"#, "protocol"),
            (r#"{"cmd":"subscribe","what":"scores","k":3}"#, "protocol"),
            (r#"{"cmd":"ping"} trailing"#, "parse"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, kind, "{line:?}: {}", err.message);
        }
    }

    #[test]
    fn update_encoding_round_trips() {
        let updates = vec![Update::add(0, 9), Update::remove(7, 3)];
        let line = obj([
            ("cmd", Value::from("apply")),
            (
                "updates",
                Value::Arr(updates.iter().map(encode_update).collect()),
            ),
        ])
        .to_json();
        let req = parse_request(&line).unwrap();
        assert_eq!(req.cmd, Command::Apply { updates });
    }
}
