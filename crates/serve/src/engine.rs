//! The engine surface the server drives — and nothing more.
//!
//! `ebc-serve` deliberately does **not** depend on the `streaming-bc`
//! facade (the facade's binary depends on this crate; a direct dependency
//! would be a cycle). Instead the server is generic over [`ServeEngine`],
//! a thin mirror of the `Session` operations the protocol exposes; the
//! facade implements it for `Session`, and the test suite implements it
//! with mocks to pin server behavior without a real engine.

use ebc_core::rankindex::ScoreDelta;
use ebc_core::state::Update;
use std::fmt;
use std::time::Duration;

/// A typed engine-side failure, shaped for the wire: every variant maps to
/// a protocol error `kind` so clients can dispatch on it without parsing
/// prose.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The update or query is invalid against the current state; the
    /// engine is untouched and the connection stays usable.
    Invalid(String),
    /// The engine failed in a way that may leave it untrustworthy.
    Engine(String),
    /// The session directory's record files are ahead of its manifest — a
    /// `Checkpoint::Manual` session killed after un-checkpointed growth.
    /// Carried field-for-field from `SessionError::RecordsAhead` so the
    /// client sees the same census the library caller would.
    RecordsAhead {
        /// Ownership-map version the at-rest manifest recorded.
        manifest_map_version: u64,
        /// Ownership-map version the recovered shard files carry.
        store_version: u64,
        /// Sources in the manifest's graph snapshot.
        manifest_sources: usize,
        /// Sources the recovered record files actually own.
        record_sources: usize,
    },
    /// The operation needs an embodiment this session does not have
    /// (e.g. `rebalance` on a single-machine backend).
    Unsupported(String),
    /// A replay (or open) reached for history records that no sealed
    /// segment holds — a deleted segment file, or a seek below a
    /// `keep_history = false` truncation point. Carried field-for-field
    /// from `SessionError::HistoryGap` so clients see the missing range.
    HistoryGap {
        /// First missing seq.
        missing_first: u64,
        /// Last missing seq.
        missing_last: u64,
    },
    /// The server is draining for shutdown and refuses new work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
            ServeError::RecordsAhead {
                manifest_map_version,
                store_version,
                manifest_sources,
                record_sources,
            } => write!(
                f,
                "records ahead of manifest: stores own {record_sources} sources \
                 (map v{store_version}), manifest has {manifest_sources} \
                 (map v{manifest_map_version})"
            ),
            ServeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            ServeError::HistoryGap {
                missing_first,
                missing_last,
            } => write!(
                f,
                "history has a gap: records {missing_first}..={missing_last} are missing"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The wire `kind` tag of an error (see DESIGN.md §11 for the full table).
impl ServeError {
    /// Stable machine-readable discriminant used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Invalid(_) => "invalid",
            ServeError::Engine(_) => "engine",
            ServeError::RecordsAhead { .. } => "records_ahead",
            ServeError::Unsupported(_) => "unsupported",
            ServeError::HistoryGap { .. } => "history_gap",
            ServeError::ShuttingDown => "shutting_down",
        }
    }
}

/// Executed ownership moves, mirroring `RebalanceOutcome` without the
/// dependency (each move is `(source, from, to)`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MoveReport {
    /// Executed handoffs in commit order.
    pub moves: Vec<(u32, usize, usize)>,
    /// Ownership-map version after the last committed move.
    pub map_version: u64,
}

/// Point-in-time descriptive counters for the `stats` command.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineInfo {
    /// Current vertex count.
    pub n: usize,
    /// Current edge count.
    pub m: usize,
    /// Map-phase workers.
    pub workers: usize,
    /// Human-readable backend tag (`"memory"`, `"disk"`, `"sharded"`,
    /// `"mock"`, ...).
    pub backend: String,
    /// Ownership-map version for partitioned embodiments.
    pub map_version: Option<u64>,
    /// Bytes of live (not yet compacted) journal frames, for durable
    /// sessions with a history directory.
    pub live_wal_bytes: Option<u64>,
    /// Total bytes across sealed history segments.
    pub sealed_history_bytes: Option<u64>,
    /// Highest seq folded into a compaction (sealed or discarded);
    /// 0 before the first compaction.
    pub last_compaction_seq: Option<u64>,
}

/// What the server needs from a session. One instance is owned by the
/// single writer thread; `Send` lets it move there at spawn.
///
/// Durability contract: when `apply_batch` returns `Ok`, the batch is as
/// durable as the engine's checkpoint policy makes it — the server
/// acknowledges the client only after this returns, so an ack means
/// "applied and checkpointed" for `Checkpoint::EveryApply` sessions.
pub trait ServeEngine: Send {
    /// Apply a batch of updates in order, atomically from the protocol's
    /// point of view: no reply reaches the client until the whole batch
    /// (and its checkpoint, per policy) landed.
    fn apply_batch(&mut self, updates: &[Update]) -> Result<(), ServeError>;

    /// The fast-path maintained scores (the paper's reduce).
    fn scores_vbc(&mut self) -> Result<Vec<f64>, ServeError>;

    /// Drain what changed in the fast-path scores since the last drain —
    /// the feed for the writer task's incrementally maintained rank index
    /// (every published [`crate::Snapshot`] carries a clone of it).
    /// Applying the drained deltas in order reproduces `scores_vbc` bit
    /// for bit.
    ///
    /// The default cannot track changes and republishes densely; engines
    /// with dirty tracking (the facade's `Session`) override it with
    /// sparse deltas so publish costs `O(changed)`, not `O(n)`.
    fn take_score_delta(&mut self) -> Result<ScoreDelta, ServeError> {
        self.scores_vbc().map(ScoreDelta::Dense)
    }

    /// The partition-invariant exact reduction: `(vbc, ebc, wall)`.
    /// Bitwise identical across embodiments for the same update history.
    fn reduce_exact(&mut self) -> Result<(Vec<f64>, Vec<f64>, Duration), ServeError>;

    /// Flush stores and rewrite the durable manifest now.
    fn checkpoint(&mut self) -> Result<(), ServeError>;

    /// Hand ownership of `source` to worker `to` (partitioned only).
    fn handoff(&mut self, source: u32, to: usize) -> Result<MoveReport, ServeError>;

    /// Restore the owned-source skew invariant `max − min ≤ threshold`
    /// (partitioned only).
    fn rebalance(&mut self, threshold: usize) -> Result<MoveReport, ServeError>;

    /// Descriptive counters for `stats`.
    fn info(&self) -> EngineInfo;
}
