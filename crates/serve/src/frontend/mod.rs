//! Transports: the accept loops and the per-connection thread pair.
//!
//! Transport is strictly dumb plumbing — `tcp` and `unix` only know
//! how to accept and split a byte stream; framing lives in
//! [`crate::proto`] and meaning in [`crate::command`]. A future shard-node
//! wire reuses everything below the accept loop unchanged.
//!
//! Each accepted connection runs **two** threads:
//!
//! * a *reader* that reassembles frames ([`crate::proto::LineReader`]),
//!   parses and executes commands in arrival order (so responses are
//!   ordered per connection), and
//! * a *writer* that drains the connection's outbound line queue — both
//!   command responses and pushed subscription events — so a slow socket
//!   never stalls command parsing and the server's writer task never
//!   touches a socket.
//!
//! Accept loops poll non-blocking so they can honor shutdown promptly;
//! connection reads use a short timeout for the same reason.

pub(crate) mod tcp;
pub(crate) mod unix;

use crate::command::handlers::ConnCtx;
use crate::command::WireError;
use crate::proto::{Frame, LineReader};
use crate::server::Shared;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// How often blocking points re-check the shutdown flag.
pub(crate) const POLL: Duration = Duration::from_millis(50);

/// Outbound queue depth per connection. When a subscriber falls this many
/// lines behind it is dropped (see `notify_subscribers`).
const OUTBOUND_DEPTH: usize = 1024;

/// Drive one accepted connection; `read` and `write` are the two halves
/// of the same stream (`try_clone`d by the transport).
pub(crate) fn drive_connection<R, W>(read: R, write: W, shared: Arc<Shared>)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    shared.connections.fetch_add(1, Ordering::SeqCst);
    shared.accepted.fetch_add(1, Ordering::SeqCst);
    let (out_tx, out_rx) = sync_channel::<String>(OUTBOUND_DEPTH);
    // a subscription clone of `out_tx` can outlive the reader (it sits
    // with the server's writer task until a push fails), so Disconnected
    // alone cannot end the writer half — this flag does
    let reader_done = Arc::new(AtomicBool::new(false));

    // writer half: drains responses + events to the socket
    let writer_done = Arc::clone(&reader_done);
    let writer = std::thread::Builder::new()
        .name("sbc-serve-conn-w".into())
        .spawn(move || {
            let mut write = std::io::BufWriter::new(write);
            loop {
                match out_rx.recv_timeout(POLL) {
                    Ok(line) => {
                        if write
                            .write_all(line.as_bytes())
                            .and_then(|()| write.write_all(b"\n"))
                            .and_then(|()| write.flush())
                            .is_err()
                        {
                            return; // peer gone; reader notices on its next read
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if writer_done.load(Ordering::SeqCst) {
                            return; // reader finished and the queue is idle
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .expect("spawn connection writer");

    // reader half: frames → commands → responses, in order
    let mut ctx = ConnCtx {
        jobs: shared.job_sender(),
        shared: Arc::clone(&shared),
        out: out_tx,
    };
    let mut lines = LineReader::new(read);
    loop {
        if ctx.shared.shutdown.load(Ordering::SeqCst) {
            break; // refuse further work; queued jobs already got replies
        }
        match lines.read_frame() {
            Ok(None) => continue, // read timeout: poll shutdown and retry
            Ok(Some(Frame::Line(line))) => {
                if !ctx.handle_line(&line) {
                    break;
                }
            }
            Ok(Some(Frame::Oversized(n))) => {
                let err = WireError::protocol(format!(
                    "line of {n} bytes exceeds the {} byte frame limit",
                    crate::proto::MAX_LINE
                ));
                if !ctx.handle_bad_frame(err) {
                    break;
                }
            }
            Ok(Some(Frame::NotUtf8)) => {
                let err = WireError::protocol("line is not valid UTF-8");
                if !ctx.handle_bad_frame(err) {
                    break;
                }
            }
            Ok(Some(Frame::Eof)) | Err(_) => break,
        }
    }
    // dropping ctx.out lets the writer half drain; the done flag covers
    // the subscribed case where the server still holds a sender clone
    drop(ctx);
    reader_done.store(true, Ordering::SeqCst);
    let _ = writer.join();
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}
