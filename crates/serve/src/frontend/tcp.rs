//! TCP frontend: non-blocking accept poll + one connection pair per
//! accepted stream.

use super::{drive_connection, POLL};
use crate::server::Shared;
use std::io::ErrorKind;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub(crate) fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("set tcp listener non-blocking");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // dropping the listener refuses further connections
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // accepted sockets do not inherit the listener's
                // non-blocking mode on Linux, but be explicit: the reader
                // uses a short timeout so it can poll shutdown
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                let _ = stream.set_nodelay(true);
                let write = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("sbc-serve-conn".into())
                    .spawn(move || drive_connection(stream, write, shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL),
        }
    }
}
