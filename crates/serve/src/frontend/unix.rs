//! Unix-socket frontend: identical shape to the TCP loop over a
//! `UnixListener`. The socket file is created at bind and removed by
//! `ServerHandle::join`.

use super::{drive_connection, POLL};
use crate::server::Shared;
use std::io::ErrorKind;
use std::os::unix::net::UnixListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub(crate) fn accept_loop(listener: UnixListener, shared: &Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("set unix listener non-blocking");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                let write = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("sbc-serve-conn".into())
                    .spawn(move || drive_connection(stream, write, shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL),
        }
    }
}
