//! Minimal self-contained JSON: the [`Value`] tree, a recursive-descent
//! parser and a serializer.
//!
//! The vendored `serde` stub is a no-op marker (this container has no
//! crates.io access), so the wire format is implemented here directly. The
//! subset is exactly RFC 8259 with two deliberate restrictions:
//!
//! * numbers are `f64` and must be **finite** — `NaN`/`Infinity` are not
//!   JSON and are rejected on both sides;
//! * parsing is depth-limited ([`MAX_DEPTH`]) so hostile input cannot blow
//!   the stack.
//!
//! Float round-tripping is lossless: serialization uses Rust's shortest
//! round-trip `Display` for `f64`, and parsing goes through
//! `str::parse::<f64>`, so `parse(serialize(x)) == x` bitwise for every
//! finite `x` — the property the served `reduce_exact` bitwise oracle in
//! `tests/serve_concurrent.rs` leans on, pinned by the round-trip proptest.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts before reporting an error.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is normalized (sorted) — the protocol never
    /// relies on member order, and a canonical form keeps round-trip
    /// equality honest.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a number that is
    /// one (integral, in `[0, 2^53]` so the `f64` carries it exactly).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=9007199254740992.0).contains(&x) {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Num(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Num(x as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

/// Build a [`Value::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// Human-readable reason.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse exactly one JSON value covering the whole input (surrounding
/// whitespace allowed, trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // the input is `&str`, so any multi-byte sequence here is
                // already valid UTF-8; char boundaries cannot split because
                // `"` `\` and controls are single-byte ASCII
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid str"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control byte in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair: require the low half
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u')
                            .map_err(|_| self.err("lone high surrogate"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                };
                out.push(ch);
            }
            other => return Err(self.err(format!("unknown escape \\{}", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("malformed number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("malformed number exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number {text:?}")))?;
        if !x.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(Value::Num(x))
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) => write_num(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_num(out: &mut String, x: f64) {
    use fmt::Write;
    debug_assert!(x.is_finite(), "non-finite numbers are not JSON");
    if x.is_finite() {
        // Rust's shortest round-trip Display; `5.0` prints as `5`, which is
        // still a JSON number and parses back to the same bits
        write!(out, "{x}").expect("write to String");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
    }

    #[test]
    fn float_bits_survive() {
        for x in [
            0.1,
            -0.0,
            1.0 / 3.0,
            6.02e23,
            5e-324,
            f64::MAX,
            1.2345678901234567,
        ] {
            let v = Value::Num(x);
            let back = parse(&v.to_json()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x:?}");
        }
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé😀");
        // and back out
        let round = parse(&v.to_json()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "[1] x",
            "\"\\ud800\"",
            "1e999",
            "nan",
            "--2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_access() {
        let v = parse(r#"{"cmd":"top_k","k":5,"flag":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("top_k"));
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Value::as_arr).unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
    }
}
