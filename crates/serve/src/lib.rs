//! # ebc-serve
//!
//! The network frontend that turns the streaming-betweenness engine from a
//! library into a system: a server speaking a newline-delimited JSON
//! command protocol over **TCP and unix sockets**, with
//!
//! * a single writer task owning the update path behind a **bounded**
//!   job queue (backpressure reaches the client through the transport),
//! * **snapshot-consistent reads** that never block writers (`scores`,
//!   `top_k`, `stats` answer from an immutable published snapshot on the
//!   connection thread),
//! * streaming **`subscribe top_k`** delta events after every applied
//!   batch, and
//! * graceful drain on SIGTERM / SIGINT / the `shutdown` command.
//!
//! Layering: [`proto`] frames lines, [`command::parser`] gives them
//! meaning, [`command::handlers`] routes them, [`frontend`] owns sockets,
//! [`server`] owns the writer task. The crate is deliberately independent
//! of the `streaming-bc` facade: the server drives anything implementing
//! [`engine::ServeEngine`] (the facade implements it for `Session`, and a
//! future shard-node wire reuses the codec and transport unchanged).
//! DESIGN.md §11 specifies the wire protocol; the README's "Serving"
//! section has an end-to-end `sbc serve` + `nc` transcript.

#![deny(missing_docs)]

pub mod command;
pub mod engine;
pub mod frontend;
pub mod json;
pub mod proto;
pub mod server;
#[cfg(unix)]
pub mod signal;

pub use command::parser::{encode_update, parse_request};
pub use command::{Command, Request, WireError};
pub use engine::{EngineInfo, MoveReport, ServeEngine, ServeError};
pub use server::{Server, ServerConfig, ServerHandle, Snapshot};
