//! The line layer: newline-delimited frames over any byte stream.
//!
//! One request or response per `\n`-terminated line. [`LineReader`] owns
//! the read buffering, so frames reassemble correctly however the transport
//! splits them, and it enforces [`MAX_LINE`] by *consuming* an oversized
//! line while reporting it — the connection survives, the offending frame
//! yields a structured protocol error and nothing is half-applied.

use std::io::{ErrorKind, Read};

/// Longest accepted frame (bytes, newline excluded). Long enough for a
/// many-thousand-update batch, short enough that a garbage firehose cannot
/// balloon the connection buffer.
pub const MAX_LINE: usize = 4 * 1024 * 1024;

/// One read frame, or why there isn't one.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped, `\r\n` tolerated).
    Line(String),
    /// A line longer than [`MAX_LINE`]; the excess has been consumed up to
    /// and including its newline. Carries the number of bytes discarded.
    Oversized(usize),
    /// A complete line that is not valid UTF-8.
    NotUtf8,
    /// Clean end of stream (peer closed between frames).
    Eof,
}

/// Errors the reader itself can hit (transport-level, not protocol-level).
#[derive(Debug)]
pub enum LineError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed mid-line, leaving an unterminated frame.
    TruncatedFrame,
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Io(e) => write!(f, "transport error: {e}"),
            LineError::TruncatedFrame => write!(f, "peer closed mid-frame"),
        }
    }
}

impl std::error::Error for LineError {}

/// Buffered newline-delimited frame reader over any [`Read`].
///
/// Tolerates arbitrary read fragmentation (the round-trip proptest drives
/// it with 1-byte reads) and interprets read timeouts — `WouldBlock` /
/// `TimedOut` — as "no frame yet", surfaced via [`LineReader::read_frame`]
/// returning `Ok(None)` so callers can poll a shutdown flag between reads.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Filled prefix of `buf` not yet consumed into frames.
    start: usize,
    end: usize,
    /// Bytes of the current oversized line discarded so far, when inside
    /// one (we stream the excess to the floor instead of buffering it).
    skipping: Option<usize>,
}

impl<R: Read> LineReader<R> {
    /// Wrap a transport.
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: vec![0; 64 * 1024],
            start: 0,
            end: 0,
            skipping: None,
        }
    }

    /// Pull the next frame. `Ok(None)` means the read timed out (or would
    /// block) with no complete frame buffered — poll again.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, LineError> {
        loop {
            // a buffered complete line wins before any further read
            if let Some(frame) = self.take_buffered() {
                return Ok(Some(frame));
            }
            // compact, grow if the pending line still fits under the cap
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            }
            if self.end == self.buf.len() {
                if self.buf.len() >= MAX_LINE {
                    // pending line exceeds the cap: discard what we have
                    // and switch to skip mode until its newline shows up
                    let dropped = self.end;
                    self.end = 0;
                    self.skipping = Some(self.skipping.take().unwrap_or(0) + dropped);
                } else {
                    self.buf.resize((self.buf.len() * 2).min(MAX_LINE), 0);
                }
            }
            match self.inner.read(&mut self.buf[self.end..]) {
                Ok(0) => {
                    return if self.end > self.start || self.skipping.is_some() {
                        Err(LineError::TruncatedFrame)
                    } else {
                        Ok(Some(Frame::Eof))
                    };
                }
                Ok(n) => self.end += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) => return Err(LineError::Io(e)),
            }
        }
    }

    fn take_buffered(&mut self) -> Option<Frame> {
        let nl = self.buf[self.start..self.end]
            .iter()
            .position(|&b| b == b'\n')?;
        let line_end = self.start + nl;
        let frame = if let Some(dropped) = self.skipping.take() {
            // the tail of an oversized line: count it, report, move on
            Some(Frame::Oversized(dropped + nl))
        } else {
            let mut bytes = &self.buf[self.start..line_end];
            if bytes.last() == Some(&b'\r') {
                bytes = &bytes[..bytes.len() - 1];
            }
            match std::str::from_utf8(bytes) {
                Ok(s) => Some(Frame::Line(s.to_string())),
                Err(_) => Some(Frame::NotUtf8),
            }
        };
        self.start = line_end + 1;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out the input in fixed-size fragments.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn frames(data: &[u8], chunk: usize) -> Vec<Frame> {
        let mut r = LineReader::new(Chunked {
            data: data.to_vec(),
            pos: 0,
            chunk,
        });
        let mut out = Vec::new();
        loop {
            match r
                .read_frame()
                .unwrap()
                .expect("chunked reader never blocks")
            {
                Frame::Eof => return out,
                f => out.push(f),
            }
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let data = b"{\"cmd\":\"ping\"}\r\nsecond line\n";
        for chunk in [1, 2, 3, 7, 1024] {
            assert_eq!(
                frames(data, chunk),
                vec![
                    Frame::Line("{\"cmd\":\"ping\"}".into()),
                    Frame::Line("second line".into()),
                ],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn oversized_line_is_skipped_not_fatal() {
        let mut data = vec![b'x'; MAX_LINE + 10];
        data.push(b'\n');
        data.extend_from_slice(b"after\n");
        let got = frames(&data, 1 << 16);
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], Frame::Oversized(n) if n == MAX_LINE + 10));
        assert_eq!(got[1], Frame::Line("after".into()));
    }

    #[test]
    fn invalid_utf8_is_reported_per_line() {
        let got = frames(b"ok\n\xff\xfe\nstill ok\n", 5);
        assert_eq!(
            got,
            vec![
                Frame::Line("ok".into()),
                Frame::NotUtf8,
                Frame::Line("still ok".into()),
            ]
        );
    }

    #[test]
    fn eof_mid_line_is_truncation() {
        let mut r = LineReader::new(Chunked {
            data: b"no newline".to_vec(),
            pos: 0,
            chunk: 3,
        });
        assert!(matches!(r.read_frame(), Err(LineError::TruncatedFrame)));
    }

    #[test]
    fn empty_lines_come_through() {
        assert_eq!(
            frames(b"\n\na\n", 2),
            vec![
                Frame::Line(String::new()),
                Frame::Line(String::new()),
                Frame::Line("a".into()),
            ]
        );
    }
}
