//! The server core: one writer task owning the engine, snapshot-published
//! reads, bounded backpressure, streaming subscriptions, graceful drain.
//!
//! ## Concurrency shape
//!
//! * **One writer task** (a dedicated thread) owns the [`ServeEngine`]
//!   outright. Every mutating command — `apply`, `handoff`, `rebalance`,
//!   `checkpoint`, `reduce_exact` (which needs `&mut` access) — travels to
//!   it as a `Job` over a **bounded** `sync_channel`: a connection
//!   submitting into a full queue blocks, which is the backpressure the
//!   transport propagates to the client. Updates therefore apply in one
//!   global serial order; the order is observable through the `seq` range
//!   each `apply` acknowledgment carries, which is what lets the
//!   concurrency suite replay the exact interleaving serially and demand
//!   bitwise-equal scores.
//! * **Readers never block writers**: after every applied batch the writer
//!   publishes an immutable [`Snapshot`] (scores + counters) behind an
//!   `RwLock<Arc<_>>`; `scores`/`top_k`/`stats` clone the `Arc` and answer
//!   from it on the connection thread. A reader holds the lock only for
//!   the clone, never while serializing.
//! * **Subscriptions** (`subscribe top_k`) are carried by the writer task:
//!   after each batch it diffs the new top-`k` against what each
//!   subscriber last saw and pushes an event line into that connection's
//!   outbound queue (never blocking: a subscriber that stopped draining is
//!   dropped rather than allowed to stall the update path).
//! * **Graceful drain**: once shutdown triggers, frontends stop accepting,
//!   connections refuse new work with a `shutting_down` error, the writer
//!   finishes every job already in the queue (in-flight batches are acked,
//!   not lost), checkpoints, and exits.

use crate::engine::{EngineInfo, MoveReport, ServeEngine, ServeError};
use crate::frontend;
use ebc_core::rankindex::RankIndex;
use ebc_core::state::Update;
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`Server`] binds and behaves.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address (e.g. `127.0.0.1:0` for an ephemeral port), or
    /// `None` for no TCP frontend.
    pub tcp: Option<String>,
    /// Unix-socket path, or `None` for no unix frontend. An existing
    /// socket file at the path is replaced.
    pub unix: Option<PathBuf>,
    /// Capacity of the writer task's job queue — the backpressure bound.
    pub queue_depth: usize,
    /// Crash injection for the restart-under-traffic suite: abort the
    /// whole process immediately after this many updates have been applied
    /// (mid-batch, after the prefix was made durable, before any ack).
    /// Driven by `SBC_SERVE_CRASH_AFTER` in the `sbc serve` binary; never
    /// set in production.
    pub crash_after: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
            queue_depth: 64,
            crash_after: None,
        }
    }
}

/// An immutable point-in-time read view, swapped in by the writer task
/// after every mutation.
#[derive(Debug)]
pub struct Snapshot {
    /// Updates applied when this snapshot was taken (the global sequence).
    pub seq: u64,
    /// Batches applied when this snapshot was taken.
    pub epoch: u64,
    /// The maintained fast-path scores *and* their rank order: a clone of
    /// the writer task's incrementally maintained [`RankIndex`] (clone is
    /// `O(1)` node sharing, publish is `O(changed · log n)`), so `scores`,
    /// `top_k`, `rank_of` and subscription diffing all read the same
    /// structure without re-sorting.
    pub index: RankIndex,
    /// Engine counters at snapshot time.
    pub info: EngineInfo,
}

/// A top-`k` subscription registered with the writer task.
pub(crate) struct Subscription {
    pub(crate) k: usize,
    /// The owning connection's outbound line queue.
    pub(crate) out: SyncSender<String>,
    /// Ranking (id, score-bits) this subscriber last saw.
    pub(crate) last: Vec<(u32, u64)>,
}

/// Work for the writer task. Every job carries a rendezvous reply channel;
/// the writer always answers, so a submitting connection never hangs.
pub(crate) enum Job {
    Apply {
        updates: Vec<Update>,
        reply: SyncSender<Result<(u64, u64), ServeError>>,
    },
    ReduceExact {
        #[allow(clippy::type_complexity)]
        reply: SyncSender<Result<(Vec<f64>, Vec<f64>, Duration), ServeError>>,
    },
    Checkpoint {
        reply: SyncSender<Result<(), ServeError>>,
    },
    Handoff {
        source: u32,
        to: usize,
        reply: SyncSender<Result<MoveReport, ServeError>>,
    },
    Rebalance {
        threshold: usize,
        reply: SyncSender<Result<MoveReport, ServeError>>,
    },
    Subscribe {
        sub: Subscription,
        /// Pre-rendered ack line; the writer task pushes it into the
        /// subscriber's outbound queue *before* the seeded first event, so
        /// the client always sees ack → events in that order.
        ack: String,
        reply: SyncSender<Result<(), ServeError>>,
    },
}

/// State shared between the writer task, the frontends and every
/// connection thread.
pub(crate) struct Shared {
    /// Latest published read view.
    pub(crate) snapshot: RwLock<Arc<Snapshot>>,
    /// Prototype job sender; connections clone it at accept time. Taken
    /// (dropped) on shutdown so the writer's receiver disconnects once the
    /// last connection lets go.
    pub(crate) jobs: Mutex<Option<SyncSender<Job>>>,
    /// Set once; everything polls it.
    pub(crate) shutdown: AtomicBool,
    /// Open connections (both frontends).
    pub(crate) connections: AtomicUsize,
    /// Live subscriptions (maintained by the writer task).
    pub(crate) subscribers: AtomicUsize,
    /// Total accepted connections (stats).
    pub(crate) accepted: AtomicU64,
    /// When set, the engine could not be opened: every command except
    /// `ping` is answered with this error. The typed `records_ahead`
    /// surface of the crash suite.
    pub(crate) unavailable: Option<ServeError>,
}

impl Shared {
    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // dropping the prototype sender lets the writer task's receiver
        // disconnect once in-flight connections finish their jobs
        drop(self.jobs.lock().expect("jobs lock").take());
    }

    /// A clone of the job sender, unless the server is draining.
    pub(crate) fn job_sender(&self) -> Option<SyncSender<Job>> {
        self.jobs.lock().expect("jobs lock").clone()
    }
}

/// A running server: bound frontends plus the writer task.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (with the ephemeral port resolved).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix-socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Trigger a graceful drain: stop accepting, finish queued work,
    /// checkpoint, exit. Returns immediately; use [`ServerHandle::join`]
    /// to wait.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether shutdown has been triggered (by signal, command or
    /// [`ServerHandle::shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the accept loops and the writer task have exited (i.e.
    /// the drain completed), then reap the unix socket file. Connection
    /// threads close themselves shortly after; [`ServerHandle::join`]
    /// waits up to ~2 s for them so an `exec`-and-exit caller does not
    /// race their final flushes.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        for _ in 0..200 {
            if self.shared.connections.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Builder-free entry points: spawn a server over an engine, or a degraded
/// one that reports why the engine is unavailable.
pub struct Server;

impl Server {
    /// Bind the configured frontends and start serving `engine`.
    pub fn spawn<E: ServeEngine + 'static>(
        mut engine: E,
        cfg: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let info = engine.info();
        let mut rank = RankIndex::new();
        if let Ok(delta) = engine.take_score_delta() {
            rank.apply(&delta);
        }
        let initial = Snapshot {
            seq: 0,
            epoch: 0,
            index: rank.clone(),
            info,
        };
        let (tx, rx) = sync_channel::<Job>(cfg.queue_depth.max(1));
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(initial)),
            jobs: Mutex::new(Some(tx)),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            subscribers: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            unavailable: None,
        });
        let mut handle = Self::bind_frontends(&cfg, Arc::clone(&shared))?;
        let crash_after = cfg.crash_after;
        let writer_shared = Arc::clone(&shared);
        handle.threads.push(
            std::thread::Builder::new()
                .name("sbc-serve-writer".into())
                .spawn(move || writer_loop(&mut engine, rank, rx, &writer_shared, crash_after))
                .expect("spawn writer task"),
        );
        Ok(handle)
    }

    /// Bind the frontends **without** an engine: every command except
    /// `ping` is answered with `error` (typed, e.g. `records_ahead`), so a
    /// session directory that cannot be resumed yields a diagnosable
    /// server instead of a hang or a crash loop.
    pub fn spawn_unavailable(
        error: ServeError,
        cfg: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let initial = Snapshot {
            seq: 0,
            epoch: 0,
            index: RankIndex::new(),
            info: EngineInfo {
                n: 0,
                m: 0,
                workers: 0,
                backend: "unavailable".to_string(),
                map_version: None,
                live_wal_bytes: None,
                sealed_history_bytes: None,
                last_compaction_seq: None,
            },
        };
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(initial)),
            jobs: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            subscribers: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            unavailable: Some(error),
        });
        Self::bind_frontends(&cfg, shared)
    }

    fn bind_frontends(cfg: &ServerConfig, shared: Arc<Shared>) -> std::io::Result<ServerHandle> {
        let mut threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("sbc-serve-tcp".into())
                    .spawn(move || frontend::tcp::accept_loop(listener, &shared))
                    .expect("spawn tcp frontend"),
            );
        }
        let mut unix_path = None;
        if let Some(path) = &cfg.unix {
            // replace a stale socket file from a previous run
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            unix_path = Some(path.clone());
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("sbc-serve-unix".into())
                    .spawn(move || frontend::unix::accept_loop(listener, &shared))
                    .expect("spawn unix frontend"),
            );
        }
        Ok(ServerHandle {
            shared,
            tcp_addr,
            unix_path,
            threads,
        })
    }
}

/// The single writer task: the only code that ever touches the engine.
///
/// It also owns the live [`RankIndex`]: every publish drains the engine's
/// score delta into it, so ranked reads never re-sort and snapshots are
/// `O(1)` clones of the shared structure.
fn writer_loop<E: ServeEngine>(
    engine: &mut E,
    mut rank: RankIndex,
    rx: Receiver<Job>,
    shared: &Shared,
    crash_after: Option<u64>,
) {
    let mut seq: u64 = 0;
    let mut epoch: u64 = 0;
    let mut subs: Vec<Subscription> = Vec::new();
    // recv() returning Err means every sender is gone: the prototype was
    // taken by shutdown AND all in-flight connections released theirs —
    // exactly the "queue fully drained" condition.
    while let Ok(job) = rx.recv() {
        match job {
            Job::Apply { updates, reply } => {
                if let Some(limit) = crash_after {
                    let remaining = limit.saturating_sub(seq) as usize;
                    if remaining <= updates.len() {
                        // the crash point lands inside this batch: make the
                        // prefix durable (apply + checkpoint), then die
                        // without acknowledging — the restart suite's
                        // deterministic mid-batch kill
                        let _ = engine.apply_batch(&updates[..remaining]);
                        let _ = engine.checkpoint();
                        std::process::abort();
                    }
                }
                let result = engine.apply_batch(&updates).map(|()| {
                    let first = seq + 1;
                    seq += updates.len() as u64;
                    epoch += 1;
                    (first, seq)
                });
                if result.is_ok() {
                    // publish and notify before the ack: an acknowledged
                    // writer reads its own batch from the very next
                    // snapshot, and a subscriber has the batch's event
                    // queued before anyone sees the ack (notify never
                    // blocks — slow subscribers are dropped, not awaited)
                    publish(engine, &mut rank, shared, seq, epoch);
                    notify_subscribers(&mut subs, shared, seq, epoch);
                }
                let _ = reply.send(result);
            }
            Job::ReduceExact { reply } => {
                let _ = reply.send(engine.reduce_exact());
            }
            Job::Checkpoint { reply } => {
                let _ = reply.send(engine.checkpoint());
            }
            Job::Handoff { source, to, reply } => {
                let result = engine.handoff(source, to);
                let _ = reply.send(result);
                publish(engine, &mut rank, shared, seq, epoch);
            }
            Job::Rebalance { threshold, reply } => {
                let result = engine.rebalance(threshold);
                let _ = reply.send(result);
                publish(engine, &mut rank, shared, seq, epoch);
            }
            Job::Subscribe { sub, ack, reply } => {
                let acked = sub.out.try_send(ack).is_ok();
                if acked {
                    subs.push(sub);
                }
                shared.subscribers.store(subs.len(), Ordering::SeqCst);
                let _ = reply.send(Ok(()));
                // seed the new subscriber with the current ranking
                notify_subscribers(&mut subs, shared, seq, epoch);
            }
        }
    }
    // drained: make everything durable before the process goes away
    let _ = engine.checkpoint();
}

/// Drain the engine's score delta into the live index and swap in a fresh
/// snapshot carrying a clone of it.
fn publish<E: ServeEngine>(
    engine: &mut E,
    rank: &mut RankIndex,
    shared: &Shared,
    seq: u64,
    epoch: u64,
) {
    match engine.take_score_delta() {
        Ok(delta) => rank.apply(&delta),
        Err(_) => return, // keep the previous snapshot rather than poison readers
    }
    let snap = Arc::new(Snapshot {
        seq,
        epoch,
        index: rank.clone(),
        info: engine.info(),
    });
    *shared.snapshot.write().expect("snapshot lock") = snap;
}

/// Push a `top_k` event to every subscriber whose watched ranking changed
/// since they last heard (comparing score *bits*, so a same-set
/// score-value change still notifies).
///
/// Each subscriber's entries come from an `O(k + log n)` walk of the
/// snapshot's rank index — there is no per-subscriber re-sort of the full
/// score vector — and `entered`/`left` are set-diffed against the
/// fingerprint of the last event they were sent.
fn notify_subscribers(subs: &mut Vec<Subscription>, shared: &Shared, seq: u64, epoch: u64) {
    if subs.is_empty() {
        return;
    }
    let snap = Arc::clone(&shared.snapshot.read().expect("snapshot lock"));
    subs.retain_mut(|sub| {
        let entries = snap.index.top_entries(sub.k);
        let fingerprint: Vec<(u32, u64)> = entries.iter().map(|&(v, s)| (v, s.to_bits())).collect();
        if fingerprint == sub.last {
            return true;
        }
        let old: HashSet<u32> = sub.last.iter().map(|&(v, _)| v).collect();
        let new: HashSet<u32> = fingerprint.iter().map(|&(v, _)| v).collect();
        // rank order, same as `RankTracker::observe_ranked`
        let entered: Vec<u32> = fingerprint
            .iter()
            .map(|&(v, _)| v)
            .filter(|v| !old.contains(v))
            .collect();
        let left: Vec<u32> = sub
            .last
            .iter()
            .map(|&(v, _)| v)
            .filter(|v| !new.contains(v))
            .collect();
        let line = crate::command::handlers::top_k_event(seq, epoch, &entries, &entered, &left);
        sub.last = fingerprint;
        match sub.out.try_send(line) {
            Ok(()) => true,
            // a subscriber that is gone or not draining its queue is
            // dropped — the update path never waits on a slow consumer
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => false,
        }
    });
    shared.subscribers.store(subs.len(), Ordering::SeqCst);
}
