//! SIGTERM / SIGINT → graceful drain, with no libc crate.
//!
//! The container has no crates.io access, so instead of the `signal-hook`
//! family this declares the two libc symbols it needs (`std` already links
//! libc). The handler only flips an `AtomicBool` — the async-signal-safe
//! minimum — and the server's poll loops notice within one poll interval.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGTERM or SIGINT.
static REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `signal(2)`. `handler` is a function pointer smuggled as
    /// `usize` so the declaration needs no libc types.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Install the handlers (idempotent). Returns whether installation
/// succeeded for both signals.
pub fn install_shutdown_handler() -> bool {
    const SIG_ERR: usize = usize::MAX;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; the handler pointer outlives the process.
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize) != SIG_ERR
            && signal(SIGINT, on_signal as extern "C" fn(i32) as usize) != SIG_ERR
    }
}

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_installs_and_flag_starts_clear() {
        assert!(install_shutdown_handler());
        // the flag may only be set by a real signal; none was sent
        assert!(!shutdown_requested());
    }
}
