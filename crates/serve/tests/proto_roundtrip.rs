//! Protocol round-trip properties: random values and commands driven
//! through the line codec and the JSON layer under adversarial transport
//! conditions — oversized lines, split reads, trailing garbage, invalid
//! UTF-8. The invariant everywhere: malformed input yields a *structured*
//! protocol error (a typed `WireError` or a non-`Line` frame), never a
//! panic and never a frame boundary slipping so that work is half-applied.

use ebc_core::state::Update;
use ebc_serve::json::{self, Value, MAX_DEPTH};
use ebc_serve::proto::{Frame, LineReader, MAX_LINE};
use ebc_serve::{encode_update, parse_request, Command};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::Read;

// ───────────────────────── helpers ──────────────────────────────────────

/// A reader that hands out its input in fixed-size fragments, modelling
/// arbitrary TCP segmentation.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for Chunked {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn frames(data: &[u8], chunk: usize) -> Vec<Frame> {
    let mut reader = LineReader::new(Chunked {
        data: data.to_vec(),
        pos: 0,
        chunk: chunk.max(1),
    });
    let mut out = Vec::new();
    loop {
        match reader
            .read_frame()
            .expect("clean streams never error")
            .expect("chunked reader never blocks")
        {
            Frame::Eof => return out,
            f => out.push(f),
        }
    }
}

/// Tiny deterministic generator (xorshift64) so arbitrarily *nested* JSON
/// values can be derived from one proptest-drawn seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn finite_f64(&mut self) -> f64 {
        loop {
            let x = f64::from_bits(self.next());
            if x.is_finite() {
                return x;
            }
        }
    }

    /// Strings exercising escapes, control chars and multi-byte UTF-8.
    fn string(&mut self) -> String {
        const ALPHABET: &[char] = &[
            'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{7}', 'é', 'ß', '漢', '𝄞',
            '\u{2028}',
        ];
        let len = (self.next() % 8) as usize;
        (0..len)
            .map(|_| ALPHABET[(self.next() as usize) % ALPHABET.len()])
            .collect()
    }

    fn value(&mut self, depth: usize) -> Value {
        let arms = if depth == 0 { 4 } else { 6 };
        match self.next() % arms {
            0 => Value::Null,
            1 => Value::Bool(self.next().is_multiple_of(2)),
            2 => Value::Num(self.finite_f64()),
            3 => Value::Str(self.string()),
            4 => {
                let len = (self.next() % 4) as usize;
                Value::Arr((0..len).map(|_| self.value(depth - 1)).collect())
            }
            _ => {
                let len = (self.next() % 4) as usize;
                Value::Obj(
                    (0..len)
                        .map(|_| (self.string(), self.value(depth - 1)))
                        .collect::<BTreeMap<_, _>>(),
                )
            }
        }
    }
}

proptest! {
    // ────────────────── JSON layer round trips ──────────────────────────

    /// Any value tree survives serialize → parse, and the serialized form
    /// is a fixed point (canonical).
    #[test]
    fn json_value_round_trips(seed in any::<u64>()) {
        let v = Gen(seed | 1).value(3);
        let line = v.to_json();
        let back = json::parse(&line)
            .unwrap_or_else(|e| panic!("rejected own output {line:?}: {e}"));
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(back.to_json(), line);
    }

    /// Score floats cross the wire bitwise: the property the concurrency
    /// suite's `reduce_exact` oracle leans on.
    #[test]
    fn floats_round_trip_bitwise(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        prop_assume!(x.is_finite());
        let line = Value::Num(x).to_json();
        let back = json::parse(&line).unwrap();
        prop_assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{}", line);
    }

    // ────────────────── line codec under fragmentation ──────────────────

    /// However the transport splits the byte stream, the exact same lines
    /// come out — including empty ones and multi-byte UTF-8 on chunk
    /// boundaries.
    #[test]
    fn any_fragmentation_reassembles_the_same_lines(
        seed in any::<u64>(),
        chunk in 1usize..48,
    ) {
        let mut gen = Gen(seed | 1);
        let lines: Vec<String> = (0..(gen.next() % 6 + 1))
            .map(|_| gen.string().replace(['\n', '\r'], "_"))
            .collect();
        let mut wire = Vec::new();
        for line in &lines {
            wire.extend_from_slice(line.as_bytes());
            wire.push(b'\n');
        }
        let got = frames(&wire, chunk);
        let want: Vec<Frame> = lines.iter().map(|l| Frame::Line(l.clone())).collect();
        prop_assert_eq!(got, want, "chunk={}", chunk);
    }

    /// Arbitrary garbage bytes before a valid request never panic the
    /// codec or the parser, and never swallow the valid frame that
    /// follows: every complete line yields *some* structured outcome and
    /// the trailing `ping` still parses.
    #[test]
    fn garbage_bytes_never_panic_and_never_eat_the_next_frame(
        junk in proptest::collection::vec(0u8..=255, 0..64),
        chunk in 1usize..16,
    ) {
        let mut wire = junk.clone();
        wire.push(b'\n');
        wire.extend_from_slice(b"{\"cmd\":\"ping\"}\n");
        let got = frames(&wire, chunk);
        prop_assert!(!got.is_empty());
        for frame in &got[..got.len() - 1] {
            match frame {
                // garbage may itself contain newlines: each piece must
                // come back as a typed error, never silently vanish
                Frame::Line(text) => {
                    if parse_request(text).is_err() {
                        let err = parse_request(text).unwrap_err();
                        prop_assert!(
                            matches!(err.kind, "parse" | "protocol" | "unsupported_backend"),
                            "untyped error kind {:?}",
                            err.kind
                        );
                    }
                }
                Frame::NotUtf8 => {}
                other => prop_assert!(false, "unexpected frame {:?}", other),
            }
        }
        let last = got.last().unwrap();
        match last {
            Frame::Line(text) => {
                prop_assert_eq!(parse_request(text).unwrap().cmd, Command::Ping);
            }
            other => prop_assert!(false, "ping frame lost: {:?}", other),
        }
    }

    // ────────────────── command layer round trips ───────────────────────

    /// Encoded apply batches parse back to the identical update sequence,
    /// with the correlation id echoed — for any vertex ids and op mix.
    #[test]
    fn apply_requests_round_trip(
        pairs in proptest::collection::vec((any::<bool>(), any::<u32>(), any::<u32>()), 1..40),
        id in any::<u64>(),
    ) {
        let updates: Vec<Update> = pairs
            .iter()
            .map(|&(add, u, v)| if add { Update::add(u, v) } else { Update::remove(u, v) })
            .collect();
        let line = json::obj([
            ("id", Value::from(id.min(1 << 53))),
            ("cmd", Value::from("apply")),
            ("backend", Value::from("exact")),
            (
                "updates",
                Value::Arr(updates.iter().map(encode_update).collect()),
            ),
        ])
        .to_json();
        let req = parse_request(&line).unwrap();
        prop_assert_eq!(req.id, Value::from(id.min(1 << 53)));
        prop_assert_eq!(req.cmd, Command::Apply { updates });
    }

    /// A structurally valid JSON value that is not a request object is a
    /// typed error, never a panic — and appending garbage to a valid
    /// request makes it a `parse` error rather than a misread command.
    #[test]
    fn non_requests_and_trailing_garbage_are_typed(seed in any::<u64>()) {
        let v = Gen(seed | 1).value(2);
        let line = v.to_json();
        match parse_request(&line) {
            Ok(req) => prop_assert!(
                matches!(v, Value::Obj(_)),
                "non-object accepted: {:?}",
                req.cmd
            ),
            Err(err) => prop_assert!(
                matches!(err.kind, "parse" | "protocol" | "unsupported_backend"),
                "untyped error kind {:?} for {}",
                err.kind,
                line
            ),
        }
        let trailing = format!("{line}#trailing");
        prop_assert_eq!(parse_request(&trailing).unwrap_err().kind, "parse");
    }
}

proptest! {
    // expensive cases (multi-megabyte lines, deep nesting): a few draws
    // suffice — the boundary logic is size-driven, not value-driven
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A line over `MAX_LINE` is consumed and reported with its true
    /// length; the next frame parses as if the flood never happened.
    #[test]
    fn oversized_lines_are_skipped_with_exact_accounting(
        excess in 1usize..4096,
        chunk in 1usize..3,
    ) {
        let total = MAX_LINE + excess;
        let mut wire = vec![b'x'; total];
        wire.push(b'\n');
        wire.extend_from_slice(b"{\"cmd\":\"stats\"}\n");
        // huge chunks for the flood (speed), tiny ones near the boundary
        // are covered by the unit suite; chunk here varies the tail reads
        let got = frames(&wire, 1 << (16 + chunk));
        prop_assert_eq!(got.len(), 2);
        match &got[0] {
            Frame::Oversized(n) => prop_assert_eq!(*n, total),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
        match &got[1] {
            Frame::Line(text) => {
                prop_assert_eq!(parse_request(text).unwrap().cmd, Command::Stats);
            }
            other => prop_assert!(false, "frame after flood lost: {:?}", other),
        }
    }

    /// Nesting beyond `MAX_DEPTH` is rejected by the depth guard (a typed
    /// parse error), not by blowing the stack.
    #[test]
    fn hostile_nesting_hits_the_depth_guard(extra in 1usize..2000) {
        let depth = MAX_DEPTH + extra;
        let mut line = "[".repeat(depth);
        line.push_str(&"]".repeat(depth));
        prop_assert!(json::parse(&line).is_err());
        prop_assert_eq!(parse_request(&line).unwrap_err().kind, "parse");
    }
}
