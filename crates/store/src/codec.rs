//! Fixed-width per-vertex record codecs.
//!
//! A record holds one source's `BD[s]` as three contiguous columns —
//! `[d column][σ column][δ column]` — so a column can be scanned without
//! deserialising the rest (the paper's distance-first skip check).

use ebc_graph::UNREACHABLE;

/// On-disk encoding of one `BD[s]` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// The paper's §5.1 layout: 1-byte distance (255 ⇒ unreachable), 2-byte
    /// shortest-path count, 8-byte dependency — 11 bytes per vertex.
    ///
    /// **Lossy**: distances above 254 and σ above 65 534 saturate, exactly as
    /// in the paper's format. Use [`CodecKind::Wide`] when path counts can be
    /// large; the Table-4 ablation bench quantifies the trade-off.
    Paper,
    /// Lossless layout: 4-byte distance, 8-byte σ, 8-byte δ — 20 bytes per
    /// vertex. The default.
    Wide,
}

impl CodecKind {
    /// Identifier persisted in store headers.
    pub fn id(self) -> u8 {
        match self {
            CodecKind::Paper => 1,
            CodecKind::Wide => 2,
        }
    }

    /// Inverse of [`CodecKind::id`].
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(CodecKind::Paper),
            2 => Some(CodecKind::Wide),
            _ => None,
        }
    }

    /// Width of one distance entry in bytes.
    pub fn d_width(self) -> usize {
        match self {
            CodecKind::Paper => 1,
            CodecKind::Wide => 4,
        }
    }

    /// Width of one σ entry in bytes.
    pub fn sigma_width(self) -> usize {
        match self {
            CodecKind::Paper => 2,
            CodecKind::Wide => 8,
        }
    }

    /// Width of one δ entry in bytes (always an f64).
    pub fn delta_width(self) -> usize {
        8
    }

    /// Total record size for `n` vertices.
    pub fn record_size(self, n: usize) -> usize {
        n * (self.d_width() + self.sigma_width() + self.delta_width())
    }

    /// Byte offset of the σ column inside a record.
    pub fn sigma_column_offset(self, n: usize) -> usize {
        n * self.d_width()
    }

    /// Byte offset of the δ column inside a record.
    pub fn delta_column_offset(self, n: usize) -> usize {
        n * (self.d_width() + self.sigma_width())
    }

    /// Encode one distance at `buf` (must be `d_width` bytes).
    #[inline]
    pub fn encode_d(self, d: u32, buf: &mut [u8]) {
        match self {
            CodecKind::Paper => {
                buf[0] = if d == UNREACHABLE {
                    u8::MAX
                } else {
                    d.min(254) as u8
                };
            }
            CodecKind::Wide => buf.copy_from_slice(&d.to_le_bytes()),
        }
    }

    /// Decode one distance.
    #[inline]
    pub fn decode_d(self, buf: &[u8]) -> u32 {
        match self {
            CodecKind::Paper => {
                if buf[0] == u8::MAX {
                    UNREACHABLE
                } else {
                    buf[0] as u32
                }
            }
            CodecKind::Wide => u32::from_le_bytes(buf[..4].try_into().expect("4-byte d")),
        }
    }

    /// Encode one σ.
    #[inline]
    pub fn encode_sigma(self, sigma: u64, buf: &mut [u8]) {
        match self {
            CodecKind::Paper => {
                buf[..2].copy_from_slice(&(sigma.min(u16::MAX as u64) as u16).to_le_bytes())
            }
            CodecKind::Wide => buf.copy_from_slice(&sigma.to_le_bytes()),
        }
    }

    /// Decode one σ.
    #[inline]
    pub fn decode_sigma(self, buf: &[u8]) -> u64 {
        match self {
            CodecKind::Paper => u16::from_le_bytes(buf[..2].try_into().expect("2-byte σ")) as u64,
            CodecKind::Wide => u64::from_le_bytes(buf[..8].try_into().expect("8-byte σ")),
        }
    }

    /// Encode a full record into `out` (length `record_size(n)`).
    pub fn encode_record(self, d: &[u32], sigma: &[u64], delta: &[f64], out: &mut [u8]) {
        let n = d.len();
        debug_assert_eq!(out.len(), self.record_size(n));
        let dw = self.d_width();
        let sw = self.sigma_width();
        let (d_col, rest) = out.split_at_mut(n * dw);
        let (s_col, del_col) = rest.split_at_mut(n * sw);
        for (i, &x) in d.iter().enumerate() {
            self.encode_d(x, &mut d_col[i * dw..(i + 1) * dw]);
        }
        for (i, &x) in sigma.iter().enumerate() {
            self.encode_sigma(x, &mut s_col[i * sw..(i + 1) * sw]);
        }
        for (i, &x) in delta.iter().enumerate() {
            del_col[i * 8..(i + 1) * 8].copy_from_slice(&x.to_le_bytes());
        }
    }

    /// Decode a full record into the provided arrays.
    pub fn decode_record(self, buf: &[u8], d: &mut [u32], sigma: &mut [u64], delta: &mut [f64]) {
        let n = d.len();
        debug_assert_eq!(buf.len(), self.record_size(n));
        let dw = self.d_width();
        let sw = self.sigma_width();
        let (d_col, rest) = buf.split_at(n * dw);
        let (s_col, del_col) = rest.split_at(n * sw);
        for i in 0..n {
            d[i] = self.decode_d(&d_col[i * dw..(i + 1) * dw]);
            sigma[i] = self.decode_sigma(&s_col[i * sw..(i + 1) * sw]);
            delta[i] =
                f64::from_le_bytes(del_col[i * 8..(i + 1) * 8].try_into().expect("8-byte δ"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_record_size() {
        assert_eq!(CodecKind::Paper.record_size(10), 110); // the paper's 11 B/vertex
        assert_eq!(CodecKind::Wide.record_size(10), 200);
        assert_eq!(CodecKind::Paper.sigma_column_offset(10), 10);
        assert_eq!(CodecKind::Wide.delta_column_offset(10), 120);
    }

    #[test]
    fn id_roundtrip() {
        for c in [CodecKind::Paper, CodecKind::Wide] {
            assert_eq!(CodecKind::from_id(c.id()), Some(c));
        }
        assert_eq!(CodecKind::from_id(0), None);
        assert_eq!(CodecKind::from_id(9), None);
    }

    #[test]
    fn wide_record_roundtrip_lossless() {
        let c = CodecKind::Wide;
        let d = vec![0, 3, UNREACHABLE, 1_000_000];
        let sigma = vec![1, u64::MAX, 0, 123_456_789_012];
        let delta = vec![0.0, -1.5, f64::MAX, 1e-300];
        let mut buf = vec![0u8; c.record_size(4)];
        c.encode_record(&d, &sigma, &delta, &mut buf);
        let (mut d2, mut s2, mut del2) = (vec![0; 4], vec![0; 4], vec![0.0; 4]);
        c.decode_record(&buf, &mut d2, &mut s2, &mut del2);
        assert_eq!(d2, d);
        assert_eq!(s2, sigma);
        assert_eq!(del2, delta);
    }

    #[test]
    fn paper_record_roundtrip_within_range() {
        let c = CodecKind::Paper;
        let d = vec![0, 17, 254, UNREACHABLE];
        let sigma = vec![1, 65_534, 42, 0];
        let delta = vec![0.5, 2.0, -7.25, 0.0];
        let mut buf = vec![0u8; c.record_size(4)];
        c.encode_record(&d, &sigma, &delta, &mut buf);
        let (mut d2, mut s2, mut del2) = (vec![0; 4], vec![0; 4], vec![0.0; 4]);
        c.decode_record(&buf, &mut d2, &mut s2, &mut del2);
        assert_eq!(d2, d);
        assert_eq!(s2, sigma);
        assert_eq!(del2, delta);
    }

    #[test]
    fn paper_codec_saturates() {
        let c = CodecKind::Paper;
        let mut b = [0u8; 1];
        c.encode_d(300, &mut b);
        assert_eq!(c.decode_d(&b), 254);
        c.encode_d(UNREACHABLE, &mut b);
        assert_eq!(c.decode_d(&b), UNREACHABLE);
        let mut s = [0u8; 2];
        c.encode_sigma(1 << 40, &mut s);
        assert_eq!(c.decode_sigma(&s), u16::MAX as u64);
    }
}
