//! The on-disk `BD[·]` store (the paper's *DO* configuration), format v2.
//!
//! Layout of the data file (byte-level spec and rationale in DESIGN.md §7):
//!
//! ```text
//! offset  size  field
//!      0     7  magic "EBCBD2\n"
//!      7     1  codec id (see CodecKind::id)
//!      8     8  n     u64 LE — live vertex count
//!     16     8  count u64 LE — committed source count
//!     24     8  cap   u64 LE — slab capacity in vertex slots (cap ≥ n)
//!     32     8  reserved (zero)
//!     40     —  records: count × stride, stride = codec.record_size(cap)
//! ```
//!
//! Every record is one *capacity slab*: its three columns (`d`, `σ`, `δ`)
//! are sized by `cap`, not `n`, and the `n..cap` tail of each column holds
//! the canonical empty values (`d = UNREACHABLE`, `σ = 0`, `δ = 0`). While
//! headroom remains, [`BdStore::grow_vertex`] is a single 8-byte header
//! update — O(1) I/O — because slot `n` of every record already decodes to
//! exactly the state a fresh vertex must have. Only when `n == cap` is the
//! file re-slabbed (one guarded rewrite at a geometrically larger capacity).
//!
//! The source-id table is kept in a sidecar `<path>.idx` (always replaced
//! via temp-file + rename), and every multi-file mutation is guarded by the
//! `<path>.wal` write-ahead intent record so [`DiskBdStore::open`] can roll
//! a torn `add_source`/re-slab forward or back (see [`crate::recovery`]).
//!
//! Legacy v1 files (magic `EBCBD1\n`, 24-byte header, `cap == n`) are still
//! readable; the first write-capable operation migrates them to v2 in one
//! guarded rewrite.

use crate::codec::CodecKind;
use crate::recovery::{self, Geometry, Intent, IntentOp, RecoveryAction};
use ebc_core::bd::{
    BatchSourceFn, BatchStats, BdError, BdResult, BdStore, ExportedRecord, SourceFn, SourceViewMut,
};
use ebc_graph::{FxHashMap, VertexId, UNREACHABLE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub(crate) const MAGIC_V1: &[u8; 7] = b"EBCBD1\n";
pub(crate) const MAGIC_V2: &[u8; 7] = b"EBCBD2\n";
pub(crate) const HEADER_LEN_V1: u64 = 7 + 1 + 8 + 8;
pub(crate) const HEADER_LEN_V2: u64 = 7 + 1 + 8 + 8 + 8 + 8;

/// On-disk format generation of an open store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatVersion {
    /// Legacy fixed layout: record stride `record_size(n)`, no headroom, no
    /// intent journal. Read-compatible; migrated on first write.
    V1,
    /// Slab layout with growth headroom and crash recovery.
    V2,
}

/// Parsed data-file header (both format generations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Header {
    pub version: FormatVersion,
    pub codec: CodecKind,
    pub n: usize,
    pub count: usize,
    pub cap: usize,
}

impl Header {
    /// Header length in bytes for this version.
    pub fn len(&self) -> u64 {
        match self.version {
            FormatVersion::V1 => HEADER_LEN_V1,
            FormatVersion::V2 => HEADER_LEN_V2,
        }
    }

    /// On-disk bytes of one record (the slab stride).
    pub fn stride(&self) -> usize {
        self.codec.record_size(self.cap)
    }

    /// Byte offset of record `slot`.
    pub fn record_offset(&self, slot: usize) -> u64 {
        self.len() + (slot * self.stride()) as u64
    }

    /// Exact data-file length this header implies.
    pub fn expected_len(&self) -> u64 {
        self.record_offset(self.count)
    }

    /// Parse the header at the start of `file`.
    pub fn read_from(file: &mut File) -> BdResult<Header> {
        file.seek(SeekFrom::Start(0))?;
        let mut fixed = [0u8; HEADER_LEN_V1 as usize];
        file.read_exact(&mut fixed)
            .map_err(|_| BdError::Corrupt("truncated header".into()))?;
        let version = match &fixed[..7] {
            m if m == MAGIC_V1 => FormatVersion::V1,
            m if m == MAGIC_V2 => FormatVersion::V2,
            _ => return Err(BdError::Corrupt("bad magic".into())),
        };
        let codec = CodecKind::from_id(fixed[7])
            .ok_or_else(|| BdError::Corrupt(format!("unknown codec id {}", fixed[7])))?;
        let n = u64::from_le_bytes(fixed[8..16].try_into().expect("8 bytes")) as usize;
        let count = u64::from_le_bytes(fixed[16..24].try_into().expect("8 bytes")) as usize;
        let cap = match version {
            FormatVersion::V1 => n,
            FormatVersion::V2 => {
                let mut ext = [0u8; 16];
                file.read_exact(&mut ext)
                    .map_err(|_| BdError::Corrupt("truncated v2 header".into()))?;
                let cap = u64::from_le_bytes(ext[..8].try_into().expect("8 bytes")) as usize;
                if cap < n {
                    return Err(BdError::Corrupt(format!(
                        "slab capacity {cap} below vertex count {n}"
                    )));
                }
                cap
            }
        };
        Ok(Header {
            version,
            codec,
            n,
            count,
            cap,
        })
    }

    /// Write a full v2 header at the start of `file`.
    pub fn write_to(&self, file: &mut File) -> BdResult<()> {
        debug_assert_eq!(self.version, FormatVersion::V2);
        let mut buf = Vec::with_capacity(HEADER_LEN_V2 as usize);
        buf.extend_from_slice(MAGIC_V2);
        buf.push(self.codec.id());
        buf.extend_from_slice(&(self.n as u64).to_le_bytes());
        buf.extend_from_slice(&(self.count as u64).to_le_bytes());
        buf.extend_from_slice(&(self.cap as u64).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&buf)?;
        Ok(())
    }
}

/// Update the header's source-count field in place (offset 16, both
/// versions) — a single 8-byte write, atomic under the crash model.
pub(crate) fn write_header_count(file: &mut File, count: u64) -> BdResult<()> {
    file.seek(SeekFrom::Start(16))?;
    file.write_all(&count.to_le_bytes())?;
    Ok(())
}

/// Update the header's live-vertex-count field in place (offset 8).
pub(crate) fn write_header_n(file: &mut File, n: u64) -> BdResult<()> {
    file.seek(SeekFrom::Start(8))?;
    file.write_all(&n.to_le_bytes())?;
    Ok(())
}

/// Path of the `.idx` sidecar for a data file.
pub(crate) fn sidecar_for(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".idx");
    PathBuf::from(p)
}

pub(crate) const EXPORT_MAGIC: &[u8; 7] = b"EBCEXP\n";

/// Path of the export journal [`BdStore::export_source`] writes for source
/// `s` of the data file at `path` (`<path>.exp<s>`).
pub fn export_path(path: &Path, s: VertexId) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(format!(".exp{s}"));
    PathBuf::from(p)
}

/// A parsed donor-side export journal: the serialized record of one source
/// mid-handoff, durable from before the donor removed it until the handoff
/// committed (see DESIGN.md §8).
///
/// Layout of `<path>.exp<s>`:
///
/// ```text
/// offset  size  field
///      0     7  magic "EBCEXP\n"
///      7     1  codec id
///      8     4  source id, u32 LE
///     12     8  tag, u64 LE (opaque caller token; the sharded layer
///                            stores the recipient shard id)
///     20     8  n, u64 LE — live vertex count at export time
///     28     V  payload: one codec-encoded record of n slots
///   28+V     8  FNV-1a checksum of bytes 0..28+V, u64 LE
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExportJournal {
    /// The exported source.
    pub source: VertexId,
    /// Opaque caller token journaled with the export (recipient shard id
    /// for sharded callers).
    pub tag: u64,
    /// Distances from the source.
    pub d: Vec<u32>,
    /// Shortest-path counts from the source.
    pub sigma: Vec<u64>,
    /// Accumulated dependencies.
    pub delta: Vec<f64>,
}

impl ExportJournal {
    /// The journaled payload as an [`ExportedRecord`] ready to install in a
    /// recipient store.
    pub fn into_record(self) -> ExportedRecord {
        ExportedRecord {
            source: self.source,
            d: self.d,
            sigma: self.sigma,
            delta: self.delta,
        }
    }
}

/// Parse an export journal file. Returns `Ok(None)` when the file is torn
/// or unparsable — by write ordering a torn journal proves the guarded
/// export never began, so callers discard it.
pub fn read_export_journal(path: &Path) -> BdResult<Option<ExportJournal>> {
    let raw = std::fs::read(path)?;
    if raw.len() < 28 + 8 || &raw[..7] != EXPORT_MAGIC {
        return Ok(None);
    }
    let ck = u64::from_le_bytes(raw[raw.len() - 8..].try_into().expect("8 bytes"));
    if ck != recovery::fnv1a64(&raw[..raw.len() - 8]) {
        return Ok(None);
    }
    let codec = match CodecKind::from_id(raw[7]) {
        Some(c) => c,
        None => return Ok(None),
    };
    let source = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes"));
    let tag = u64::from_le_bytes(raw[12..20].try_into().expect("8 bytes"));
    let n = u64::from_le_bytes(raw[20..28].try_into().expect("8 bytes")) as usize;
    if raw.len() != 28 + codec.record_size(n) + 8 {
        return Ok(None);
    }
    let mut d = vec![0u32; n];
    let mut sigma = vec![0u64; n];
    let mut delta = vec![0f64; n];
    codec.decode_record(&raw[28..raw.len() - 8], &mut d, &mut sigma, &mut delta);
    Ok(Some(ExportJournal {
        source,
        tag,
        d,
        sigma,
        delta,
    }))
}

/// Export journals pending next to the data file at `path`, in ascending
/// source order. Used by the sharded layer's `open()` to resolve handoffs
/// a crash left in flight.
pub fn pending_exports(path: &Path) -> BdResult<Vec<PathBuf>> {
    let parent = path.parent().unwrap_or(Path::new("."));
    let prefix = {
        let mut name = path
            .file_name()
            .ok_or_else(|| BdError::Corrupt("store path has no file name".into()))?
            .to_os_string();
        name.push(".exp");
        name.to_string_lossy().into_owned()
    };
    let mut out: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(parent)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(suffix) = name.strip_prefix(&prefix) {
            if let Ok(s) = suffix.parse::<u64>() {
                out.push((s, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|&(s, _)| s);
    Ok(out.into_iter().map(|(_, p)| p).collect())
}

/// Read the sidecar's self-described id table.
pub(crate) fn read_sidecar_ids(path: &Path) -> BdResult<Vec<VertexId>> {
    let raw = std::fs::read(sidecar_for(path))
        .map_err(|_| BdError::Corrupt("missing sidecar index".into()))?;
    if raw.len() < 8 {
        return Err(BdError::Corrupt("sidecar too short".into()));
    }
    let count = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")) as usize;
    if raw.len() < 8 + 4 * count {
        return Err(BdError::Corrupt("sidecar truncated".into()));
    }
    Ok((0..count)
        .map(|i| u32::from_le_bytes(raw[8 + 4 * i..12 + 4 * i].try_into().expect("4 bytes")))
        .collect())
}

/// Replace the sidecar atomically (temp file + rename), so a crash can
/// never leave a half-written id table: readers see the old table or the
/// new one, nothing in between.
pub(crate) fn write_sidecar_atomic(path: &Path, order: &[VertexId]) -> BdResult<()> {
    let sidecar = sidecar_for(path);
    let tmp = {
        let mut p = sidecar.as_os_str().to_owned();
        p.push(".tmp");
        PathBuf::from(p)
    };
    let mut buf = Vec::with_capacity(8 + 4 * order.len());
    buf.extend_from_slice(&(order.len() as u64).to_le_bytes());
    for &s in order {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    std::fs::write(&tmp, buf)?;
    std::fs::rename(&tmp, &sidecar)?;
    Ok(())
}

/// Slab sizing rule: headroom of `max(8, n/8)` vertex slots beyond `n`.
/// Geometric headroom keeps `grow_vertex` amortized O(1): at most one
/// re-slab per `Θ(n)` growths, each costing one sequential file rewrite.
pub(crate) fn slab_cap(n: usize) -> usize {
    n + (n / 8).max(8)
}

/// Byte budget for one batched run read. A contiguous slot run longer than
/// this is serviced in sequential chunks (one seek each, still sequential
/// on disk), bounding the batch buffer instead of materialising an
/// arbitrarily large run — at paper scale a run can span thousands of
/// multi-megabyte records. 256 KiB keeps the buffer cache-resident; the
/// committed `BENCH_store_io.json` sweep picked it.
const MAX_RUN_BYTES: usize = 256 << 10;

/// One maximal run of contiguous record slots inside a [`BatchPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotRun {
    /// First record slot of the run.
    pub first_slot: usize,
    /// The affected sources occupying `first_slot..first_slot + len`, in
    /// slot order.
    pub sources: Vec<VertexId>,
}

/// Run-sorted I/O schedule for one batched update: the affected slots,
/// sorted and grouped into maximal contiguous runs. Each run is serviced by
/// one random seek + sequential reads (chunked at a fixed byte budget so
/// the buffer stays bounded), and dirty records are written back in
/// coalesced sub-runs — at most one seek per contiguous dirty stretch —
/// instead of one seek+read+write per affected source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchPlan {
    runs: Vec<SlotRun>,
}

impl BatchPlan {
    /// Build the plan from `(slot, source)` pairs (any order).
    pub fn build(mut affected: Vec<(usize, VertexId)>) -> Self {
        affected.sort_unstable_by_key(|&(slot, _)| slot);
        let mut runs: Vec<SlotRun> = Vec::new();
        for (slot, s) in affected {
            match runs.last_mut() {
                Some(run) if run.first_slot + run.sources.len() == slot => run.sources.push(s),
                _ => runs.push(SlotRun {
                    first_slot: slot,
                    sources: vec![s],
                }),
            }
        }
        BatchPlan { runs }
    }

    /// The contiguous runs, in ascending slot order.
    pub fn runs(&self) -> &[SlotRun] {
        &self.runs
    }

    /// Number of read seeks the plan issues (one per run).
    pub fn seeks(&self) -> usize {
        self.runs.len()
    }

    /// Total records covered by the plan.
    pub fn records(&self) -> usize {
        self.runs.iter().map(|r| r.sources.len()).sum()
    }
}

/// Out-of-core `BD` store: one columnar slab record per source, updated in
/// place, with batched I/O and crash recovery (format v2).
pub struct DiskBdStore {
    file: File,
    path: PathBuf,
    codec: CodecKind,
    version: FormatVersion,
    n: usize,
    cap: usize,
    order: Vec<VertexId>,
    index: FxHashMap<VertexId, usize>,
    recovered: Option<RecoveryAction>,
    // reusable scratch (decode/encode buffers, batch run buffer)
    raw: Vec<u8>,
    batch: Vec<u8>,
    d: Vec<u32>,
    sigma: Vec<u64>,
    delta: Vec<f64>,
    /// Record bytes read from disk (experiment instrumentation; excludes
    /// fixed-size header/sidecar/intent metadata).
    pub bytes_read: u64,
    /// Record bytes written to disk.
    pub bytes_written: u64,
}

impl DiskBdStore {
    /// Create a fresh v2 store at `path` for records of `n` vertices, with
    /// the default growth headroom ([`DiskBdStore::capacity`] slots).
    pub fn create<P: AsRef<Path>>(path: P, n: usize, codec: CodecKind) -> BdResult<Self> {
        Self::create_with_capacity(path, n, slab_cap(n), codec)
    }

    /// Create a fresh v2 store with an explicit slab capacity (`cap` is
    /// clamped up to `n`). Useful to control exactly when re-slabbing kicks
    /// in; most callers want [`DiskBdStore::create`].
    pub fn create_with_capacity<P: AsRef<Path>>(
        path: P,
        n: usize,
        cap: usize,
        codec: CodecKind,
    ) -> BdResult<Self> {
        let path = path.as_ref().to_path_buf();
        let cap = cap.max(n);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let header = Header {
            version: FormatVersion::V2,
            codec,
            n,
            count: 0,
            cap,
        };
        header.write_to(&mut file)?;
        write_sidecar_atomic(&path, &[])?;
        recovery::clear_intent(&path)?;
        Ok(DiskBdStore {
            file,
            path,
            codec,
            version: FormatVersion::V2,
            n,
            cap,
            order: Vec::new(),
            index: FxHashMap::default(),
            recovered: None,
            raw: Vec::new(),
            batch: Vec::new(),
            d: Vec::new(),
            sigma: Vec::new(),
            delta: Vec::new(),
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// Open an existing store (either format generation): run crash
    /// recovery if an intent record is pending, then validate header,
    /// sidecar, and exact file length.
    pub fn open<P: AsRef<Path>>(path: P) -> BdResult<Self> {
        let path = path.as_ref().to_path_buf();
        let recovered = recovery::run_recovery(&path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let header = Header::read_from(&mut file)?;
        let order = read_sidecar_ids(&path)?;
        if order.len() != header.count {
            return Err(BdError::Corrupt(format!(
                "sidecar/header disagree: {} vs {}",
                order.len(),
                header.count
            )));
        }
        let expect_len = header.expected_len();
        let actual = file.metadata()?.len();
        if actual < expect_len {
            return Err(BdError::Corrupt(format!(
                "data file too short: {actual} < {expect_len}"
            )));
        }
        if actual > expect_len {
            return Err(BdError::Corrupt(format!(
                "trailing garbage: data file is {actual} bytes, header implies {expect_len}"
            )));
        }
        let index = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        Ok(DiskBdStore {
            file,
            path,
            codec: header.codec,
            version: header.version,
            n: header.n,
            cap: header.cap,
            order,
            index,
            recovered,
            raw: Vec::new(),
            batch: Vec::new(),
            d: Vec::new(),
            sigma: Vec::new(),
            delta: Vec::new(),
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// The codec in use.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Path of the data file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The format generation this store is currently persisted as (v1 only
    /// until the first write-capable operation migrates the file).
    pub fn version(&self) -> FormatVersion {
        self.version
    }

    /// Slab capacity in vertex slots (`≥ n()`); `grow_vertex` is O(1) I/O
    /// until the live count reaches it.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Remaining O(1) vertex growths before the next re-slab.
    pub fn headroom(&self) -> usize {
        self.cap - self.n
    }

    /// What `open()` had to repair, if anything — `None` after a clean
    /// shutdown.
    pub fn last_recovery(&self) -> Option<RecoveryAction> {
        self.recovered
    }

    /// Total on-disk record bytes (excluding header/sidecar) — the quantity
    /// the paper sizes as `O(n²/p)` per machine (§5.2). Slab headroom is
    /// physical file space and is included.
    pub fn data_bytes(&self) -> u64 {
        (self.order.len() * self.stride()) as u64
    }

    fn header(&self) -> Header {
        Header {
            version: self.version,
            codec: self.codec,
            n: self.n,
            count: self.order.len(),
            cap: self.cap,
        }
    }

    fn stride(&self) -> usize {
        self.header().stride()
    }

    #[inline]
    fn record_offset(&self, slot: usize) -> u64 {
        self.header().record_offset(slot)
    }

    fn slot(&self, s: VertexId) -> BdResult<usize> {
        self.index.get(&s).copied().ok_or(BdError::UnknownSource(s))
    }

    /// Size the scratch arrays to one slab and fill the `n..cap` tail with
    /// the canonical empty values.
    fn reset_scratch_tail(&mut self) {
        self.d.resize(self.cap, UNREACHABLE);
        self.sigma.resize(self.cap, 0);
        self.delta.resize(self.cap, 0.0);
        for i in self.n..self.cap {
            self.d[i] = UNREACHABLE;
            self.sigma[i] = 0;
            self.delta[i] = 0.0;
        }
    }

    fn read_record(&mut self, slot: usize) -> BdResult<()> {
        let size = self.stride();
        let off = self.record_offset(slot);
        self.raw.resize(size, 0);
        self.file.seek(SeekFrom::Start(off))?;
        self.file
            .read_exact(&mut self.raw)
            .map_err(|_| BdError::Corrupt(format!("record {slot} truncated")))?;
        self.bytes_read += size as u64;
        self.d.resize(self.cap, 0);
        self.sigma.resize(self.cap, 0);
        self.delta.resize(self.cap, 0.0);
        self.codec
            .decode_record(&self.raw, &mut self.d, &mut self.sigma, &mut self.delta);
        Ok(())
    }

    fn write_record(&mut self, slot: usize) -> BdResult<()> {
        let size = self.stride();
        let off = self.record_offset(slot);
        self.raw.resize(size, 0);
        self.codec
            .encode_record(&self.d, &self.sigma, &self.delta, &mut self.raw);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&self.raw)?;
        self.bytes_written += size as u64;
        Ok(())
    }

    /// Migrate a v1 file to the v2 slab layout. All write-capable entry
    /// points (`update_with`, `update_batch`, `add_source`, `grow_vertex`)
    /// call this first, so a v1 file is rewritten exactly once, on first
    /// write; pure reads (`peek_pair`, `sources`) never migrate.
    fn ensure_writable(&mut self) -> BdResult<()> {
        if self.version == FormatVersion::V1 {
            self.rewrite_file(self.n, slab_cap(self.n), IntentOp::Migrate)?;
        }
        Ok(())
    }

    /// Guarded whole-file rewrite (re-slab or v1→v2 migration): write the
    /// intent, stream every record into `<path>.tmp` at the new geometry,
    /// sync, rename over the data file, commit. Record contents are
    /// preserved bit-identically in the live `..n` prefix; the new tail is
    /// the canonical empty value.
    fn rewrite_file(&mut self, new_n: usize, new_cap: usize, op: IntentOp) -> BdResult<()> {
        self.rewrite_file_inner(new_n, new_cap, op, None)
    }

    fn rewrite_file_inner(
        &mut self,
        new_n: usize,
        new_cap: usize,
        op: IntentOp,
        crash: Option<RewriteCrash>,
    ) -> BdResult<()> {
        debug_assert!(new_cap >= new_n && new_n >= self.n);
        let old_header = self.header();
        let new_header = Header {
            version: FormatVersion::V2,
            codec: self.codec,
            n: new_n,
            count: self.order.len(),
            cap: new_cap,
        };
        recovery::write_intent(
            &self.path,
            &Intent {
                op,
                source: 0,
                payload_checksum: 0,
                old: Geometry::of(&old_header),
                new: Geometry::of(&new_header),
            },
        )?;
        if crash == Some(RewriteCrash::AfterIntent) {
            return Ok(());
        }
        let tmp_path = self.path.with_extension("tmp");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        new_header.write_to(&mut tmp)?;
        let new_stride = new_header.stride();
        let mut out = vec![0u8; new_stride];
        for slot in 0..self.order.len() {
            self.read_record(slot)?; // old geometry
            self.d.resize(new_cap, UNREACHABLE);
            self.sigma.resize(new_cap, 0);
            self.delta.resize(new_cap, 0.0);
            self.codec
                .encode_record(&self.d, &self.sigma, &self.delta, &mut out);
            tmp.write_all(&out)?;
            self.bytes_written += new_stride as u64;
        }
        tmp.sync_data()?;
        if crash == Some(RewriteCrash::AfterTmp) {
            return Ok(());
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.version = FormatVersion::V2;
        self.n = new_n;
        self.cap = new_cap;
        if crash == Some(RewriteCrash::AfterRename) {
            return Ok(());
        }
        recovery::clear_intent(&self.path)?;
        Ok(())
    }

    /// Force data and index to durable storage.
    pub fn flush(&mut self) -> BdResult<()> {
        self.file.sync_data()?;
        write_sidecar_atomic(&self.path, &self.order)?;
        Ok(())
    }
}

impl BdStore for DiskBdStore {
    fn n(&self) -> usize {
        self.n
    }

    fn flush(&mut self) -> BdResult<()> {
        DiskBdStore::flush(self)
    }

    fn sources(&self) -> Vec<VertexId> {
        self.order.clone()
    }

    fn sources_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend_from_slice(&self.order);
    }

    fn num_sources(&self) -> usize {
        self.order.len()
    }

    /// Read only the span of the distance column covering the two endpoints
    /// — one sequential read, no `σ`/`δ` I/O. This is the paper's §5.1 skip
    /// check ("after loading the distances from disk, we check the distance
    /// for the endpoints"), tightened to the `[min(a,b), max(a,b)]` span.
    fn peek_pair(&mut self, s: VertexId, a: VertexId, b: VertexId) -> BdResult<(u32, u32)> {
        let slot = self.slot(s)?;
        let dw = self.codec.d_width();
        let base = self.record_offset(slot);
        let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
        let span = (hi - lo + 1) * dw;
        self.raw.resize(span.max(self.raw.len()), 0);
        self.file.seek(SeekFrom::Start(base + (lo * dw) as u64))?;
        self.file
            .read_exact(&mut self.raw[..span])
            .map_err(|_| BdError::Corrupt("distance column truncated".into()))?;
        self.bytes_read += span as u64;
        let at = |v: usize| {
            self.codec
                .decode_d(&self.raw[(v - lo) * dw..(v - lo) * dw + dw])
        };
        Ok((at(a as usize), at(b as usize)))
    }

    fn update_with(&mut self, s: VertexId, f: SourceFn<'_>) -> BdResult<bool> {
        let slot = self.slot(s)?;
        self.ensure_writable()?;
        self.read_record(slot)?;
        let n = self.n;
        let dirty = f(SourceViewMut {
            d: &mut self.d[..n],
            sigma: &mut self.sigma[..n],
            delta: &mut self.delta[..n],
        });
        if dirty {
            self.write_record(slot)?;
        }
        Ok(dirty)
    }

    /// Coalesced batch path: per-source constant-offset peeks first, then
    /// the affected records are read in contiguous [`BatchPlan`] runs (one
    /// seek per run) and dirty records written back in coalesced sub-runs.
    fn update_batch(
        &mut self,
        sources: &[VertexId],
        u: VertexId,
        v: VertexId,
        f: BatchSourceFn<'_>,
    ) -> BdResult<BatchStats> {
        self.ensure_writable()?;
        let mut stats = BatchStats::default();
        let mut affected: Vec<(usize, VertexId)> = Vec::with_capacity(sources.len());
        for &s in sources {
            let (a, b) = self.peek_pair(s, u, v)?;
            if a == b {
                stats.skipped += 1;
            } else {
                affected.push((self.slot(s)?, s));
            }
        }
        let plan = BatchPlan::build(affected);
        let stride = self.stride();
        let n = self.n;
        // keep the run buffer bounded (and cache-resident): long runs are
        // serviced in sequential chunks of up to MAX_RUN_BYTES
        let chunk_records = (MAX_RUN_BYTES / stride).max(1);
        let mut dirty: Vec<bool> = Vec::new();
        for run in plan.runs() {
            for (ci, chunk) in run.sources.chunks(chunk_records).enumerate() {
                let first_slot = run.first_slot + ci * chunk_records;
                let bytes = chunk.len() * stride;
                let off = self.record_offset(first_slot);
                self.batch.resize(bytes, 0);
                self.file.seek(SeekFrom::Start(off))?;
                self.file.read_exact(&mut self.batch).map_err(|_| {
                    BdError::Corrupt(format!("record run at slot {first_slot} truncated"))
                })?;
                self.bytes_read += bytes as u64;
                dirty.clear();
                dirty.resize(chunk.len(), false);
                for (i, &s) in chunk.iter().enumerate() {
                    self.d.resize(self.cap, 0);
                    self.sigma.resize(self.cap, 0);
                    self.delta.resize(self.cap, 0.0);
                    self.codec.decode_record(
                        &self.batch[i * stride..(i + 1) * stride],
                        &mut self.d,
                        &mut self.sigma,
                        &mut self.delta,
                    );
                    stats.processed += 1;
                    let changed = f(
                        s,
                        SourceViewMut {
                            d: &mut self.d[..n],
                            sigma: &mut self.sigma[..n],
                            delta: &mut self.delta[..n],
                        },
                    );
                    if changed {
                        self.codec.encode_record(
                            &self.d,
                            &self.sigma,
                            &self.delta,
                            &mut self.batch[i * stride..(i + 1) * stride],
                        );
                        dirty[i] = true;
                        stats.written += 1;
                    }
                }
                // write back maximal contiguous dirty stretches, one seek each
                let mut i = 0;
                while i < dirty.len() {
                    if !dirty[i] {
                        i += 1;
                        continue;
                    }
                    let mut j = i + 1;
                    while j < dirty.len() && dirty[j] {
                        j += 1;
                    }
                    let off = self.record_offset(first_slot + i);
                    self.file.seek(SeekFrom::Start(off))?;
                    self.file.write_all(&self.batch[i * stride..j * stride])?;
                    self.bytes_written += ((j - i) * stride) as u64;
                    i = j;
                }
            }
        }
        Ok(stats)
    }

    /// With headroom available this is a single 8-byte header update — slot
    /// `n` of every record already holds `d = ∞, σ = 0, δ = 0` by the slab
    /// invariant — so growth costs O(1) I/O. Only when `n == cap` is the
    /// file re-slabbed at a geometrically larger capacity.
    fn grow_vertex(&mut self) -> BdResult<()> {
        self.ensure_writable()?;
        if self.n < self.cap {
            self.n += 1;
            write_header_n(&mut self.file, self.n as u64)?;
            return Ok(());
        }
        let new_n = self.n + 1;
        self.rewrite_file(new_n, slab_cap(new_n), IntentOp::Reslab)
    }

    fn add_source(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
    ) -> BdResult<()> {
        self.add_source_inner(s, d, sigma, delta, None)
    }

    /// Journaled swap-remove: the final record is copied into the vacated
    /// slot, the header count drops by one, the sidecar is rewritten, and
    /// the file is truncated — all guarded by a `RemoveSource` intent that
    /// recovery can always roll *forward* (see [`crate::recovery`]).
    fn remove_source(&mut self, s: VertexId) -> BdResult<()> {
        self.remove_source_inner(s, None)
    }

    /// Donor half of a shard handoff: the record (and `tag`) are journaled
    /// durably in `<path>.exp<s>` *before* the journaled
    /// [`BdStore::remove_source`], so a kill at any point leaves either the
    /// source still owned here or its full payload recoverable from the
    /// journal — never neither.
    fn export_source(&mut self, s: VertexId, tag: u64) -> BdResult<ExportedRecord> {
        self.export_source_inner(s, tag, None)
    }

    fn retire_export(&mut self, s: VertexId) -> BdResult<()> {
        match std::fs::remove_file(export_path(&self.path, s)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Simulated kill points inside the guarded `add_source` sequence. Test
/// support for the crash-recovery suite; not part of the stable API — the
/// store must be dropped (like a killed process) after a simulated crash.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddCrash {
    /// Die right after the intent record is durable, before the record.
    AfterIntent,
    /// Die with the record half-appended (torn payload).
    MidRecord,
    /// Die after the record append, before the header count update.
    AfterRecord,
    /// Die after the header count update, before the sidecar rewrite.
    AfterHeader,
    /// Die after the sidecar rewrite, before the intent is cleared.
    AfterSidecar,
}

/// Simulated kill points inside the guarded whole-file rewrite (re-slab /
/// v1→v2 migration). Test support for the crash-recovery suite.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteCrash {
    /// Die right after the intent record is durable, before `<path>.tmp`.
    AfterIntent,
    /// Die with `<path>.tmp` fully written but not yet renamed.
    AfterTmp,
    /// Die after the atomic rename, before the intent is cleared.
    AfterRename,
}

/// Simulated kill points inside the guarded `remove_source` sequence. Test
/// support for the crash-recovery suite; the store must be dropped after.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveCrash {
    /// Die right after the intent record is durable, before any mutation.
    AfterIntent,
    /// Die after the final record was copied into the vacated slot.
    AfterCopy,
    /// Die after the header count update, before the sidecar rewrite.
    AfterHeader,
    /// Die after the sidecar rewrite, before the truncate and commit.
    AfterSidecar,
}

/// Simulated kill points inside the guarded `export_source` sequence (the
/// removal sub-steps are covered by [`RemoveCrash`]). Test support.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportCrash {
    /// Die right after the export journal is durable, before the removal.
    AfterJournal,
}

impl DiskBdStore {
    /// [`BdStore::add_source`] with a simulated crash (test support; the
    /// store must be dropped afterwards, like a killed process).
    #[doc(hidden)]
    pub fn add_source_crashing(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
        crash: AddCrash,
    ) -> BdResult<()> {
        self.add_source_inner(s, d, sigma, delta, Some(crash))
    }

    /// [`BdStore::grow_vertex`]'s rewrite path (migration on a v1 store,
    /// re-slab otherwise) with a simulated crash (test support; the store
    /// must be dropped afterwards).
    #[doc(hidden)]
    pub fn grow_vertex_crashing(&mut self, crash: RewriteCrash) -> BdResult<()> {
        if self.version == FormatVersion::V1 {
            return self.rewrite_file_inner(
                self.n,
                slab_cap(self.n),
                IntentOp::Migrate,
                Some(crash),
            );
        }
        let new_n = self.n + 1;
        self.rewrite_file_inner(new_n, slab_cap(new_n), IntentOp::Reslab, Some(crash))
    }

    /// [`BdStore::remove_source`] with a simulated crash (test support; the
    /// store must be dropped afterwards, like a killed process).
    #[doc(hidden)]
    pub fn remove_source_crashing(&mut self, s: VertexId, crash: RemoveCrash) -> BdResult<()> {
        self.remove_source_inner(s, Some(crash))
    }

    /// [`BdStore::export_source`] with a simulated crash (test support; the
    /// store must be dropped afterwards).
    #[doc(hidden)]
    pub fn export_source_crashing(
        &mut self,
        s: VertexId,
        tag: u64,
        crash: ExportCrash,
    ) -> BdResult<ExportedRecord> {
        self.export_source_inner(s, tag, Some(crash))
    }

    fn remove_source_inner(&mut self, s: VertexId, crash: Option<RemoveCrash>) -> BdResult<()> {
        let slot = self.slot(s)?;
        self.ensure_writable()?;
        let last = self.order.len() - 1;
        let old = Geometry::of(&self.header());
        recovery::write_intent(
            &self.path,
            &Intent {
                op: IntentOp::RemoveSource,
                source: s,
                payload_checksum: 0,
                old,
                new: Geometry {
                    count: old.count - 1,
                    ..old
                },
            },
        )?;
        if crash == Some(RemoveCrash::AfterIntent) {
            return Ok(());
        }
        let stride = self.stride();
        if slot != last {
            // raw byte copy of the final record into the vacated slot (no
            // decode round-trip: the moved record must stay bit-identical)
            self.raw.resize(stride, 0);
            self.file.seek(SeekFrom::Start(self.record_offset(last)))?;
            self.file
                .read_exact(&mut self.raw)
                .map_err(|_| BdError::Corrupt(format!("record {last} truncated")))?;
            self.bytes_read += stride as u64;
            self.file.seek(SeekFrom::Start(self.record_offset(slot)))?;
            self.file.write_all(&self.raw[..stride])?;
            self.bytes_written += stride as u64;
        }
        if crash == Some(RemoveCrash::AfterCopy) {
            return Ok(());
        }
        self.index.remove(&s);
        self.order.swap_remove(slot);
        if let Some(&moved) = self.order.get(slot) {
            self.index.insert(moved, slot);
        }
        write_header_count(&mut self.file, self.order.len() as u64)?;
        if crash == Some(RemoveCrash::AfterHeader) {
            return Ok(());
        }
        write_sidecar_atomic(&self.path, &self.order)?;
        if crash == Some(RemoveCrash::AfterSidecar) {
            return Ok(());
        }
        self.file.set_len(self.record_offset(self.order.len()))?;
        recovery::clear_intent(&self.path)?;
        Ok(())
    }

    fn export_source_inner(
        &mut self,
        s: VertexId,
        tag: u64,
        crash: Option<ExportCrash>,
    ) -> BdResult<ExportedRecord> {
        let slot = self.slot(s)?;
        self.ensure_writable()?;
        self.read_record(slot)?;
        let n = self.n;
        let d = self.d[..n].to_vec();
        let sigma = self.sigma[..n].to_vec();
        let delta = self.delta[..n].to_vec();
        let psize = self.codec.record_size(n);
        let mut buf = Vec::with_capacity(28 + psize + 8);
        buf.extend_from_slice(EXPORT_MAGIC);
        buf.push(self.codec.id());
        buf.extend_from_slice(&s.to_le_bytes());
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        let payload_off = buf.len();
        buf.resize(payload_off + psize, 0);
        self.codec
            .encode_record(&d, &sigma, &delta, &mut buf[payload_off..]);
        let ck = recovery::fnv1a64(&buf);
        buf.extend_from_slice(&ck.to_le_bytes());
        std::fs::write(export_path(&self.path, s), &buf)?;
        // the journal is record payload leaving through this store: charge
        // it to the write counter so byte accounting stays exact
        self.bytes_written += buf.len() as u64;
        let record = ExportedRecord {
            source: s,
            d,
            sigma,
            delta,
        };
        if crash == Some(ExportCrash::AfterJournal) {
            return Ok(record);
        }
        self.remove_source_inner(s, None)?;
        Ok(record)
    }

    fn add_source_inner(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
        crash: Option<AddCrash>,
    ) -> BdResult<()> {
        if self.index.contains_key(&s) {
            return Err(BdError::DuplicateSource(s));
        }
        if d.len() != self.n || sigma.len() != self.n || delta.len() != self.n {
            return Err(BdError::ShapeMismatch {
                expected: self.n,
                got: d.len(),
            });
        }
        self.ensure_writable()?;
        // stage the slab record (live prefix = the new arrays, tail empty)
        self.d = d;
        self.sigma = sigma;
        self.delta = delta;
        self.reset_scratch_tail();
        let stride = self.stride();
        self.raw.resize(stride, 0);
        self.codec
            .encode_record(&self.d, &self.sigma, &self.delta, &mut self.raw);
        let slot = self.order.len();
        let old = Geometry::of(&self.header());
        recovery::write_intent(
            &self.path,
            &Intent {
                op: IntentOp::AddSource,
                source: s,
                payload_checksum: recovery::fnv1a64(&self.raw),
                old,
                new: Geometry {
                    count: old.count + 1,
                    ..old
                },
            },
        )?;
        if crash == Some(AddCrash::AfterIntent) {
            return Ok(());
        }
        // 1. the record itself
        let off = self.record_offset(slot);
        self.file.seek(SeekFrom::Start(off))?;
        if crash == Some(AddCrash::MidRecord) {
            self.file.write_all(&self.raw[..stride / 2])?;
            return Ok(());
        }
        self.file.write_all(&self.raw)?;
        self.bytes_written += stride as u64;
        if crash == Some(AddCrash::AfterRecord) {
            return Ok(());
        }
        // 2. header count, 3. sidecar, then commit
        self.index.insert(s, slot);
        self.order.push(s);
        write_header_count(&mut self.file, self.order.len() as u64)?;
        if crash == Some(AddCrash::AfterHeader) {
            return Ok(());
        }
        write_sidecar_atomic(&self.path, &self.order)?;
        if crash == Some(AddCrash::AfterSidecar) {
            return Ok(());
        }
        recovery::clear_intent(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ebc_store_tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_record(n: usize, salt: u64) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
        let d = (0..n).map(|i| ((i as u64 + salt) % 7) as u32).collect();
        let sigma = (0..n).map(|i| (i as u64 * 3 + salt) % 100 + 1).collect();
        let delta = (0..n).map(|i| (i as f64) * 0.25 + salt as f64).collect();
        (d, sigma, delta)
    }

    #[test]
    fn create_add_read_roundtrip() {
        let path = tmpdir("roundtrip").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 8, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(8, 1);
        st.add_source(3, d.clone(), s.clone(), del.clone()).unwrap();
        st.update_with(3, &mut |view| {
            assert_eq!(view.d, &d[..]);
            assert_eq!(view.sigma, &s[..]);
            assert_eq!(view.delta, &del[..]);
            false
        })
        .unwrap();
    }

    #[test]
    fn peek_reads_only_distance_column() {
        let path = tmpdir("peek").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 16, CodecKind::Wide).unwrap();
        let (mut d, s, del) = sample_record(16, 2);
        d[5] = 42;
        d[11] = UNREACHABLE;
        st.add_source(0, d, s, del).unwrap();
        let before = st.bytes_read;
        assert_eq!(st.peek_pair(0, 5, 11).unwrap(), (42, UNREACHABLE));
        // span of 7 u32 entries, far less than the full 16-vertex record
        assert_eq!(
            st.bytes_read - before,
            28,
            "peek must read only the endpoint span"
        );
        let before = st.bytes_read;
        assert_eq!(st.peek_pair(0, 11, 5).unwrap(), (UNREACHABLE, 42));
        assert_eq!(st.bytes_read - before, 28, "order-insensitive");
    }

    #[test]
    fn dirty_flag_controls_writeback() {
        let path = tmpdir("dirty").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 4, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(4, 3);
        st.add_source(1, d, s, del).unwrap();
        let w0 = st.bytes_written;
        st.update_with(1, &mut |view| {
            view.delta[0] = 99.0; // mutate but report clean: must NOT persist
            false
        })
        .unwrap();
        assert_eq!(st.bytes_written, w0);
        st.update_with(1, &mut |view| {
            assert_ne!(view.delta[0], 99.0, "clean update must not persist");
            view.delta[0] = 7.5;
            true
        })
        .unwrap();
        assert!(st.bytes_written > w0);
        st.update_with(1, &mut |view| {
            assert_eq!(view.delta[0], 7.5);
            false
        })
        .unwrap();
    }

    #[test]
    fn reopen_preserves_everything() {
        let path = tmpdir("reopen").join("bd.dat");
        {
            let mut st = DiskBdStore::create(&path, 6, CodecKind::Paper).unwrap();
            for src in [4u32, 2, 9] {
                let (d, s, del) = sample_record(6, src as u64);
                st.add_source(src, d, s, del).unwrap();
            }
            st.flush().unwrap();
        }
        let mut st = DiskBdStore::open(&path).unwrap();
        assert_eq!(st.codec(), CodecKind::Paper);
        assert_eq!(st.version(), FormatVersion::V2);
        assert_eq!(st.last_recovery(), None);
        assert_eq!(st.n(), 6);
        assert_eq!(st.sources(), vec![4, 2, 9]);
        let (d, s, _) = sample_record(6, 2);
        st.update_with(2, &mut |view| {
            assert_eq!(view.d, &d[..]);
            assert_eq!(view.sigma, &s[..]);
            false
        })
        .unwrap();
    }

    #[test]
    fn grow_vertex_with_headroom_is_o1_io() {
        let path = tmpdir("grow").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 3, CodecKind::Wide).unwrap();
        assert!(st.headroom() >= 8);
        let (d, s, del) = sample_record(3, 5);
        st.add_source(0, d, s, del).unwrap();
        let written = st.bytes_written;
        let read = st.bytes_read;
        st.grow_vertex().unwrap();
        assert_eq!(st.n(), 4);
        assert_eq!(
            st.bytes_written, written,
            "in-headroom growth must not touch any record"
        );
        assert_eq!(st.bytes_read, read);
        assert_eq!(st.peek_pair(0, 3, 0).unwrap().0, UNREACHABLE);
        st.update_with(0, &mut |view| {
            assert_eq!(view.d.len(), 4);
            assert_eq!(view.d[3], UNREACHABLE);
            assert_eq!(view.sigma[3], 0);
            assert_eq!(view.delta[3], 0.0);
            false
        })
        .unwrap();
    }

    #[test]
    fn exhausted_headroom_reslabs_and_preserves_records() {
        let path = tmpdir("reslab").join("bd.dat");
        let mut st = DiskBdStore::create_with_capacity(&path, 3, 4, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(3, 5);
        st.add_source(2, d.clone(), s.clone(), del.clone()).unwrap();
        st.grow_vertex().unwrap(); // consumes the single headroom slot
        assert_eq!(st.headroom(), 0);
        let written = st.bytes_written;
        st.grow_vertex().unwrap(); // must re-slab
        assert_eq!(st.n(), 5);
        assert!(st.capacity() >= 5 + 8);
        assert!(st.bytes_written > written, "re-slab rewrites records");
        st.update_with(2, &mut |view| {
            assert_eq!(&view.d[..3], &d[..]);
            assert_eq!(&view.sigma[..3], &s[..]);
            assert_eq!(&view.delta[..3], &del[..]);
            assert_eq!(&view.d[3..], &[UNREACHABLE, UNREACHABLE]);
            false
        })
        .unwrap();
        // reopen sees the re-slabbed file cleanly
        drop(st);
        let st = DiskBdStore::open(&path).unwrap();
        assert_eq!(st.n(), 5);
        assert_eq!(st.last_recovery(), None);
    }

    #[test]
    fn batch_plan_groups_contiguous_slots() {
        let plan = BatchPlan::build(vec![(5, 50), (0, 10), (1, 11), (2, 12), (7, 70), (6, 60)]);
        assert_eq!(plan.seeks(), 2);
        assert_eq!(plan.records(), 6);
        assert_eq!(plan.runs()[0].first_slot, 0);
        assert_eq!(plan.runs()[0].sources, vec![10, 11, 12]);
        assert_eq!(plan.runs()[1].first_slot, 5);
        assert_eq!(plan.runs()[1].sources, vec![50, 60, 70]);
        assert_eq!(BatchPlan::build(Vec::new()).seeks(), 0);
    }

    #[test]
    fn update_batch_coalesces_contiguous_runs() {
        let path = tmpdir("batch").join("bd.dat");
        let n = 6;
        let mut st = DiskBdStore::create(&path, n, CodecKind::Wide).unwrap();
        // sources 0..5: make endpoint distances differ for all of them
        for s in 0..5u32 {
            let mut d = vec![1u32; n];
            d[0] = 0;
            d[1] = 3;
            st.add_source(s, d, vec![1; n], vec![0.0; n]).unwrap();
        }
        let stride = st.stride() as u64;
        let (r0, w0) = (st.bytes_read, st.bytes_written);
        let sources = st.sources();
        let stats = st
            .update_batch(&sources, 0, 1, &mut |s, view| {
                view.delta[2] = s as f64;
                s % 2 == 0 // dirty: slots 0, 2, 4
            })
            .unwrap();
        assert_eq!(stats.processed, 5);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.written, 3);
        // one run of 5 records: record reads = 5·stride (+ 5 peeks of 8 B)
        assert_eq!(st.bytes_read - r0, 5 * stride + 5 * 8);
        // writes: three non-adjacent dirty records = 3·stride
        assert_eq!(st.bytes_written - w0, 3 * stride);
        // persisted exactly the dirty ones
        for s in 0..5u32 {
            st.update_with(s, &mut |view| {
                let expect = if s % 2 == 0 { s as f64 } else { 0.0 };
                assert_eq!(view.delta[2], expect, "source {s}");
                false
            })
            .unwrap();
        }
    }

    #[test]
    fn update_batch_matches_default_loop_semantics() {
        let path = tmpdir("batch_skip").join("bd.dat");
        let n = 4;
        let mut st = DiskBdStore::create(&path, n, CodecKind::Wide).unwrap();
        // source 0: d[0] == d[1] → skipped; source 1: differs → processed
        st.add_source(0, vec![1, 1, 2, 2], vec![1; n], vec![0.0; n])
            .unwrap();
        st.add_source(1, vec![0, 1, 2, 2], vec![1; n], vec![0.0; n])
            .unwrap();
        let stats = st
            .update_batch(&[0, 1], 0, 1, &mut |s, _| {
                assert_eq!(s, 1, "skipped source must not reach the kernel");
                false
            })
            .unwrap();
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.processed, 1);
        assert_eq!(stats.written, 0);
    }

    #[test]
    fn corrupt_magic_detected() {
        let path = tmpdir("magic").join("bd.dat");
        {
            DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] = b'X';
        std::fs::write(&path, raw).unwrap();
        assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
    }

    #[test]
    fn truncated_data_detected() {
        let path = tmpdir("trunc").join("bd.dat");
        {
            let mut st = DiskBdStore::create(&path, 4, CodecKind::Wide).unwrap();
            let (d, s, del) = sample_record(4, 6);
            st.add_source(0, d, s, del).unwrap();
            st.flush().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 10]).unwrap();
        assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
    }

    #[test]
    fn trailing_garbage_detected() {
        let path = tmpdir("garbage").join("bd.dat");
        {
            let mut st = DiskBdStore::create(&path, 4, CodecKind::Wide).unwrap();
            let (d, s, del) = sample_record(4, 6);
            st.add_source(0, d, s, del).unwrap();
            st.flush().unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xAA; 13]);
        std::fs::write(&path, raw).unwrap();
        match DiskBdStore::open(&path) {
            Err(BdError::Corrupt(msg)) => assert!(msg.contains("trailing garbage"), "{msg}"),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("trailing garbage must be rejected"),
        }
    }

    #[test]
    fn missing_sidecar_detected() {
        let path = tmpdir("sidecar").join("bd.dat");
        {
            DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        }
        std::fs::remove_file(sidecar_for(&path)).unwrap();
        assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
    }

    #[test]
    fn duplicate_source_rejected() {
        let path = tmpdir("dup").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(2, 7);
        st.add_source(5, d.clone(), s.clone(), del.clone()).unwrap();
        assert!(matches!(
            st.add_source(5, d, s, del),
            Err(BdError::DuplicateSource(5))
        ));
    }

    #[test]
    fn unknown_source_rejected() {
        let path = tmpdir("unk").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        assert!(matches!(
            st.peek_pair(0, 0, 1),
            Err(BdError::UnknownSource(0))
        ));
    }
}
