//! The on-disk `BD[·]` store (the paper's *DO* configuration).
//!
//! Layout of the data file:
//!
//! ```text
//! [header: magic "EBCBD1\n", codec id u8, n u64, source count u64]
//! [record 0][record 1]...      // one columnar record per source, in
//!                              // registration order; source ids live in the
//!                              // header-adjacent id table
//! [id table: source id u32 × count]   // written by flush(), after records?
//! ```
//!
//! The id table is kept in a sidecar `<path>.idx` file instead of trailing
//! the records, so records can grow by appending without rewrites. The store
//! flushes the sidecar on every `add_source` and on `flush()`.

use crate::codec::CodecKind;
use ebc_core::bd::{BdError, BdResult, BdStore, SourceFn, SourceViewMut};
use ebc_graph::{FxHashMap, VertexId, UNREACHABLE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 7] = b"EBCBD1\n";
const HEADER_LEN: u64 = 7 + 1 + 8 + 8;

/// Out-of-core `BD` store: one columnar record per source, updated in place.
pub struct DiskBdStore {
    file: File,
    path: PathBuf,
    codec: CodecKind,
    n: usize,
    order: Vec<VertexId>,
    index: FxHashMap<VertexId, usize>,
    // reusable scratch (decode/encode buffers)
    raw: Vec<u8>,
    d: Vec<u32>,
    sigma: Vec<u64>,
    delta: Vec<f64>,
    /// Bytes read from disk (experiment instrumentation).
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

impl DiskBdStore {
    /// Create a fresh store at `path` for records of `n` vertices.
    pub fn create<P: AsRef<Path>>(path: P, n: usize, codec: CodecKind) -> BdResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.push(codec.id());
        header.extend_from_slice(&(n as u64).to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        file.write_all(&header)?;
        let store = DiskBdStore {
            file,
            path,
            codec,
            n,
            order: Vec::new(),
            index: FxHashMap::default(),
            raw: Vec::new(),
            d: Vec::new(),
            sigma: Vec::new(),
            delta: Vec::new(),
            bytes_read: 0,
            bytes_written: 0,
        };
        store.write_sidecar()?;
        Ok(store)
    }

    /// Open an existing store, validating header, sidecar, and file length.
    pub fn open<P: AsRef<Path>>(path: P) -> BdResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|_| BdError::Corrupt("truncated header".into()))?;
        if &header[..7] != MAGIC {
            return Err(BdError::Corrupt("bad magic".into()));
        }
        let codec = CodecKind::from_id(header[7])
            .ok_or_else(|| BdError::Corrupt(format!("unknown codec id {}", header[7])))?;
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
        let count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
        let order = Self::read_sidecar(&path, count)?;
        let expect_len = HEADER_LEN + (count * codec.record_size(n)) as u64;
        let actual = file.metadata()?.len();
        if actual < expect_len {
            return Err(BdError::Corrupt(format!(
                "data file too short: {actual} < {expect_len}"
            )));
        }
        let index = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        Ok(DiskBdStore {
            file,
            path,
            codec,
            n,
            order,
            index,
            raw: Vec::new(),
            d: Vec::new(),
            sigma: Vec::new(),
            delta: Vec::new(),
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// The codec in use.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Path of the data file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total on-disk record bytes (excluding header/sidecar) — the quantity
    /// the paper sizes as `O(n²/p)` per machine (§5.2).
    pub fn data_bytes(&self) -> u64 {
        (self.order.len() * self.codec.record_size(self.n)) as u64
    }

    fn sidecar_path(&self) -> PathBuf {
        Self::sidecar_for(&self.path)
    }

    fn sidecar_for(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".idx");
        PathBuf::from(p)
    }

    fn write_sidecar(&self) -> BdResult<()> {
        let mut buf = Vec::with_capacity(8 + 4 * self.order.len());
        buf.extend_from_slice(&(self.order.len() as u64).to_le_bytes());
        for &s in &self.order {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        std::fs::write(self.sidecar_path(), buf)?;
        Ok(())
    }

    fn read_sidecar(path: &Path, expect: usize) -> BdResult<Vec<VertexId>> {
        let raw = std::fs::read(Self::sidecar_for(path))
            .map_err(|_| BdError::Corrupt("missing sidecar index".into()))?;
        if raw.len() < 8 {
            return Err(BdError::Corrupt("sidecar too short".into()));
        }
        let count = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")) as usize;
        if count != expect {
            return Err(BdError::Corrupt(format!(
                "sidecar/header disagree: {count} vs {expect}"
            )));
        }
        if raw.len() < 8 + 4 * count {
            return Err(BdError::Corrupt("sidecar truncated".into()));
        }
        Ok((0..count)
            .map(|i| u32::from_le_bytes(raw[8 + 4 * i..12 + 4 * i].try_into().expect("4 bytes")))
            .collect())
    }

    fn update_header_count(&mut self) -> BdResult<()> {
        self.file.seek(SeekFrom::Start(7 + 1 + 8))?;
        self.file
            .write_all(&(self.order.len() as u64).to_le_bytes())?;
        Ok(())
    }

    #[inline]
    fn record_offset(&self, slot: usize) -> u64 {
        HEADER_LEN + (slot * self.codec.record_size(self.n)) as u64
    }

    fn slot(&self, s: VertexId) -> BdResult<usize> {
        self.index.get(&s).copied().ok_or(BdError::UnknownSource(s))
    }

    fn read_record(&mut self, slot: usize) -> BdResult<()> {
        let size = self.codec.record_size(self.n);
        self.raw.resize(size, 0);
        self.file.seek(SeekFrom::Start(self.record_offset(slot)))?;
        self.file
            .read_exact(&mut self.raw)
            .map_err(|_| BdError::Corrupt(format!("record {slot} truncated")))?;
        self.bytes_read += size as u64;
        self.d.resize(self.n, 0);
        self.sigma.resize(self.n, 0);
        self.delta.resize(self.n, 0.0);
        self.codec
            .decode_record(&self.raw, &mut self.d, &mut self.sigma, &mut self.delta);
        Ok(())
    }

    fn write_record(&mut self, slot: usize) -> BdResult<()> {
        let size = self.codec.record_size(self.n);
        self.raw.resize(size, 0);
        self.codec
            .encode_record(&self.d, &self.sigma, &self.delta, &mut self.raw);
        self.file.seek(SeekFrom::Start(self.record_offset(slot)))?;
        self.file.write_all(&self.raw)?;
        self.bytes_written += size as u64;
        Ok(())
    }

    /// Force data and index to durable storage.
    pub fn flush(&mut self) -> BdResult<()> {
        self.file.sync_data()?;
        self.write_sidecar()?;
        Ok(())
    }
}

impl BdStore for DiskBdStore {
    fn n(&self) -> usize {
        self.n
    }

    fn sources(&self) -> Vec<VertexId> {
        self.order.clone()
    }

    fn num_sources(&self) -> usize {
        self.order.len()
    }

    /// Read only the span of the distance column covering the two endpoints
    /// — one sequential read, no `σ`/`δ` I/O. This is the paper's §5.1 skip
    /// check ("after loading the distances from disk, we check the distance
    /// for the endpoints"), tightened to the `[min(a,b), max(a,b)]` span.
    fn peek_pair(&mut self, s: VertexId, a: VertexId, b: VertexId) -> BdResult<(u32, u32)> {
        let slot = self.slot(s)?;
        let dw = self.codec.d_width();
        let base = self.record_offset(slot);
        let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
        let span = (hi - lo + 1) * dw;
        self.raw.resize(span.max(self.raw.len()), 0);
        self.file.seek(SeekFrom::Start(base + (lo * dw) as u64))?;
        self.file
            .read_exact(&mut self.raw[..span])
            .map_err(|_| BdError::Corrupt("distance column truncated".into()))?;
        self.bytes_read += span as u64;
        let at = |v: usize| {
            self.codec
                .decode_d(&self.raw[(v - lo) * dw..(v - lo) * dw + dw])
        };
        Ok((at(a as usize), at(b as usize)))
    }

    fn update_with(&mut self, s: VertexId, f: SourceFn<'_>) -> BdResult<bool> {
        let slot = self.slot(s)?;
        self.read_record(slot)?;
        let dirty = f(SourceViewMut {
            d: &mut self.d,
            sigma: &mut self.sigma,
            delta: &mut self.delta,
        });
        if dirty {
            self.write_record(slot)?;
        }
        Ok(dirty)
    }

    /// Record size depends on `n`, so growing the vertex set rewrites the
    /// file once (O(S·n)); the paper's deployment assumes a fixed vertex
    /// universe per epoch, new vertices being comparatively rare.
    fn grow_vertex(&mut self) -> BdResult<()> {
        let old_n = self.n;
        let new_n = old_n + 1;
        let tmp_path = self.path.with_extension("tmp");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.push(self.codec.id());
        header.extend_from_slice(&(new_n as u64).to_le_bytes());
        header.extend_from_slice(&(self.order.len() as u64).to_le_bytes());
        tmp.write_all(&header)?;
        let mut out = vec![0u8; self.codec.record_size(new_n)];
        for slot in 0..self.order.len() {
            self.read_record(slot)?;
            self.d.push(UNREACHABLE);
            self.sigma.push(0);
            self.delta.push(0.0);
            self.codec
                .encode_record(&self.d, &self.sigma, &self.delta, &mut out);
            tmp.write_all(&out)?;
            self.bytes_written += out.len() as u64;
        }
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.n = new_n;
        self.write_sidecar()?;
        Ok(())
    }

    fn add_source(
        &mut self,
        s: VertexId,
        d: Vec<u32>,
        sigma: Vec<u64>,
        delta: Vec<f64>,
    ) -> BdResult<()> {
        if self.index.contains_key(&s) {
            return Err(BdError::DuplicateSource(s));
        }
        if d.len() != self.n || sigma.len() != self.n || delta.len() != self.n {
            return Err(BdError::ShapeMismatch {
                expected: self.n,
                got: d.len(),
            });
        }
        let slot = self.order.len();
        self.d = d;
        self.sigma = sigma;
        self.delta = delta;
        self.index.insert(s, slot);
        self.order.push(s);
        self.write_record(slot)?;
        self.update_header_count()?;
        self.write_sidecar()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ebc_store_tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_record(n: usize, salt: u64) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
        let d = (0..n).map(|i| ((i as u64 + salt) % 7) as u32).collect();
        let sigma = (0..n).map(|i| (i as u64 * 3 + salt) % 100 + 1).collect();
        let delta = (0..n).map(|i| (i as f64) * 0.25 + salt as f64).collect();
        (d, sigma, delta)
    }

    #[test]
    fn create_add_read_roundtrip() {
        let path = tmpdir("roundtrip").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 8, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(8, 1);
        st.add_source(3, d.clone(), s.clone(), del.clone()).unwrap();
        st.update_with(3, &mut |view| {
            assert_eq!(view.d, &d[..]);
            assert_eq!(view.sigma, &s[..]);
            assert_eq!(view.delta, &del[..]);
            false
        })
        .unwrap();
    }

    #[test]
    fn peek_reads_only_distance_column() {
        let path = tmpdir("peek").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 16, CodecKind::Wide).unwrap();
        let (mut d, s, del) = sample_record(16, 2);
        d[5] = 42;
        d[11] = UNREACHABLE;
        st.add_source(0, d, s, del).unwrap();
        let before = st.bytes_read;
        assert_eq!(st.peek_pair(0, 5, 11).unwrap(), (42, UNREACHABLE));
        // span of 7 u32 entries, far less than the full 16-vertex record
        assert_eq!(
            st.bytes_read - before,
            28,
            "peek must read only the endpoint span"
        );
        let before = st.bytes_read;
        assert_eq!(st.peek_pair(0, 11, 5).unwrap(), (UNREACHABLE, 42));
        assert_eq!(st.bytes_read - before, 28, "order-insensitive");
    }

    #[test]
    fn dirty_flag_controls_writeback() {
        let path = tmpdir("dirty").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 4, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(4, 3);
        st.add_source(1, d, s, del).unwrap();
        let w0 = st.bytes_written;
        st.update_with(1, &mut |view| {
            view.delta[0] = 99.0; // mutate but report clean: must NOT persist
            false
        })
        .unwrap();
        assert_eq!(st.bytes_written, w0);
        st.update_with(1, &mut |view| {
            assert_ne!(view.delta[0], 99.0, "clean update must not persist");
            view.delta[0] = 7.5;
            true
        })
        .unwrap();
        assert!(st.bytes_written > w0);
        st.update_with(1, &mut |view| {
            assert_eq!(view.delta[0], 7.5);
            false
        })
        .unwrap();
    }

    #[test]
    fn reopen_preserves_everything() {
        let path = tmpdir("reopen").join("bd.dat");
        {
            let mut st = DiskBdStore::create(&path, 6, CodecKind::Paper).unwrap();
            for src in [4u32, 2, 9] {
                let (d, s, del) = sample_record(6, src as u64);
                st.add_source(src, d, s, del).unwrap();
            }
            st.flush().unwrap();
        }
        let mut st = DiskBdStore::open(&path).unwrap();
        assert_eq!(st.codec(), CodecKind::Paper);
        assert_eq!(st.n(), 6);
        assert_eq!(st.sources(), vec![4, 2, 9]);
        let (d, s, _) = sample_record(6, 2);
        st.update_with(2, &mut |view| {
            assert_eq!(view.d, &d[..]);
            assert_eq!(view.sigma, &s[..]);
            false
        })
        .unwrap();
    }

    #[test]
    fn grow_vertex_rewrites_records() {
        let path = tmpdir("grow").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 3, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(3, 5);
        st.add_source(0, d, s, del).unwrap();
        st.grow_vertex().unwrap();
        assert_eq!(st.n(), 4);
        assert_eq!(st.peek_pair(0, 3, 0).unwrap().0, UNREACHABLE);
        st.update_with(0, &mut |view| {
            assert_eq!(view.d.len(), 4);
            assert_eq!(view.sigma[3], 0);
            false
        })
        .unwrap();
    }

    #[test]
    fn corrupt_magic_detected() {
        let path = tmpdir("magic").join("bd.dat");
        {
            DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] = b'X';
        std::fs::write(&path, raw).unwrap();
        assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
    }

    #[test]
    fn truncated_data_detected() {
        let path = tmpdir("trunc").join("bd.dat");
        {
            let mut st = DiskBdStore::create(&path, 4, CodecKind::Wide).unwrap();
            let (d, s, del) = sample_record(4, 6);
            st.add_source(0, d, s, del).unwrap();
            st.flush().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 10]).unwrap();
        assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
    }

    #[test]
    fn missing_sidecar_detected() {
        let path = tmpdir("sidecar").join("bd.dat");
        {
            DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        }
        std::fs::remove_file(DiskBdStore::sidecar_for(&path)).unwrap();
        assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
    }

    #[test]
    fn duplicate_source_rejected() {
        let path = tmpdir("dup").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        let (d, s, del) = sample_record(2, 7);
        st.add_source(5, d.clone(), s.clone(), del.clone()).unwrap();
        assert!(matches!(
            st.add_source(5, d, s, del),
            Err(BdError::DuplicateSource(5))
        ));
    }

    #[test]
    fn unknown_source_rejected() {
        let path = tmpdir("unk").join("bd.dat");
        let mut st = DiskBdStore::create(&path, 2, CodecKind::Wide).unwrap();
        assert!(matches!(
            st.peek_pair(0, 0, 1),
            Err(BdError::UnknownSource(0))
        ));
    }
}
