//! Sealed, checksummed update history: the checkpoint-and-truncate
//! compactor plus the segment store the replay engine reads.
//!
//! A [`HistoryLog`] owns two kinds of files inside a session directory:
//!
//! * **live WAL** (`history.wal`) — one frame per applied update,
//!   `[len: u32][fnv1a64: u64][seq: u64][map_version: u64][payload]`
//!   (little-endian, checksum over everything after it). Appends are
//!   write-through like [`crate::OpLog`]; a torn tail truncates on reopen,
//!   a mid-file checksum failure is corruption.
//! * **sealed segments** (`history-<first>-<last>.seg`) — immutable,
//!   checksummed rolls of a WAL prefix, produced by
//!   [`HistoryLog::seal_upto`] at checkpoint time. A segment is written
//!   tmp+rename, so it either exists completely or not at all.
//!
//! A small meta file (`history.meta`, also tmp+rename) records the
//! retention mode and the highest sealed-or-discarded seq, which is what
//! lets `open()` distinguish "prefix legitimately discarded
//! (`keep_history = false`)" from "segment file missing" — the latter is
//! the typed [`HistoryError::Gap`].
//!
//! ## Crash matrix (DESIGN.md §14)
//!
//! `seal_upto` orders its writes *segment → meta → WAL rewrite*, each
//! atomic via tmp+rename, and every WAL record carries its seq, so
//! `open()` resolves every kill window to exactly-once history:
//!
//! | killed…                         | open() sees                    | resolution            |
//! |---------------------------------|--------------------------------|-----------------------|
//! | before the segment rename       | stale `.tmp`, full live WAL    | remove tmp; no-op     |
//! | after segment, before meta      | segment + overlapping WAL      | dedup by seq, finish  |
//! | after meta, before WAL rewrite  | segment + overlapping WAL      | dedup by seq, finish  |
//! | mid WAL rewrite (tmp partial)   | segment + old WAL + stale tmp  | dedup by seq, finish  |
//!
//! "Finish" means the open completes the interrupted truncation itself
//! (rewrites the WAL without the sealed prefix and refreshes the meta),
//! so a second crash replays the same convergent path.

use crate::recovery::fnv1a64;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Live WAL file name inside a history directory.
pub const HISTORY_WAL: &str = "history.wal";
/// Meta file name inside a history directory.
pub const HISTORY_META: &str = "history.meta";
/// Magic prefix of a sealed history segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"EBCSEG1\n";
const META_MAGIC: &[u8; 8] = b"EBCHMETA";

/// Errors from the history subsystem.
#[derive(Debug)]
pub enum HistoryError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A file exists but its bytes are not a valid history artifact.
    Corrupt(String),
    /// The sealed segments do not tile the history: records
    /// `missing_first ..= missing_last` are gone (a segment file was
    /// deleted, or replay was asked to reach below a `keep_history =
    /// false` truncation point).
    Gap {
        /// First missing seq.
        missing_first: u64,
        /// Last missing seq.
        missing_last: u64,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io(e) => write!(f, "history io error: {e}"),
            HistoryError::Corrupt(msg) => write!(f, "history corrupt: {msg}"),
            HistoryError::Gap {
                missing_first,
                missing_last,
            } => write!(
                f,
                "history has a gap: records {missing_first}..={missing_last} are missing"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<std::io::Error> for HistoryError {
    fn from(e: std::io::Error) -> Self {
        HistoryError::Io(e)
    }
}

/// One applied update as recorded in the history: its global sequence
/// number, the shard-map version it was applied under, and the opaque
/// payload the owning layer serialized (the root session stores an
/// encoded edge update; the coordinator journal reuses the same frames).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRecord {
    /// 1-based global sequence number; contiguous within a history.
    pub seq: u64,
    /// Shard-map version in force when the update was applied.
    pub map_version: u64,
    /// Opaque serialized update.
    pub payload: Vec<u8>,
}

/// Byte accounting for `stats` surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoryStats {
    /// Bytes of live (not yet sealed) WAL frames.
    pub live_wal_bytes: u64,
    /// Total bytes across sealed segment files.
    pub sealed_bytes: u64,
    /// Number of sealed segment files.
    pub segments: u64,
    /// Highest seq that has been sealed (or discarded when
    /// `keep_history = false`); 0 before the first compaction.
    pub last_compaction_seq: u64,
    /// Highest seq in the history (sealed or live); 0 when empty.
    pub last_seq: u64,
}

/// Crash-injection points for [`HistoryLog::seal_upto_with_kill`].
/// Test-only: after a kill fires, the in-memory log is stale and must be
/// dropped; reopen the directory to observe recovery.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealKill {
    /// Die with the segment written only as a `.tmp` (nothing sealed).
    BeforeSeal,
    /// Die after the segment rename, before the meta update.
    AfterSeal,
    /// Die after the meta update, before the WAL rewrite.
    AfterMeta,
    /// Die with the rewritten WAL written only as a `.tmp`.
    MidTruncate,
}

/// Header of one sealed segment (cheap to read: first 24 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegmentMeta {
    first: u64,
    last: u64,
    bytes: u64,
}

/// Append + seal + replay over a session's update history.
#[derive(Debug)]
pub struct HistoryLog {
    dir: PathBuf,
    keep: bool,
    /// Records not yet sealed into a segment, ascending contiguous seqs.
    live: Vec<HistoryRecord>,
    live_bytes: u64,
    file: File,
    segments: Vec<SegmentMeta>,
    sealed_bytes: u64,
    /// Highest sealed-or-discarded seq.
    compacted_to: u64,
}

impl HistoryLog {
    /// Create a fresh history in `dir` (removing any stale history files
    /// from a previous incarnation), with the given retention mode.
    pub fn create(dir: &Path, keep_history: bool) -> Result<Self, HistoryError> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == HISTORY_WAL
                || name == HISTORY_META
                || (name.starts_with("history-") && name.ends_with(".seg"))
                || (name.starts_with("history") && name.ends_with(".tmp"))
            {
                fs::remove_file(entry.path())?;
            }
        }
        write_meta(dir, keep_history, 0)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(HISTORY_WAL))?;
        Ok(HistoryLog {
            dir: dir.to_path_buf(),
            keep: keep_history,
            live: Vec::new(),
            live_bytes: 0,
            file,
            segments: Vec::new(),
            sealed_bytes: 0,
            compacted_to: 0,
        })
    }

    /// True when `dir` holds a history (its meta file exists) — lets a
    /// caller treat pre-history session directories as "no history"
    /// instead of corruption.
    pub fn exists(dir: &Path) -> bool {
        dir.join(HISTORY_META).is_file()
    }

    /// Open an existing history, resolving any interrupted seal/truncate
    /// to exactly-once records (see the crash matrix in the module docs)
    /// and rejecting missing segments with [`HistoryError::Gap`].
    pub fn open(dir: &Path) -> Result<Self, HistoryError> {
        let (keep, meta_compacted) = read_meta(dir)?;
        // Remove leftover tmp files from a killed seal: they were never
        // renamed, so they are not part of the history.
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.starts_with("history") && name.ends_with(".tmp") {
                fs::remove_file(entry.path())?;
            }
        }
        let mut segments = scan_segments(dir)?;
        segments.sort_by_key(|s| s.first);
        if !keep && !segments.is_empty() {
            return Err(HistoryError::Corrupt(
                "sealed segments present in a keep_history=false directory".into(),
            ));
        }
        // Segments must tile [1, last]; the meta names anything sealed or
        // discarded beyond them (a deleted newest segment, or the whole
        // prefix when retention is off).
        let mut expect = 1u64;
        for seg in &segments {
            if seg.first > expect {
                return Err(HistoryError::Gap {
                    missing_first: expect,
                    missing_last: seg.first - 1,
                });
            }
            if seg.first < expect || seg.last < seg.first {
                return Err(HistoryError::Corrupt(format!(
                    "segment {}-{} overlaps or inverts at expected seq {expect}",
                    seg.first, seg.last
                )));
            }
            expect = seg.last + 1;
        }
        let sealed_to = segments.last().map_or(0, |s| s.last);
        if keep && meta_compacted > sealed_to {
            return Err(HistoryError::Gap {
                missing_first: sealed_to + 1,
                missing_last: meta_compacted,
            });
        }
        let compacted_to = meta_compacted.max(sealed_to);
        let sealed_bytes = segments.iter().map(|s| s.bytes).sum();

        // Recover the live WAL, dropping any prefix the seal already
        // covered (kill windows 2–4) and truncating a torn tail.
        let (records, durable) = read_wal(&dir.join(HISTORY_WAL))?;
        let mut live = Vec::new();
        let mut dropped = false;
        let mut next = compacted_to + 1;
        for rec in records {
            if rec.seq <= compacted_to {
                dropped = true;
                continue;
            }
            if rec.seq > next {
                return Err(HistoryError::Gap {
                    missing_first: next,
                    missing_last: rec.seq - 1,
                });
            }
            if rec.seq < next {
                return Err(HistoryError::Corrupt(format!(
                    "live wal repeats seq {} (expected {next})",
                    rec.seq
                )));
            }
            next += 1;
            live.push(rec);
        }
        let mut log = HistoryLog {
            dir: dir.to_path_buf(),
            keep,
            live_bytes: live.iter().map(frame_len).sum(),
            live,
            file: OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(dir.join(HISTORY_WAL))?,
            segments,
            sealed_bytes,
            compacted_to,
        };
        if dropped {
            // Finish the interrupted truncation so the next open is clean.
            log.rewrite_wal(None)?;
            write_meta(dir, keep, compacted_to)?;
        } else {
            if durable < file_len(&log.file)? {
                log.file.set_len(durable)?; // torn tail
            }
            log.file.seek(SeekFrom::Start(durable))?;
            if meta_compacted < compacted_to {
                write_meta(dir, keep, compacted_to)?; // stale meta (window 2)
            }
        }
        Ok(log)
    }

    /// Whether sealed segments are retained (`true`) or discarded at
    /// compaction (`false`).
    pub fn keep_history(&self) -> bool {
        self.keep
    }

    /// Highest seq in the history (sealed or live); 0 when empty.
    pub fn last_seq(&self) -> u64 {
        self.live.last().map_or(self.compacted_to, |r| r.seq)
    }

    /// Highest sealed-or-discarded seq; 0 before the first compaction.
    pub fn last_compaction_seq(&self) -> u64 {
        self.compacted_to
    }

    /// Bytes of live WAL frames not yet sealed.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Byte accounting for `stats`.
    pub fn stats(&self) -> HistoryStats {
        HistoryStats {
            live_wal_bytes: self.live_bytes,
            sealed_bytes: self.sealed_bytes,
            segments: self.segments.len() as u64,
            last_compaction_seq: self.compacted_to,
            last_seq: self.last_seq(),
        }
    }

    /// Append one applied update. `seq` must continue the history
    /// (`last_seq() + 1`); the write is framed and checksummed like an
    /// op-log entry, so a crash mid-append is a torn tail, never a
    /// corrupt history.
    pub fn append(
        &mut self,
        seq: u64,
        map_version: u64,
        payload: &[u8],
    ) -> Result<(), HistoryError> {
        if seq != self.last_seq() + 1 {
            return Err(HistoryError::Corrupt(format!(
                "append seq {seq} does not continue history at {}",
                self.last_seq()
            )));
        }
        let rec = HistoryRecord {
            seq,
            map_version,
            payload: payload.to_vec(),
        };
        let frame = frame(&rec);
        self.file.write_all(&frame)?;
        self.live_bytes += frame.len() as u64;
        self.live.push(rec);
        Ok(())
    }

    /// Sync the live WAL to disk.
    pub fn sync(&mut self) -> Result<(), HistoryError> {
        self.file.sync_data().map_err(HistoryError::Io)
    }

    /// Seal every live record with seq ≤ `seq` into one segment (or
    /// discard them when `keep_history = false`) and truncate the live
    /// WAL. Returns `true` when anything was compacted. Crash-safe: see
    /// the module-level matrix.
    pub fn seal_upto(&mut self, seq: u64) -> Result<bool, HistoryError> {
        self.seal_upto_with_kill(seq, None)
    }

    /// [`Self::seal_upto`] with an injected crash for the recovery tests.
    #[doc(hidden)]
    pub fn seal_upto_with_kill(
        &mut self,
        seq: u64,
        kill: Option<SealKill>,
    ) -> Result<bool, HistoryError> {
        let count = self.live.iter().take_while(|r| r.seq <= seq).count();
        if count == 0 {
            return Ok(false);
        }
        self.sync()?;
        let first = self.live[0].seq;
        let last = self.live[count - 1].seq;
        if self.keep {
            let name = segment_name(first, last);
            let mut payload = Vec::new();
            payload.extend_from_slice(&first.to_le_bytes());
            payload.extend_from_slice(&last.to_le_bytes());
            payload.extend_from_slice(&(count as u64).to_le_bytes());
            for rec in &self.live[..count] {
                payload.extend_from_slice(&rec.seq.to_le_bytes());
                payload.extend_from_slice(&rec.map_version.to_le_bytes());
                payload.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
                payload.extend_from_slice(&rec.payload);
            }
            let path = self.dir.join(&name);
            if kill == Some(SealKill::BeforeSeal) {
                // Leave only the tmp behind, as if we died pre-rename.
                write_sealed_tmp_only(&path, SEGMENT_MAGIC, &payload)?;
                return Ok(false);
            }
            write_sealed(&path, SEGMENT_MAGIC, &payload)?;
            self.segments.push(SegmentMeta {
                first,
                last,
                bytes: file_len(&File::open(&path)?)?,
            });
            self.sealed_bytes += self.segments.last().expect("just pushed").bytes;
        } else if kill == Some(SealKill::BeforeSeal) {
            return Ok(false); // nothing durable happened yet
        }
        if kill == Some(SealKill::AfterSeal) {
            return Ok(false);
        }
        write_meta(&self.dir, self.keep, last)?;
        self.compacted_to = last;
        if kill == Some(SealKill::AfterMeta) {
            return Ok(false);
        }
        self.live.drain(..count);
        self.rewrite_wal(kill)?;
        Ok(true)
    }

    /// All records with seq in `1..=seq`, reading sealed segments (with
    /// full checksum validation) and the live tail. Fails with
    /// [`HistoryError::Gap`] when retention was off for any part of that
    /// range, and with `Corrupt` when `seq` is beyond the history.
    pub fn records_upto(&self, seq: u64) -> Result<Vec<HistoryRecord>, HistoryError> {
        if seq > self.last_seq() {
            return Err(HistoryError::Corrupt(format!(
                "history ends at seq {}, cannot replay to {seq}",
                self.last_seq()
            )));
        }
        if !self.keep && self.compacted_to > 0 {
            return Err(HistoryError::Gap {
                missing_first: 1,
                missing_last: self.compacted_to,
            });
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            if seg.first > seq {
                break;
            }
            let recs = read_segment(&self.dir.join(segment_name(seg.first, seg.last)))?;
            for rec in recs {
                if rec.seq > seq {
                    break;
                }
                out.push(rec);
            }
        }
        for rec in &self.live {
            if rec.seq > seq {
                break;
            }
            out.push(rec.clone());
        }
        // Belt and braces: the assembled range must be exactly 1..=seq.
        for (i, rec) in out.iter().enumerate() {
            if rec.seq != i as u64 + 1 {
                return Err(HistoryError::Corrupt(format!(
                    "assembled history skips from {} to {}",
                    i, rec.seq
                )));
            }
        }
        if out.len() as u64 != seq {
            return Err(HistoryError::Corrupt(format!(
                "assembled history has {} of {seq} records",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Rewrite the live WAL to hold exactly `self.live` (tmp+rename).
    /// `kill == MidTruncate` leaves only the tmp behind.
    fn rewrite_wal(&mut self, kill: Option<SealKill>) -> Result<(), HistoryError> {
        let path = self.dir.join(HISTORY_WAL);
        let tmp = self.dir.join(format!("{HISTORY_WAL}.tmp"));
        let mut bytes = Vec::new();
        for rec in &self.live {
            bytes.extend_from_slice(&frame(rec));
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        if kill == Some(SealKill::MidTruncate) {
            return Ok(());
        }
        fs::rename(&tmp, &path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.live_bytes = bytes.len() as u64;
        Ok(())
    }
}

/// Write `magic + payload + fnv1a64(magic + payload)` to `path` via
/// tmp+rename — the shared sealed-file idiom (history segments, the
/// session's genesis snapshot, the coordinator journal snapshot).
pub fn write_sealed(path: &Path, magic: &[u8; 8], payload: &[u8]) -> Result<(), HistoryError> {
    write_sealed_tmp_only(path, magic, payload)?;
    let tmp = tmp_path(path);
    fs::rename(tmp, path)?;
    Ok(())
}

/// Read and validate a file written by [`write_sealed`], returning the
/// payload.
pub fn read_sealed(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, HistoryError> {
    let bytes = fs::read(path)?;
    let name = path.display();
    if bytes.len() < magic.len() + 8 || &bytes[..magic.len()] != magic {
        return Err(HistoryError::Corrupt(format!(
            "{name}: bad magic or truncated"
        )));
    }
    let body = &bytes[..bytes.len() - 8];
    let ck = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8"));
    if fnv1a64(body) != ck {
        return Err(HistoryError::Corrupt(format!("{name}: checksum mismatch")));
    }
    Ok(body[magic.len()..].to_vec())
}

fn write_sealed_tmp_only(path: &Path, magic: &[u8; 8], payload: &[u8]) -> Result<(), HistoryError> {
    let tmp = tmp_path(path);
    let mut bytes = Vec::with_capacity(magic.len() + payload.len() + 8);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(payload);
    let ck = fnv1a64(&bytes);
    bytes.extend_from_slice(&ck.to_le_bytes());
    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_data()?;
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".tmp");
    path.with_file_name(name)
}

fn segment_name(first: u64, last: u64) -> String {
    format!("history-{first:020}-{last:020}.seg")
}

fn frame(rec: &HistoryRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + rec.payload.len());
    body.extend_from_slice(&rec.seq.to_le_bytes());
    body.extend_from_slice(&rec.map_version.to_le_bytes());
    body.extend_from_slice(&rec.payload);
    let mut f = Vec::with_capacity(12 + body.len());
    f.extend_from_slice(&(body.len() as u32).to_le_bytes());
    f.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    f.extend_from_slice(&body);
    f
}

fn frame_len(rec: &HistoryRecord) -> u64 {
    12 + 16 + rec.payload.len() as u64
}

fn file_len(file: &File) -> Result<u64, HistoryError> {
    Ok(file.metadata()?.len())
}

fn write_meta(dir: &Path, keep: bool, compacted_to: u64) -> Result<(), HistoryError> {
    let mut payload = Vec::with_capacity(9);
    payload.push(1u8); // format
    payload.push(keep as u8);
    payload.extend_from_slice(&compacted_to.to_le_bytes());
    write_sealed(&dir.join(HISTORY_META), META_MAGIC, &payload)
}

fn read_meta(dir: &Path) -> Result<(bool, u64), HistoryError> {
    let payload = read_sealed(&dir.join(HISTORY_META), META_MAGIC)?;
    if payload.len() != 10 || payload[0] != 1 || payload[1] > 1 {
        return Err(HistoryError::Corrupt("history.meta: bad fields".into()));
    }
    let compacted_to = u64::from_le_bytes(payload[2..10].try_into().expect("8"));
    Ok((payload[1] == 1, compacted_to))
}

/// List segment headers in `dir` (cheap: magic + first/last + file size;
/// payload checksums are validated when the segment is read for replay).
fn scan_segments(dir: &Path) -> Result<Vec<SegmentMeta>, HistoryError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("history-") || !name.ends_with(".seg") {
            continue;
        }
        let path = entry.path();
        let mut head = [0u8; 24];
        let mut f = File::open(&path)?;
        f.read_exact(&mut head)
            .map_err(|_| HistoryError::Corrupt(format!("{name}: truncated segment header")))?;
        if &head[..8] != SEGMENT_MAGIC {
            return Err(HistoryError::Corrupt(format!("{name}: bad segment magic")));
        }
        let first = u64::from_le_bytes(head[8..16].try_into().expect("8"));
        let last = u64::from_le_bytes(head[16..24].try_into().expect("8"));
        if segment_name(first, last) != name {
            return Err(HistoryError::Corrupt(format!(
                "{name}: header range {first}-{last} disagrees with file name"
            )));
        }
        out.push(SegmentMeta {
            first,
            last,
            bytes: entry.metadata()?.len(),
        });
    }
    Ok(out)
}

/// Read and fully validate one sealed segment.
fn read_segment(path: &Path) -> Result<Vec<HistoryRecord>, HistoryError> {
    let name = path.display().to_string();
    let payload = read_sealed(path, SEGMENT_MAGIC)?;
    if payload.len() < 24 {
        return Err(HistoryError::Corrupt(format!("{name}: header truncated")));
    }
    let first = u64::from_le_bytes(payload[0..8].try_into().expect("8"));
    let last = u64::from_le_bytes(payload[8..16].try_into().expect("8"));
    let count = u64::from_le_bytes(payload[16..24].try_into().expect("8"));
    if last < first || count != last - first + 1 {
        return Err(HistoryError::Corrupt(format!(
            "{name}: range {first}-{last} with {count} records"
        )));
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut pos = 24usize;
    for i in 0..count {
        if payload.len() - pos < 20 {
            return Err(HistoryError::Corrupt(format!(
                "{name}: record {i} truncated"
            )));
        }
        let seq = u64::from_le_bytes(payload[pos..pos + 8].try_into().expect("8"));
        let map_version = u64::from_le_bytes(payload[pos + 8..pos + 16].try_into().expect("8"));
        let plen = u32::from_le_bytes(payload[pos + 16..pos + 20].try_into().expect("4")) as usize;
        pos += 20;
        if payload.len() - pos < plen {
            return Err(HistoryError::Corrupt(format!(
                "{name}: record {i} payload truncated"
            )));
        }
        if seq != first + i {
            return Err(HistoryError::Corrupt(format!(
                "{name}: record {i} has seq {seq}, expected {}",
                first + i
            )));
        }
        out.push(HistoryRecord {
            seq,
            map_version,
            payload: payload[pos..pos + plen].to_vec(),
        });
        pos += plen;
    }
    if pos != payload.len() {
        return Err(HistoryError::Corrupt(format!("{name}: trailing bytes")));
    }
    Ok(out)
}

/// Parse the live WAL: complete frames + the durable byte offset (frames
/// past it are a torn tail the caller truncates).
fn read_wal(path: &Path) -> Result<(Vec<HistoryRecord>, u64), HistoryError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(HistoryError::Io(e)),
    };
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut durable = 0usize;
    while bytes.len() - pos >= 12 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
        let ck = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
        let Some(end) = pos.checked_add(12 + len).filter(|&e| e <= bytes.len()) else {
            break; // torn tail
        };
        let body = &bytes[pos + 12..end];
        if len < 16 || fnv1a64(body) != ck {
            if end == bytes.len() {
                break; // torn tail: final frame half-written
            }
            return Err(HistoryError::Corrupt(format!(
                "history.wal frame {} fails its checksum mid-file",
                out.len()
            )));
        }
        out.push(HistoryRecord {
            seq: u64::from_le_bytes(body[0..8].try_into().expect("8")),
            map_version: u64::from_le_bytes(body[8..16].try_into().expect("8")),
            payload: body[16..].to_vec(),
        });
        pos = end;
        durable = end;
    }
    Ok((out, durable as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ebc_history_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fill(log: &mut HistoryLog, from: u64, to: u64) {
        for seq in from..=to {
            log.append(seq, seq / 10, format!("u{seq}").as_bytes())
                .unwrap();
        }
    }

    #[test]
    fn append_seal_replay_round_trip() {
        let d = dir("roundtrip");
        let mut log = HistoryLog::create(&d, true).unwrap();
        fill(&mut log, 1, 10);
        assert!(log.seal_upto(6).unwrap());
        fill(&mut log, 11, 12);
        assert_eq!(log.last_compaction_seq(), 6);
        assert_eq!(log.last_seq(), 12);
        let recs = log.records_upto(12).unwrap();
        assert_eq!(recs.len(), 12);
        assert!(recs.iter().enumerate().all(|(i, r)| r.seq == i as u64 + 1));
        assert_eq!(recs[3].payload, b"u4");
        assert_eq!(recs[3].map_version, 0);
        assert_eq!(recs[10].map_version, 1);
        // reopen sees the same history
        drop(log);
        let log = HistoryLog::open(&d).unwrap();
        assert_eq!(log.last_seq(), 12);
        assert_eq!(log.records_upto(9).unwrap().len(), 9);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn multiple_seals_tile_and_bound_live_bytes() {
        let d = dir("tiling");
        let mut log = HistoryLog::create(&d, true).unwrap();
        for chunk in 0..5u64 {
            fill(&mut log, chunk * 20 + 1, chunk * 20 + 20);
            assert!(log.seal_upto(chunk * 20 + 20).unwrap());
            assert_eq!(log.live_bytes(), 0);
        }
        let st = log.stats();
        assert_eq!(st.segments, 5);
        assert_eq!(st.last_compaction_seq, 100);
        assert!(st.sealed_bytes > 0);
        assert_eq!(log.records_upto(100).unwrap().len(), 100);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn keep_false_discards_and_gaps_on_replay() {
        let d = dir("nokeep");
        let mut log = HistoryLog::create(&d, false).unwrap();
        fill(&mut log, 1, 8);
        assert!(log.seal_upto(8).unwrap());
        assert_eq!(log.stats().segments, 0);
        fill(&mut log, 9, 10);
        match log.records_upto(10) {
            Err(HistoryError::Gap {
                missing_first: 1,
                missing_last: 8,
            }) => {}
            other => panic!("expected gap, got {other:?}"),
        }
        drop(log);
        let log = HistoryLog::open(&d).unwrap();
        assert_eq!(log.last_seq(), 10);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn deleted_segment_is_a_typed_gap() {
        let d = dir("gap");
        let mut log = HistoryLog::create(&d, true).unwrap();
        fill(&mut log, 1, 10);
        log.seal_upto(5).unwrap();
        fill(&mut log, 11, 11);
        log.seal_upto(11).unwrap();
        drop(log);
        std::fs::remove_file(d.join(segment_name(1, 5))).unwrap();
        match HistoryLog::open(&d) {
            Err(HistoryError::Gap {
                missing_first: 1,
                missing_last: 5,
            }) => {}
            other => panic!("expected gap 1..=5, got {other:?}"),
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn deleted_newest_segment_is_a_typed_gap() {
        let d = dir("gap_tail");
        let mut log = HistoryLog::create(&d, true).unwrap();
        fill(&mut log, 1, 10);
        log.seal_upto(5).unwrap();
        log.seal_upto(10).unwrap();
        drop(log);
        std::fs::remove_file(d.join(segment_name(6, 10))).unwrap();
        match HistoryLog::open(&d) {
            Err(HistoryError::Gap {
                missing_first: 6,
                missing_last: 10,
            }) => {}
            other => panic!("expected gap 6..=10, got {other:?}"),
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tampered_segment_is_corrupt_on_read() {
        let d = dir("tamper");
        let mut log = HistoryLog::create(&d, true).unwrap();
        fill(&mut log, 1, 6);
        log.seal_upto(6).unwrap();
        let path = d.join(segment_name(1, 6));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let log = HistoryLog::open(&d).unwrap(); // header scan is cheap
        assert!(matches!(log.records_upto(6), Err(HistoryError::Corrupt(_))));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn crash_matrix_every_window_resolves_exactly_once() {
        for kill in [
            SealKill::BeforeSeal,
            SealKill::AfterSeal,
            SealKill::AfterMeta,
            SealKill::MidTruncate,
        ] {
            let d = dir(&format!("kill_{kill:?}"));
            let mut log = HistoryLog::create(&d, true).unwrap();
            fill(&mut log, 1, 10);
            let _ = log.seal_upto_with_kill(7, Some(kill)).unwrap();
            drop(log); // the instance is poisoned after a kill
            let mut log = HistoryLog::open(&d).unwrap();
            assert_eq!(log.last_seq(), 10, "{kill:?}");
            let recs = log.records_upto(10).unwrap();
            assert_eq!(recs.len(), 10, "{kill:?}");
            assert!(
                recs.iter().enumerate().all(|(i, r)| r.seq == i as u64 + 1
                    && r.payload == format!("u{}", i + 1).into_bytes()),
                "{kill:?}"
            );
            // the history still appends and seals cleanly afterwards
            fill(&mut log, 11, 12);
            assert!(log.seal_upto(12).unwrap());
            drop(log);
            let log = HistoryLog::open(&d).unwrap();
            assert_eq!(log.records_upto(12).unwrap().len(), 12, "{kill:?}");
            std::fs::remove_dir_all(&d).ok();
        }
    }

    #[test]
    fn torn_wal_tail_truncates() {
        let d = dir("torn");
        let mut log = HistoryLog::create(&d, true).unwrap();
        fill(&mut log, 1, 3);
        log.sync().unwrap();
        drop(log);
        let path = d.join(HISTORY_WAL);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let log = HistoryLog::open(&d).unwrap();
        assert_eq!(log.last_seq(), 2);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn sealed_helper_round_trips_and_rejects_tamper() {
        let d = dir("sealed");
        let path = d.join("thing.bin");
        write_sealed(&path, b"EBCTEST\n", b"payload bytes").unwrap();
        assert_eq!(read_sealed(&path, b"EBCTEST\n").unwrap(), b"payload bytes");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_sealed(&path, b"EBCTEST\n"),
            Err(HistoryError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&d).ok();
    }
}
