//! # ebc-store
//!
//! Out-of-core storage for the framework's per-source betweenness data —
//! the paper's *DO* (disk, no predecessor lists) configuration (§5.1):
//!
//! > "We encode `BD[·]` in binary format on disk. For each source `s`, we
//! > store the data for each other vertex in a columnar fashion, i.e., we
//! > store on disk all the distances, then all the numbers of shortest
//! > paths, and finally the dependency values. [...] We avoid storing the
//! > vertex IDs [...] by storing the data structures sequentially on disk,
//! > and inferring the ID from the order."
//!
//! [`DiskBdStore`] implements exactly this layout behind the same
//! [`BdStore`] trait the in-memory store uses, with:
//!
//! * fixed-width per-vertex encodings ([`CodecKind::Paper`]: 1-byte `d`,
//!   2-byte `σ`, 8-byte `δ` = the paper's 11 B/vertex; [`CodecKind::Wide`]:
//!   lossless 4+8+8 B/vertex, the default);
//! * the `dd == 0` fast path: [`BdStore::peek_pair`] reads just two entries
//!   of the distance column at a constant offset, so unaffected sources are
//!   skipped without touching `σ`/`δ` (§5.1);
//! * in-place sequential record rewrites when a source *is* affected
//!   ("updated in place on disk rather than overwriting the whole file").

pub mod codec;
pub mod disk;

pub use codec::CodecKind;
pub use disk::DiskBdStore;

// re-export the trait so downstream users need only this crate
pub use ebc_core::bd::{BdError, BdResult, BdStore, SourceViewMut};
