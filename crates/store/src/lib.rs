//! # ebc-store
//!
//! Out-of-core storage for the framework's per-source betweenness data —
//! the paper's *DO* (disk, no predecessor lists) configuration (§5.1):
//!
//! > "We encode `BD[·]` in binary format on disk. For each source `s`, we
//! > store the data for each other vertex in a columnar fashion, i.e., we
//! > store on disk all the distances, then all the numbers of shortest
//! > paths, and finally the dependency values. [...] We avoid storing the
//! > vertex IDs [...] by storing the data structures sequentially on disk,
//! > and inferring the ID from the order."
//!
//! [`DiskBdStore`] implements this layout behind the same [`BdStore`] trait
//! the in-memory store uses, hardened as **format v2** (DESIGN.md §7):
//!
//! * fixed-width per-vertex encodings ([`CodecKind::Paper`]: 1-byte `d`,
//!   2-byte `σ`, 8-byte `δ` = the paper's 11 B/vertex; [`CodecKind::Wide`]:
//!   lossless 4+8+8 B/vertex, the default);
//! * the `dd == 0` fast path: [`BdStore::peek_pair`] reads just two entries
//!   of the distance column at a constant offset, so unaffected sources are
//!   skipped without touching `σ`/`δ` (§5.1);
//! * **capacity slabs**: records carry headroom for future vertices, so
//!   [`BdStore::grow_vertex`] is a single 8-byte header update until the
//!   headroom is exhausted (amortized O(1) instead of an O(S·n) rewrite);
//! * **batched I/O**: [`BdStore::update_batch`] coalesces one update's
//!   record traffic into run-sorted reads/writes via [`BatchPlan`] — at
//!   most one seek per contiguous slot run;
//! * **crash recovery**: multi-file mutations are guarded by a write-ahead
//!   intent record, and [`DiskBdStore::open`] rolls a torn
//!   `add_source`/re-slab/`remove_source` forward or back (see [`recovery`]);
//! * legacy v1 files stay readable and migrate to v2 on first write;
//! * **per-shard files with source handoff**: a [`ShardSet`] keeps one
//!   store file per shard (`shard-<k>.ebc`, each with its own sidecar and
//!   WAL) plus a versioned map manifest, and moves a source between shards
//!   through a journaled export/import protocol whose `open()` always
//!   converges to exactly-once ownership (see [`shard`]).
//!
//! ## Quickstart
//!
//! ```
//! use ebc_store::{BdStore, CodecKind, DiskBdStore};
//!
//! let dir = std::env::temp_dir().join("ebc_store_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join(format!("quickstart_{}.bd", std::process::id()));
//!
//! // A store for records of 4 vertices; register source 0.
//! let mut store = DiskBdStore::create(&path, 4, CodecKind::Wide)?;
//! store.add_source(0, vec![0, 1, 2, 2], vec![1, 1, 1, 2], vec![0.0; 4])?;
//!
//! // The dd == 0 skip check reads only two distance entries.
//! assert_eq!(store.peek_pair(0, 1, 3)?, (1, 2));
//!
//! // Kernel-style in-place update; the record persists because the
//! // callback reports it dirty.
//! store.update_with(0, &mut |view| {
//!     view.delta[3] = 1.5;
//!     true
//! })?;
//!
//! // A new vertex arriving is O(1) I/O while slab headroom remains.
//! store.grow_vertex()?;
//! assert_eq!(store.n(), 5);
//!
//! store.flush()?;
//! drop(store);
//!
//! // Reopening validates the header, sidecar, and exact file length —
//! // and repairs any mutation a crash tore in half.
//! let store = DiskBdStore::open(&path)?;
//! assert_eq!(store.sources(), vec![0]);
//! assert_eq!(store.last_recovery(), None);
//! # Ok::<(), ebc_store::BdError>(())
//! ```

#![deny(missing_docs)]

pub mod codec;
pub mod disk;
pub mod history;
pub mod oplog;
pub mod recovery;
pub mod shard;

pub use codec::CodecKind;
pub use disk::{BatchPlan, DiskBdStore, ExportJournal, FormatVersion, SlotRun};
pub use history::{
    read_sealed, write_sealed, HistoryError, HistoryLog, HistoryRecord, HistoryStats,
};
pub use oplog::OpLog;
pub use recovery::{fnv1a64, IntentOp, RecoveryAction};
pub use shard::{HandoffRecovery, ShardSet};

// re-export the trait so downstream users need only this crate
pub use ebc_core::bd::{BatchStats, BdError, BdResult, BdStore, ExportedRecord, SourceViewMut};
