//! Append-only, checksummed operation log — the per-shard replication WAL.
//!
//! A cluster shard leader appends every state-changing operation (bootstrap,
//! apply, import, export) to its op log *as the serialized wire frame it
//! ships to its follower*, so the log **is** the replication stream: entry
//! `i` on the leader and entry `i` on the follower are byte-identical, a
//! follower's replay is by construction the same op sequence in the same
//! order, and (the kernel being a pure function of `(graph, BD[s], op)`)
//! the promoted follower's state is bitwise equal to the leader's.
//!
//! Two backings behind one type: [`OpLog::memory`] for in-process nodes and
//! the fault-injection harness, [`OpLog::open`] for `sbc node --dir`, which
//! persists each entry as `[len: u32][fnv1a64: u64][bytes]` (little-endian,
//! checksum over the payload) and truncates a torn tail on reopen — the
//! same crash posture as the record stores' intent journals: a half-written
//! final entry is indistinguishable from "the op never arrived", which the
//! protocol already tolerates (the coordinator re-sends unacknowledged
//! ops, and entries are deduplicated by index).

use crate::recovery::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::BdError;

/// Magic header of a compacted (format v2) op-log file: the 8-byte tag
/// followed by the base index (`u64` LE) of the first retained entry.
/// Headerless files are legacy format v1 with base 0.
const OPLOG_V2_MAGIC: &[u8; 8] = b"EBCOPLG2";

/// Append-only log of opaque entries, optionally file-backed.
///
/// Retained entries are kept resident in both modes (the log doubles as
/// the replication send buffer: a leader re-ships any suffix on demand),
/// so `entry(i)` is always O(1). [`OpLog::truncate_prefix`] discards a
/// durable prefix — e.g. cluster entries already acknowledged by the
/// follower — without renumbering: indices are forever, `len()` keeps
/// counting from 0, and a truncated index simply reads as `None`.
pub struct OpLog {
    /// Index of the first retained entry (entries `0..base` were
    /// compacted away).
    base: u64,
    entries: Vec<Vec<u8>>,
    /// Total frame bytes of retained entries (excluding any v2 header).
    byte_len: u64,
    file: Option<File>,
    path: Option<PathBuf>,
}

impl OpLog {
    /// A purely in-memory log.
    pub fn memory() -> Self {
        OpLog {
            base: 0,
            entries: Vec::new(),
            byte_len: 0,
            file: None,
            path: None,
        }
    }

    /// Open (or create) a file-backed log at `path`, recovering every
    /// complete entry and truncating a torn tail. A checksum mismatch
    /// anywhere before the tail is corruption, not a crash artifact, and
    /// is reported as an error. Both legacy headerless files and
    /// compacted files (v2 header carrying the base index) are readable.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, BdError> {
        // A leftover `.tmp` is a compaction that died pre-rename; the
        // real file is intact, so the tmp is garbage.
        std::fs::remove_file(tmp_path(path.as_ref())).ok();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())
            .map_err(BdError::Io)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(BdError::Io)?;
        let mut pos = 0usize;
        let mut base = 0u64;
        if bytes.len() >= 16 && &bytes[..8] == OPLOG_V2_MAGIC {
            base = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
            pos = 16;
        }
        let mut entries = Vec::new();
        let mut durable = pos;
        while bytes.len() - pos >= 12 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let ck = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
            let Some(end) = pos.checked_add(12 + len).filter(|&e| e <= bytes.len()) else {
                break; // torn tail: length header outruns the file
            };
            let payload = &bytes[pos + 12..end];
            if fnv1a64(payload) != ck {
                if end == bytes.len() {
                    break; // torn tail: final entry half-written
                }
                return Err(BdError::Corrupt(format!(
                    "oplog entry {} fails its checksum mid-file",
                    entries.len()
                )));
            }
            entries.push(payload.to_vec());
            pos = end;
            durable = end;
        }
        if durable < bytes.len() {
            file.set_len(durable as u64).map_err(BdError::Io)?;
        }
        file.seek(SeekFrom::Start(durable as u64))
            .map_err(BdError::Io)?;
        Ok(OpLog {
            base,
            byte_len: entries.iter().map(|e| 12 + e.len() as u64).sum(),
            entries,
            file: Some(file),
            path: Some(path.as_ref().to_path_buf()),
        })
    }

    /// Append one entry, returning its index. File-backed logs write
    /// through immediately (an entry is either fully framed or torn, never
    /// silently reordered).
    pub fn append(&mut self, entry: &[u8]) -> Result<u64, BdError> {
        if let Some(file) = &mut self.file {
            let mut frame = Vec::with_capacity(12 + entry.len());
            frame.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            frame.extend_from_slice(&fnv1a64(entry).to_le_bytes());
            frame.extend_from_slice(entry);
            file.write_all(&frame).map_err(BdError::Io)?;
        }
        self.byte_len += 12 + entry.len() as u64;
        self.entries.push(entry.to_vec());
        Ok(self.base + self.entries.len() as u64 - 1)
    }

    /// Number of entries ever appended (compacted entries still count:
    /// indices are never renumbered).
    pub fn len(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// True when no entry has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the first retained entry; entries below it were
    /// compacted away and read as `None`.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total frame bytes of retained entries — the live on-disk weight a
    /// `stats` surface reports.
    pub fn byte_len(&self) -> u64 {
        self.byte_len
    }

    /// Entry `index`, if present and not compacted away.
    pub fn entry(&self, index: u64) -> Option<&[u8]> {
        index
            .checked_sub(self.base)
            .and_then(|i| self.entries.get(i as usize))
            .map(Vec::as_slice)
    }

    /// All retained entries in append order.
    pub fn entries(&self) -> impl Iterator<Item = &[u8]> {
        self.entries.iter().map(Vec::as_slice)
    }

    /// Discard every entry with index `< upto` (keeping indices stable).
    /// File-backed logs rewrite themselves as a compacted v2 file via
    /// tmp+rename: a crash mid-compaction leaves the original intact (the
    /// stale tmp is swept on the next open). Returns the number of
    /// entries discarded.
    pub fn truncate_prefix(&mut self, upto: u64) -> Result<u64, BdError> {
        let upto = upto.min(self.len());
        if upto <= self.base {
            return Ok(0);
        }
        let drop = (upto - self.base) as usize;
        self.entries.drain(..drop);
        self.base = upto;
        self.byte_len = self.entries.iter().map(|e| 12 + e.len() as u64).sum();
        if let (Some(path), Some(_)) = (&self.path, &self.file) {
            let path = path.clone();
            let tmp = tmp_path(&path);
            let mut bytes = Vec::with_capacity(16 + self.byte_len as usize);
            bytes.extend_from_slice(OPLOG_V2_MAGIC);
            bytes.extend_from_slice(&self.base.to_le_bytes());
            for entry in &self.entries {
                bytes.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&fnv1a64(entry).to_le_bytes());
                bytes.extend_from_slice(entry);
            }
            {
                let mut f = File::create(&tmp).map_err(BdError::Io)?;
                f.write_all(&bytes).map_err(BdError::Io)?;
                f.sync_data().map_err(BdError::Io)?;
            }
            std::fs::rename(&tmp, &path).map_err(BdError::Io)?;
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(BdError::Io)?;
            file.seek(SeekFrom::End(0)).map_err(BdError::Io)?;
            self.file = Some(file);
        }
        Ok(drop as u64)
    }

    /// Sync the file backing (no-op in memory mode).
    pub fn sync(&mut self) -> Result<(), BdError> {
        if let Some(file) = &mut self.file {
            file.sync_data().map_err(BdError::Io)?;
        }
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ebc_oplog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    #[test]
    fn memory_log_appends_and_reads() {
        let mut log = OpLog::memory();
        assert!(log.is_empty());
        assert_eq!(log.append(b"alpha").unwrap(), 0);
        assert_eq!(log.append(b"beta").unwrap(), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.entry(1), Some(&b"beta"[..]));
        assert_eq!(log.entry(2), None);
        let all: Vec<_> = log.entries().collect();
        assert_eq!(all, vec![&b"alpha"[..], &b"beta"[..]]);
    }

    #[test]
    fn file_log_round_trips_across_reopen() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two words").unwrap();
            log.append(b"").unwrap(); // empty entries are legal
            log.sync().unwrap();
        }
        let mut log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.entry(0), Some(&b"one"[..]));
        assert_eq!(log.entry(2), Some(&b""[..]));
        // appending after reopen continues the sequence
        assert_eq!(log.append(b"four").unwrap(), 3);
        drop(log);
        let log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"keep me").unwrap();
            log.append(b"doomed").unwrap();
        }
        // chop the final entry mid-payload
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entry(0), Some(&b"keep me"[..]));
        // the truncated file accepts appends at the recovered position
        log.append(b"replacement").unwrap();
        drop(log);
        let log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.entry(1), Some(&b"replacement"[..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_prefix_keeps_indices_stable_across_reopen() {
        let path = tmp("compact");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            for i in 0..6u64 {
                log.append(format!("op{i}").as_bytes()).unwrap();
            }
            assert_eq!(log.truncate_prefix(4).unwrap(), 4);
            assert_eq!(log.len(), 6);
            assert_eq!(log.base(), 4);
            assert_eq!(log.entry(3), None);
            assert_eq!(log.entry(4), Some(&b"op4"[..]));
            // appends continue the global numbering
            assert_eq!(log.append(b"op6").unwrap(), 6);
            // truncating below the base is a no-op
            assert_eq!(log.truncate_prefix(2).unwrap(), 0);
        }
        let mut log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 7);
        assert_eq!(log.base(), 4);
        assert_eq!(log.entry(5), Some(&b"op5"[..]));
        assert_eq!(log.entry(0), None);
        assert!(log.byte_len() > 0);
        // a second compaction over a compacted file
        log.truncate_prefix(7).unwrap();
        assert!(log.entries().next().is_none());
        assert_eq!(log.append(b"op7").unwrap(), 7);
        drop(log);
        let log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 8);
        assert_eq!(log.entry(7), Some(&b"op7"[..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_log_truncates_prefix_too() {
        let mut log = OpLog::memory();
        log.append(b"a").unwrap();
        log.append(b"b").unwrap();
        log.truncate_prefix(1).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.entry(0), None);
        assert_eq!(log.entry(1), Some(&b"b"[..]));
        assert!(!log.is_empty());
    }

    #[test]
    fn stale_compaction_tmp_is_swept_on_open() {
        let path = tmp("stale_tmp");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"survivor").unwrap();
        }
        // a compaction that died pre-rename leaves a tmp next door
        std::fs::write(super::tmp_path(&path), b"half written").unwrap();
        let log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entry(0), Some(&b"survivor"[..]));
        assert!(!super::tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"first entry").unwrap();
            log.append(b"second entry").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0x20; // flip a payload byte of entry 0
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(OpLog::open(&path), Err(BdError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
